"""Recursive-descent parser for the analyzed language.

Surface syntax (C-like, semicolon-terminated):

    fn foo(a, b) {
        ptr = malloc();
        *ptr = a;
        if (a != 0) { bar(ptr); } else { qux(ptr); }
        f = *ptr;
        while (b < 10) { b = b + 1; }
        return f;
    }

Notes:

- ``*p = e;`` and ``**p = e;`` are stores of dereference depth 1 and 2,
  realizing the paper's ``*(v1, k) <- v2`` statement.
- ``null`` is the constant 0 used as the null pointer.
- Comments start with ``//`` or ``#`` and run to end of line.
- There are no declarations; variables are introduced by assignment.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.lang import ast
from repro.robust.faults import fault_point


class ParseError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.message = message
        self.line = line
        # Name of the function being parsed when the error occurred,
        # filled in by tolerant parsing for diagnostic attribution.
        self.unit = ""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>==|!=|<=|>=|&&|\|\||[-+*/%<>!=;,(){}&])
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({"fn", "if", "else", "while", "return", "true", "false", "null"})


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Token({self.kind!r}, {self.text!r}, line={self.line})"


def _tokenize(source: str, errors: Optional[List[ParseError]] = None) -> List[_Token]:
    """Tokenize; with an ``errors`` list, bad characters are recorded
    and skipped instead of raising (tolerant mode)."""
    tokens: List[_Token] = []
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            error = ParseError(f"unexpected character {source[pos]!r}", line)
            if errors is None:
                raise error
            errors.append(error)
            pos += 1
            continue
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            line += match.group(0).count("\n")
            continue
        kind = match.lastgroup or "op"
        text = match.group(0)
        if kind == "name" and text in _KEYWORDS:
            kind = "kw"
        tokens.append(_Token(kind, text, line))
    tokens.append(_Token("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._advance()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.line)
        return token

    def _expect_name(self) -> _Token:
        token = self._advance()
        if token.kind != "name":
            raise ParseError(f"expected identifier, found {token.text!r}", token.line)
        return token

    def _at(self, text: str) -> bool:
        return self._peek().text == text

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        functions: List[ast.FuncDef] = []
        while self._peek().kind != "eof":
            functions.append(self._fndef())
        return ast.Program(functions)

    def parse_program_tolerant(self, errors: List[ParseError]) -> ast.Program:
        """Parse with recovery at function granularity: a malformed
        function is recorded as an error and skipped, parsing resyncs at
        the next top-level ``fn``, and every well-formed function is
        kept.  ``fn`` is a keyword with no nested use in the grammar, so
        any ``fn`` token is a reliable top-level resynchronisation
        point."""
        functions: List[ast.FuncDef] = []
        while self._peek().kind != "eof":
            start_pos = self._pos
            # Best-effort name of the function about to be parsed, for
            # error attribution and targeted fault injection.
            unit = self._peek(1).text if self._peek().text == "fn" else ""
            try:
                fault_point("parse", unit)
                functions.append(self._fndef())
            except ParseError as error:
                error.unit = unit
                errors.append(error)
                self._resync(start_pos)
            except RecursionError:
                error = ParseError(
                    f"function {unit or '<anonymous>'!s} nests too deeply",
                    self._peek().line,
                )
                error.unit = unit
                errors.append(error)
                self._resync(start_pos)
            except Exception as cause:  # injected faults, internal bugs
                error = ParseError(
                    f"internal parser failure in "
                    f"{unit or '<anonymous>'}: {type(cause).__name__}: {cause}",
                    self._peek().line,
                )
                error.unit = unit
                errors.append(error)
                self._resync(start_pos)
        return ast.Program(functions)

    def _resync(self, start_pos: int) -> None:
        """Skip to the next top-level ``fn`` strictly after the point
        where the failed parse attempt started."""
        self._pos = max(self._pos, start_pos + 1)
        while self._peek().kind != "eof" and self._peek().text != "fn":
            self._advance()

    def _fndef(self) -> ast.FuncDef:
        start = self._expect("fn")
        name = self._expect_name().text
        self._expect("(")
        params: List[str] = []
        if not self._at(")"):
            params.append(self._expect_name().text)
            while self._at(","):
                self._advance()
                params.append(self._expect_name().text)
        self._expect(")")
        body = self._block()
        return ast.FuncDef(name, params, body, line=start.line)

    def _block(self) -> ast.Block:
        self._expect("{")
        stmts: List[ast.Stmt] = []
        while not self._at("}"):
            stmts.append(self._stmt())
        self._expect("}")
        return ast.Block(stmts)

    def _stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.text == "if":
            return self._if_stmt()
        if token.text == "while":
            return self._while_stmt()
        if token.text == "return":
            self._advance()
            value: Optional[ast.Expr] = None
            if not self._at(";"):
                value = self._expr()
            self._expect(";")
            return ast.ReturnStmt(value, line=token.line)
        if token.text == "*":
            return self._store_stmt()
        if token.kind == "name":
            if self._peek(1).text == "=":
                name = self._advance().text
                self._advance()  # '='
                value = self._expr()
                self._expect(";")
                return ast.AssignStmt(name, value, line=token.line)
            if self._peek(1).text == "(":
                expr = self._expr()
                self._expect(";")
                return ast.ExprStmt(expr, line=token.line)
        raise ParseError(f"unexpected token {token.text!r}", token.line)

    def _if_stmt(self) -> ast.IfStmt:
        token = self._expect("if")
        self._expect("(")
        cond = self._expr()
        self._expect(")")
        then_block = self._block()
        else_block: Optional[ast.Block] = None
        if self._at("else"):
            self._advance()
            if self._at("if"):
                nested = self._if_stmt()
                else_block = ast.Block([nested])
            else:
                else_block = self._block()
        return ast.IfStmt(cond, then_block, else_block, line=token.line)

    def _while_stmt(self) -> ast.WhileStmt:
        token = self._expect("while")
        self._expect("(")
        cond = self._expr()
        self._expect(")")
        body = self._block()
        return ast.WhileStmt(cond, body, line=token.line)

    def _store_stmt(self) -> ast.StoreStmt:
        token = self._peek()
        depth = 0
        while self._at("*"):
            self._advance()
            depth += 1
        pointer = self._primary()
        self._expect("=")
        value = self._expr()
        self._expect(";")
        return ast.StoreStmt(pointer, depth, value, line=token.line)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        lhs = self._and_expr()
        while self._at("||"):
            token = self._advance()
            rhs = self._and_expr()
            lhs = ast.Binary("||", lhs, rhs, line=token.line)
        return lhs

    def _and_expr(self) -> ast.Expr:
        lhs = self._cmp_expr()
        while self._at("&&"):
            token = self._advance()
            rhs = self._cmp_expr()
            lhs = ast.Binary("&&", lhs, rhs, line=token.line)
        return lhs

    _CMP_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})

    def _cmp_expr(self) -> ast.Expr:
        lhs = self._add_expr()
        while self._peek().text in self._CMP_OPS:
            token = self._advance()
            rhs = self._add_expr()
            lhs = ast.Binary(token.text, lhs, rhs, line=token.line)
        return lhs

    def _add_expr(self) -> ast.Expr:
        lhs = self._mul_expr()
        while self._peek().text in ("+", "-"):
            token = self._advance()
            rhs = self._mul_expr()
            lhs = ast.Binary(token.text, lhs, rhs, line=token.line)
        return lhs

    def _mul_expr(self) -> ast.Expr:
        lhs = self._unary_expr()
        while self._peek().text in ("*", "/", "%"):
            token = self._advance()
            rhs = self._unary_expr()
            lhs = ast.Binary(token.text, lhs, rhs, line=token.line)
        return lhs

    def _unary_expr(self) -> ast.Expr:
        token = self._peek()
        if token.text in ("-", "!", "*"):
            self._advance()
            operand = self._unary_expr()
            return ast.Unary(token.text, operand, line=token.line)
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._advance()
        if token.kind == "num":
            return ast.Num(int(token.text), line=token.line)
        if token.text == "true":
            return ast.Num(1, line=token.line)
        if token.text == "false":
            return ast.Num(0, line=token.line)
        if token.text == "null":
            return ast.Num(0, line=token.line)
        if token.kind == "name":
            if self._at("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._at(")"):
                    args.append(self._expr())
                    while self._at(","):
                        self._advance()
                        args.append(self._expr())
                self._expect(")")
                return ast.Call(token.text, args, line=token.line)
            return ast.Name(token.text, line=token.line)
        if token.text == "(":
            inner = self._expr()
            self._expect(")")
            return inner
        raise ParseError(f"unexpected token {token.text!r} in expression", token.line)


def parse_program(source: str) -> ast.Program:
    """Parse a whole program (one or more ``fn`` definitions)."""
    return _Parser(_tokenize(source)).parse_program()


def parse_program_tolerant(
    source: str,
) -> Tuple[ast.Program, List[ParseError]]:
    """Parse with per-function error recovery.

    Returns the program built from every well-formed function plus the
    list of errors for the malformed ones.  If *nothing* parses and
    errors were found, the first error is raised — wholly-garbage input
    still fails loudly."""
    errors: List[ParseError] = []
    tokens = _tokenize(source, errors=errors)
    program = _Parser(tokens).parse_program_tolerant(errors)
    if not program.functions and errors:
        raise errors[0]
    return program, errors


def parse_function(source: str) -> ast.FuncDef:
    """Parse a single function definition."""
    program = parse_program(source)
    if len(program.functions) != 1:
        raise ParseError("expected exactly one function", 1)
    return program.functions[0]
