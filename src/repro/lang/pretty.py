"""Pretty-printer: AST back to surface syntax.

``parse(pretty(parse(text)))`` produces a structurally identical AST,
which the round-trip property tests rely on.  Output is normalized
(one statement per line, four-space indentation, minimal parentheses by
always parenthesizing nested binary operands).
"""

from __future__ import annotations

from typing import List

from repro.lang import ast


def pretty_program(program: ast.Program) -> str:
    return "\n".join(pretty_function(f) for f in program.functions)


def pretty_function(function: ast.FuncDef) -> str:
    lines = [f"fn {function.name}({', '.join(function.params)}) {{"]
    lines.extend(_block_lines(function.body, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"


def _block_lines(block: ast.Block, depth: int) -> List[str]:
    lines: List[str] = []
    for stmt in block.stmts:
        lines.extend(_stmt_lines(stmt, depth))
    return lines


def _stmt_lines(stmt: ast.Stmt, depth: int) -> List[str]:
    pad = "    " * depth
    if isinstance(stmt, ast.AssignStmt):
        return [f"{pad}{stmt.target} = {pretty_expr(stmt.value)};"]
    if isinstance(stmt, ast.StoreStmt):
        stars = "*" * stmt.depth
        return [f"{pad}{stars}{pretty_expr(stmt.pointer)} = {pretty_expr(stmt.value)};"]
    if isinstance(stmt, ast.IfStmt):
        lines = [f"{pad}if ({pretty_expr(stmt.cond)}) {{"]
        lines.extend(_block_lines(stmt.then_block, depth + 1))
        if stmt.else_block is not None:
            lines.append(f"{pad}}} else {{")
            lines.extend(_block_lines(stmt.else_block, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.WhileStmt):
        lines = [f"{pad}while ({pretty_expr(stmt.cond)}) {{"]
        lines.extend(_block_lines(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {pretty_expr(stmt.value)};"]
    if isinstance(stmt, ast.ExprStmt):
        return [f"{pad}{pretty_expr(stmt.expr)};"]
    raise ValueError(f"unknown statement {stmt!r}")


def pretty_expr(expr: ast.Expr, parent_binds_tighter: bool = False) -> str:
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Num):
        # Negative literals re-parse as unary minus; that is structurally
        # equivalent under evaluation but not under AST equality, so keep
        # them parenthesized through the unary printer instead.
        if expr.value < 0:
            return f"(0 - {-expr.value})"
        return str(expr.value)
    if isinstance(expr, ast.Unary):
        inner = pretty_expr(expr.operand, parent_binds_tighter=True)
        return f"{expr.op}{inner}"
    if isinstance(expr, ast.Binary):
        text = (
            f"{pretty_expr(expr.lhs, True)} {expr.op} {pretty_expr(expr.rhs, True)}"
        )
        return f"({text})" if parent_binds_tighter else f"({text})"
    if isinstance(expr, ast.Call):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    raise ValueError(f"unknown expression {expr!r}")
