"""AST for the analyzed language.

Nodes carry the source line they started on (``line``) so bug reports can
point back into the program text.  Expressions are arbitrarily nested in
the surface syntax; the lowering pass in :mod:`repro.ir.lower` flattens
them into the paper's three-address statement forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr:
    line: int = field(default=0, kw_only=True)


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Unary(Expr):
    """Unary operation.

    ``op`` is one of ``-`` (negation), ``!`` (logical not), or ``*``
    (dereference).  Stacked dereferences parse into nested ``Unary('*')``
    nodes, realizing the paper's ``*(v, k)`` loads.
    """

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    line: int = field(default=0, kw_only=True)


@dataclass
class AssignStmt(Stmt):
    target: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass
class StoreStmt(Stmt):
    """``*(pointer, depth) = value`` — store through ``depth`` derefs."""

    pointer: Expr = None  # type: ignore[assignment]
    depth: int = 1
    value: Expr = None  # type: ignore[assignment]


@dataclass
class IfStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_block: "Block" = None  # type: ignore[assignment]
    else_block: Optional["Block"] = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: "Block" = None  # type: ignore[assignment]


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect — in practice, a call."""

    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Block:
    stmts: List[Stmt] = field(default_factory=list)


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
@dataclass
class FuncDef:
    name: str
    params: List[str]
    body: Block
    line: int = 0


@dataclass
class Program:
    functions: List[FuncDef] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    def line_count(self) -> int:
        """Number of statements, a proxy for lines of code."""

        def count_block(block: Block) -> int:
            total = 0
            for stmt in block.stmts:
                total += 1
                if isinstance(stmt, IfStmt):
                    total += count_block(stmt.then_block)
                    if stmt.else_block is not None:
                        total += count_block(stmt.else_block)
                elif isinstance(stmt, WhileStmt):
                    total += count_block(stmt.body)
            return total

        return sum(count_block(f.body) + 1 for f in self.functions)
