"""A concrete interpreter for the analyzed language.

Executes programs directly over the AST with a real heap, serving as the
*dynamic oracle* for the static analyses: a use-after-free or double-free
that Pinpoint reports should be observable as a runtime
:class:`MemoryError_` for some input, and the "good" twins of the
Juliet-like suite must run clean on all inputs.

Semantics:

- values are integers or :class:`Pointer` handles;
- ``malloc()`` allocates a fresh cell; ``free(p)`` marks it dead;
- loading or storing through a dead (or null, or dangling-integer)
  pointer raises :class:`MemoryError_` with the offending kind;
- unknown callees are modeled by hooks (see ``external``): by default
  they return 0, and the taint intrinsics (``fgetc`` etc.) return marked
  values so taint flows are dynamically observable too;
- loops and recursion run for real, bounded by ``step_limit``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.lang import ast

_HANDLE = itertools.count(1)


class InterpError(Exception):
    """Base class for runtime failures."""


class MemoryError_(InterpError):
    """A memory-safety violation (the dynamic bug the checkers hunt)."""

    def __init__(self, kind: str, detail: str = "") -> None:
        super().__init__(f"{kind}{': ' + detail if detail else ''}")
        self.kind = kind  # 'use-after-free' | 'double-free' | 'null-deref'


class StepLimitExceeded(InterpError):
    pass


@dataclass
class Cell:
    """One heap allocation: a single storage slot (arrays collapse)."""

    handle: int
    value: "Value" = 0
    alive: bool = True


class Pointer:
    """A runtime pointer: a handle to a heap cell."""

    __slots__ = ("cell", "tainted")

    def __init__(self, cell: Cell, tainted: bool = False) -> None:
        self.cell = cell
        self.tainted = tainted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if not self.cell.alive else "live"
        return f"<ptr #{self.cell.handle} {state}>"


class Tainted(int):
    """An integer carrying a taint mark (from input intrinsics)."""

    def __new__(cls, value: int = 0):
        return super().__new__(cls, value)


Value = Union[int, Pointer]


def _is_tainted(value: Value) -> bool:
    return isinstance(value, Tainted) or (
        isinstance(value, Pointer) and value.tainted
    )


def _truthy(value: Value) -> bool:
    if isinstance(value, Pointer):
        return True
    return value != 0


def _as_int(value: Value) -> int:
    """Integer view of a value (pointers compare by handle, as addresses)."""
    if isinstance(value, Pointer):
        return value.cell.handle
    return int(value)


def _binop(op: str, lhs: Value, rhs: Value) -> Value:
    # Pointer equality compares identity of the cell; everything else
    # degrades to integer arithmetic on handles (address arithmetic).
    if op == "==":
        return int(_compare_eq(lhs, rhs))
    if op == "!=":
        return int(not _compare_eq(lhs, rhs))
    a, b = _as_int(lhs), _as_int(rhs)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return a // b if b else 0
    if op == "%":
        return a % b if b else 0
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "&&":
        return int(_truthy(lhs) and _truthy(rhs))
    if op == "||":
        return int(_truthy(lhs) or _truthy(rhs))
    raise InterpError(f"unknown operator {op}")


def _compare_eq(lhs: Value, rhs: Value) -> bool:
    if isinstance(lhs, Pointer) and isinstance(rhs, Pointer):
        return lhs.cell is rhs.cell
    if isinstance(lhs, Pointer) or isinstance(rhs, Pointer):
        return False  # a live pointer never equals an integer (incl. null)
    return lhs == rhs


@dataclass
class TraceEvent:
    """One observable runtime event (for the dynamic oracle)."""

    kind: str  # 'free' | 'deref' | 'sink-call'
    function: str
    line: int
    detail: str = ""


class Interpreter:
    """Executes a :class:`~repro.lang.ast.Program`."""

    def __init__(
        self,
        program: ast.Program,
        step_limit: int = 100_000,
        external: Optional[Dict[str, Callable[..., Value]]] = None,
        halt_on_violation: bool = True,
    ) -> None:
        self.program = program
        self.functions = {f.name: f for f in program.functions}
        self.step_limit = step_limit
        self.steps = 0
        self.halt_on_violation = halt_on_violation
        self.violations: List[MemoryError_] = []
        self.trace: List[TraceEvent] = []
        self.taint_sink_hits: List[TraceEvent] = []
        self.external = dict(external or {})
        self._current_function = "<top>"

    # ------------------------------------------------------------------
    def call(self, name: str, *args: Value) -> Value:
        """Call a defined function with concrete arguments."""
        function = self.functions.get(name)
        if function is None:
            raise InterpError(f"no such function: {name}")
        return self._call_function(function, list(args))

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise StepLimitExceeded(f"exceeded {self.step_limit} steps")

    def _violate(self, kind: str, line: int, detail: str = "") -> None:
        error = MemoryError_(kind, detail)
        self.violations.append(error)
        if self.halt_on_violation:
            raise error

    # ------------------------------------------------------------------
    class _Return(Exception):
        def __init__(self, value: Value) -> None:
            self.value = value

    def _call_function(self, function: ast.FuncDef, args: List[Value]) -> Value:
        env: Dict[str, Value] = {}
        for param, arg in itertools.zip_longest(function.params, args, fillvalue=0):
            if isinstance(param, str):
                env[param] = arg
        saved = self._current_function
        self._current_function = function.name
        try:
            self._exec_block(function.body, env)
            return 0
        except self._Return as ret:
            return ret.value
        finally:
            self._current_function = saved

    def _exec_block(self, block: ast.Block, env: Dict[str, Value]) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.Stmt, env: Dict[str, Value]) -> None:
        self._tick()
        if isinstance(stmt, ast.AssignStmt):
            env[stmt.target] = self._eval(stmt.value, env)
        elif isinstance(stmt, ast.StoreStmt):
            pointer = self._eval(stmt.pointer, env)
            cell = self._deref_chain(pointer, stmt.depth - 1, stmt.line)
            if cell is not None:
                value = self._eval(stmt.value, env)
                cell.value = value
        elif isinstance(stmt, ast.IfStmt):
            if _truthy(self._eval(stmt.cond, env)):
                self._exec_block(stmt.then_block, env)
            elif stmt.else_block is not None:
                self._exec_block(stmt.else_block, env)
        elif isinstance(stmt, ast.WhileStmt):
            while _truthy(self._eval(stmt.cond, env)):
                self._tick()
                self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.ReturnStmt):
            value = 0 if stmt.value is None else self._eval(stmt.value, env)
            raise self._Return(value)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env)
        else:  # pragma: no cover
            raise InterpError(f"unknown statement {stmt!r}")

    # ------------------------------------------------------------------
    def _deref_chain(self, value: Value, extra: int, line: int) -> Optional[Cell]:
        """Follow ``extra`` intermediate dereferences, returning the final
        cell (checking liveness at every hop)."""
        for _ in range(extra):
            cell = self._check_pointer(value, line)
            if cell is None:
                return None
            value = cell.value
        return self._check_pointer(value, line)

    def _check_pointer(self, value: Value, line: int) -> Optional[Cell]:
        self.trace.append(TraceEvent("deref", self._current_function, line))
        if not isinstance(value, Pointer):
            self._violate("null-deref", line, f"dereferencing integer {value!r}")
            return None
        if not value.cell.alive:
            self._violate("use-after-free", line, f"cell #{value.cell.handle}")
            return None
        return value.cell

    # ------------------------------------------------------------------
    def _eval(self, expr: ast.Expr, env: Dict[str, Value]) -> Value:
        self._tick()
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Name):
            return env.get(expr.ident, 0)
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                pointer = self._eval(expr.operand, env)
                cell = self._check_pointer(pointer, expr.line)
                return 0 if cell is None else cell.value
            operand = self._eval(expr.operand, env)
            if expr.op == "-":
                return -_as_int(operand)
            if expr.op == "!":
                return 0 if _truthy(operand) else 1
            raise InterpError(f"unknown unary {expr.op}")
        if isinstance(expr, ast.Binary):
            lhs = self._eval(expr.lhs, env)
            rhs = self._eval(expr.rhs, env)
            result = _binop(expr.op, lhs, rhs)
            if _is_tainted(lhs) or _is_tainted(rhs):
                return Tainted(_as_int(result))
            return result
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        raise InterpError(f"unknown expression {expr!r}")

    # ------------------------------------------------------------------
    TAINT_SOURCES = frozenset(
        {"fgetc", "fgets", "recv", "read_input", "getenv", "scanf",
         "getpass", "read_key", "load_secret", "read_password", "read_query"}
    )
    TAINT_SINKS = frozenset(
        {"fopen", "open", "opendir", "remove", "rename",
         "sendto", "send", "write_socket", "log_msg", "sql_exec"}
    )
    MALLOC_NAMES = frozenset({"malloc", "calloc", "alloc", "new_object"})
    FREE_NAMES = frozenset({"free", "release", "dispose", "kfree"})

    def _eval_call(self, expr: ast.Call, env: Dict[str, Value]) -> Value:
        name = expr.callee
        if name in self.functions:
            args = [self._eval(a, env) for a in expr.args]
            return self._call_function(self.functions[name], args)
        if name in self.MALLOC_NAMES:
            for arg in expr.args:
                self._eval(arg, env)
            return Pointer(Cell(next(_HANDLE)))
        if name in self.FREE_NAMES:
            args = [self._eval(a, env) for a in expr.args]
            for value in args:
                self._free(value, expr.line)
            return 0
        if name in self.TAINT_SOURCES:
            for arg in expr.args:
                self._eval(arg, env)
            return Tainted(7)
        if name in self.TAINT_SINKS:
            args = [self._eval(a, env) for a in expr.args]
            if any(_is_tainted(a) for a in args):
                event = TraceEvent(
                    "sink-call", self._current_function, expr.line, name
                )
                self.taint_sink_hits.append(event)
                self.trace.append(event)
            return 0
        hook = self.external.get(name)
        if hook is not None:
            args = [self._eval(a, env) for a in expr.args]
            return hook(*args)
        for arg in expr.args:
            self._eval(arg, env)
        return 0

    def _free(self, value: Value, line: int) -> None:
        self.trace.append(TraceEvent("free", self._current_function, line))
        if not isinstance(value, Pointer):
            if value != 0:
                self._violate("bad-free", line, f"freeing integer {value!r}")
            return  # free(null) is a no-op, as in C
        if not value.cell.alive:
            self._violate("double-free", line, f"cell #{value.cell.handle}")
            return
        value.cell.alive = False


def run_function(
    source_or_program: Union[str, ast.Program],
    name: str,
    *args: Value,
    halt_on_violation: bool = True,
    step_limit: int = 100_000,
) -> "Interpreter":
    """Parse (if needed), run one function, return the interpreter with
    its recorded violations/trace."""
    if isinstance(source_or_program, str):
        from repro.lang.parser import parse_program

        program = parse_program(source_or_program)
    else:
        program = source_or_program
    interp = Interpreter(
        program, step_limit=step_limit, halt_on_violation=halt_on_violation
    )
    try:
        interp.call(name, *args)
    except MemoryError_:
        pass  # recorded in interp.violations
    return interp
