"""The analyzed language: AST and parser.

The paper defines its analyses over a simple call-by-value language
(Section 3, "Language") with assignments, binary/unary operations,
loads/stores of arbitrary dereference depth ``*(v, k)``, branches,
returns, and calls.  This package provides a small C-like surface syntax
for that language plus the AST the front end produces; lowering to a CFG
IR lives in :mod:`repro.ir`.
"""

from repro.lang.ast import (
    AssignStmt,
    Binary,
    Block,
    Call,
    ExprStmt,
    FuncDef,
    IfStmt,
    Name,
    Num,
    Program,
    ReturnStmt,
    StoreStmt,
    Unary,
    WhileStmt,
)
from repro.lang.parser import ParseError, parse_program, parse_program_tolerant

__all__ = [
    "AssignStmt",
    "Binary",
    "Block",
    "Call",
    "ExprStmt",
    "FuncDef",
    "IfStmt",
    "Name",
    "Num",
    "ParseError",
    "Program",
    "ReturnStmt",
    "StoreStmt",
    "Unary",
    "WhileStmt",
    "parse_program",
    "parse_program_tolerant",
]
