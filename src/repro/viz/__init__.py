"""Visualization helpers: Graphviz dot export for CFGs and SEGs."""

from repro.viz.dot import cfg_to_dot, seg_to_dot

__all__ = ["cfg_to_dot", "seg_to_dot"]
