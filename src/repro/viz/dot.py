"""Graphviz dot rendering for CFGs and SEGs.

These are debugging/teaching aids: the SEG render mirrors the paper's
Fig. 4 (solid data-dependence edges labeled with conditions, dashed
control-dependence edges to branch variables).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List

from repro.ir import cfg
from repro.seg.graph import SEG, VertexKey
from repro.smt import terms as T


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(function: cfg.Function) -> str:
    """Render a function's CFG: one record node per basic block."""
    lines = [f'digraph "{_escape(function.name)}_cfg" {{', "  node [shape=box];"]
    for label in function.block_order():
        block = function.blocks[label]
        body = "\\l".join(_escape(repr(instr)) for instr in block.all_instrs())
        lines.append(f'  "{label}" [label="{label}:\\l{body}\\l"];')
        for succ in block.succs:
            lines.append(f'  "{label}" -> "{succ}";')
    lines.append("}")
    return "\n".join(lines)


def _vertex_id(key: VertexKey) -> str:
    return _escape("_".join(str(part) for part in key))


def _vertex_label(key: VertexKey) -> str:
    kind = key[0]
    if kind == "def":
        return key[1]
    if kind == "use":
        return f"{key[1]}@{key[2]}"
    if kind == "const":
        return str(key[1])
    return f"op#{key[1]}"


def seg_to_dot(seg: SEG) -> str:
    """Render a SEG in the style of the paper's Fig. 4."""
    lines = [f'digraph "{_escape(seg.function_name)}_seg" {{']
    lines.append("  rankdir=BT;")
    emitted = set()

    def emit_vertex(key: VertexKey) -> str:
        ident = _vertex_id(key)
        if ident not in emitted:
            emitted.add(ident)
            shape = {
                "def": "ellipse",
                "use": "ellipse",
                "const": "plaintext",
                "op": "diamond",
            }[key[0]]
            lines.append(
                f'  "{ident}" [label="{_escape(_vertex_label(key))}", shape={shape}];'
            )
        return ident

    for edges in seg.out_edges.values():
        for edge in edges:
            src = emit_vertex(edge.src)
            dst = emit_vertex(edge.dst)
            attrs = []
            if edge.label is not T.TRUE:
                attrs.append(f'label="{_escape(str(edge.label))}"')
            if not edge.is_copy:
                attrs.append("color=gray")
            attr_text = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f'  "{src}" -> "{dst}"{attr_text};')

    # Control dependence: dashed edges from a representative statement
    # vertex to the governing branch variable, labeled true/false.
    _render_control_edges(seg, lines, emit_vertex)
    lines.append("}")
    return "\n".join(lines)


def write_verify_dumps(
    directory: str,
    failures: Dict[str, tuple],
    diagnostics: Iterable = (),
) -> List[str]:
    """Dump the artifacts the verifier quarantined, one dot file each.

    ``failures`` maps a function name to ``('cfg', Function)`` (IR-stage
    failure) or ``('seg', SEG)`` (SEG-stage failure), as collected on
    :class:`~repro.core.engine.Pinpoint`.  Each file is prefixed with
    the function's verify diagnostics as ``//`` comments, so the graph
    and the violated rules travel together.  Rendering a *corrupt*
    artifact may itself fail; the dump then degrades to the comment
    header plus the error, never raising.
    """
    os.makedirs(directory, exist_ok=True)
    by_unit: Dict[str, List[str]] = {}
    for diag in diagnostics:
        if getattr(diag, "stage", "") == "verify":
            by_unit.setdefault(diag.unit, []).append(str(diag))
    written: List[str] = []
    for name, (kind, artifact) in sorted(failures.items()):
        header = [f"// verify failure dump for function {name!r} ({kind})"]
        header.extend(f"// {entry}" for entry in by_unit.get(name, []))
        try:
            if kind == "seg":
                body = seg_to_dot(artifact)
            else:
                body = cfg_to_dot(artifact)
        except Exception as error:  # corrupt artifact: keep the header
            body = f'digraph "{_escape(name)}" {{}}  // render failed: {error}'
        path = os.path.join(directory, f"{name}.{kind}.dot")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(header + [body]) + "\n")
        written.append(path)
    return written


def _render_control_edges(seg: SEG, lines: List[str], emit_vertex) -> None:
    # Control dependence: dashed edges from a representative statement
    # vertex to the governing branch variable, labeled true/false.
    for stmt_uid, controls in seg.control.items():
        instr = seg.instr_by_uid.get(stmt_uid)
        if instr is None:
            continue
        dest = instr.defined_var()
        anchor: VertexKey
        if dest is not None:
            anchor = ("def", dest)
        else:
            used = instr.used_vars()
            if not used:
                continue
            anchor = ("use", used[0], stmt_uid)
        src_id = emit_vertex(anchor)
        for cond_var, taken in controls:
            dst_id = emit_vertex(("def", cond_var))
            lines.append(
                f'  "{src_id}" -> "{dst_id}" '
                f'[style=dashed, label="{"true" if taken else "false"}"];'
            )
