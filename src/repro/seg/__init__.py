"""The symbolic expression graph (SEG), Section 3.2 of the paper.

A SEG is a per-function sparse value-flow graph that compactly encodes

- conditional and unconditional data dependence (including dependence
  through memory, labeled with the points-to conditions computed by the
  local analysis),
- control dependence (edges to branch-condition variables), and
- symbolic expressions (operator vertices),

and supports querying "efficient path conditions" (Section 3.2.2): the
``DD``/``CD`` constraint generators and the path condition ``PC(π)`` of
Equation (1) live in :mod:`repro.seg.conditions`.
"""

from repro.seg.graph import SEG, VertexKey, def_key, use_key
from repro.seg.builder import build_seg
from repro.seg.conditions import ConditionBuilder, Constraint

__all__ = [
    "SEG",
    "Constraint",
    "ConditionBuilder",
    "VertexKey",
    "build_seg",
    "def_key",
    "use_key",
]
