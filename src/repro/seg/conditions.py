"""Efficient path conditions over the SEG (paper Section 3.2.2).

The three constraint generators of the paper:

- ``DD(v)`` — the data-dependence constraint of a variable: for each
  incoming edge, the implication ``label => v == source``, recursively
  expanded through sources and label variables (Example 3.7);
- ``CD(v@s)`` — the control-dependence constraint of a statement: the
  branch literals governing it, plus the data dependence of the branch
  variables and the control dependence of their defining statements
  (Example 3.8);
- ``PC(π)`` — the path condition of a value-flow path, Equation (1).

All three return a :class:`Constraint` carrying the term plus the sets of
*unexpanded* dependencies written ``PC(·)^P_R`` in the paper:

- ``params``: function formal parameters (including Aux formal
  parameters) whose constraints live in callers and are recovered by
  Equation (3) when paths are stitched;
- ``receivers``: call-site receivers whose constraints live in callees
  and are recovered from RV summaries by Equation (2).

Recursion through loop-carried phis is cut off (the operand becomes
unconstrained), matching the paper's unroll-once treatment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.ir import cfg
from repro.seg.graph import SEG, VertexKey, def_key, vertex_var
from repro.smt import terms as T
from repro.smt.terms import Term

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class Constraint:
    """A term plus its unexpanded parameter/receiver dependencies —
    the paper's ``PC(·)^P_R`` notation."""

    term: Term
    params: FrozenSet[str] = _EMPTY
    receivers: FrozenSet[str] = _EMPTY

    def conjoin(self, *others: "Constraint") -> "Constraint":
        terms = [self.term]
        params = set(self.params)
        receivers = set(self.receivers)
        for other in others:
            terms.append(other.term)
            params |= other.params
            receivers |= other.receivers
        return Constraint(T.and_(*terms), frozenset(params), frozenset(receivers))


TRUE_CONSTRAINT = Constraint(T.TRUE)


def ivar(name: str) -> Term:
    """Integer/pointer view of an SSA variable."""
    return T.int_var(name)


def bvar(name: str) -> Term:
    """Boolean view of an SSA variable (branch conditions, gates)."""
    return T.bool_var(name)


_COMPARISON_BUILDERS = {
    "==": T.eq,
    "!=": T.ne,
    "<": T.lt,
    "<=": T.le,
    ">": T.gt,
    ">=": T.ge,
}

_ARITH_BUILDERS = {"+": T.add, "-": T.sub, "*": T.mul}


class ConditionBuilder:
    """Computes DD/CD/PC over one function's SEG, with memoization."""

    def __init__(self, seg: SEG, function: cfg.Function) -> None:
        self.seg = seg
        self.function = function
        self._interface = set(function.params) | set(function.aux_params)
        self._dd_cache: Dict[str, Constraint] = {}
        self._dd_in_progress: set = set()
        self._cd_cache: Dict[int, Constraint] = {}
        self._cd_in_progress: set = set()

    # ------------------------------------------------------------------
    # Operand terms
    # ------------------------------------------------------------------
    def _operand_term(self, operand: cfg.Operand) -> Term:
        if isinstance(operand, cfg.Var):
            return ivar(operand.name)
        return T.const(operand.value)

    def _operand_dd(self, operand: cfg.Operand) -> Constraint:
        if isinstance(operand, cfg.Var):
            return self.dd(operand.name)
        return TRUE_CONSTRAINT

    def _condition_dd(self, condition: Term) -> Constraint:
        """DD of every variable occurring in an edge-label condition."""
        parts = [self.dd(name) for name in sorted(condition.variables())]
        return TRUE_CONSTRAINT.conjoin(*parts) if parts else TRUE_CONSTRAINT

    # ------------------------------------------------------------------
    # DD
    # ------------------------------------------------------------------
    def dd(self, var: str) -> Constraint:
        cached = self._dd_cache.get(var)
        if cached is not None:
            return cached
        if var in self._dd_in_progress:
            return TRUE_CONSTRAINT  # loop-carried: unroll-once cut
        self._dd_in_progress.add(var)
        try:
            result = self._compute_dd(var)
        finally:
            self._dd_in_progress.discard(var)
        self._dd_cache[var] = result
        return result

    def _compute_dd(self, var: str) -> Constraint:
        if var in self._interface:
            # Constraints of parameters are recovered by callers (Eq. 3).
            return Constraint(T.TRUE, frozenset((var,)))
        if var.endswith(".undef"):
            # A use on a path with no prior definition: reads as 0 (the
            # interpreter's semantics), so e.g. freeing it is a no-op.
            return Constraint(
                T.and_(
                    T.eq(ivar(var), T.const(0)),
                    T.iff(bvar(var), T.FALSE),
                )
            )
        instr = self.seg.def_instr.get(var)
        if instr is None:
            return TRUE_CONSTRAINT  # undefined / external
        if isinstance(instr, cfg.Assign):
            src_term = self._operand_term(instr.src)
            term = T.and_(
                T.eq(ivar(var), src_term),
                self._bool_link(var, instr.src),
            )
            return Constraint(term).conjoin(self._operand_dd(instr.src))
        if isinstance(instr, cfg.BinOp):
            return self._binop_dd(var, instr)
        if isinstance(instr, cfg.UnOp):
            return self._unop_dd(var, instr)
        if isinstance(instr, cfg.Phi):
            parts: List[Constraint] = []
            terms: List[Term] = []
            for index, (_, operand) in enumerate(instr.incomings):
                edges = [
                    e
                    for e in self.seg.in_edges.get(def_key(var), ())
                ]
                # Edge labels were attached in operand order at build time;
                # recompute from the graph for robustness.
                del edges
                gate = self._phi_gate(instr, index)
                if gate is T.FALSE:
                    continue
                src_term = self._operand_term(operand)
                terms.append(T.implies(gate, T.eq(ivar(var), src_term)))
                terms.append(
                    T.implies(gate, self._bool_link_term(var, operand))
                )
                parts.append(self._operand_dd(operand))
                parts.append(self._condition_dd(gate))
            return Constraint(T.and_(*terms)).conjoin(*parts)
        if isinstance(instr, cfg.Load):
            parts = []
            terms = []
            for edge in self.seg.in_edges.get(def_key(var), ()):  # noqa: B909
                src = edge.src
                if src[0] == "const":
                    src_term: Term = T.const(src[1])
                    src_dd = TRUE_CONSTRAINT
                    link = T.TRUE
                else:
                    name = vertex_var(src)
                    src_term = ivar(name)
                    src_dd = self.dd(name)
                    link = T.iff(bvar(var), bvar(name))
                terms.append(T.implies(edge.label, T.eq(ivar(var), src_term)))
                terms.append(T.implies(edge.label, link))
                parts.append(src_dd)
                parts.append(self._condition_dd(edge.label))
            return Constraint(T.and_(*terms)).conjoin(*parts)
        if isinstance(instr, cfg.Call):
            # Receiver: value range summarized in the callee (Eq. 2).
            return Constraint(T.TRUE, receivers=frozenset((var,)))
        if isinstance(instr, cfg.Malloc):
            # A fresh allocation is non-null.
            return Constraint(T.ne(ivar(var), T.const(0)))
        return TRUE_CONSTRAINT

    def _phi_gate(self, instr: cfg.Phi, index: int) -> Term:
        # Gate labels live on the SEG edges; recover by matching operand
        # order (edges are appended in operand order by the builder).
        edges = self.seg.in_edges.get(def_key(instr.dest), [])
        if index < len(edges):
            return edges[index].label
        return T.TRUE

    def _bool_link(self, var: str, operand: cfg.Operand) -> Term:
        return self._bool_link_term(var, operand)

    def _bool_link_term(self, var: str, operand: cfg.Operand) -> Term:
        """Keep the boolean view of a copied variable consistent with its
        source, so branch literals on either name agree."""
        if isinstance(operand, cfg.Var):
            return T.iff(bvar(var), bvar(operand.name))
        return T.iff(bvar(var), T.TRUE if operand.value else T.FALSE)

    def _binop_dd(self, var: str, instr: cfg.BinOp) -> Constraint:
        lhs = self._operand_term(instr.lhs)
        rhs = self._operand_term(instr.rhs)
        op = instr.op
        if op in _COMPARISON_BUILDERS:
            term = T.iff(bvar(var), _COMPARISON_BUILDERS[op](lhs, rhs))
        elif op in _ARITH_BUILDERS:
            value = _ARITH_BUILDERS[op](lhs, rhs)
            term = T.and_(
                T.eq(ivar(var), value),
                T.iff(bvar(var), T.ne(ivar(var), T.const(0))),
            )
        elif op == "&&":
            term = T.iff(
                bvar(var),
                T.and_(self._bool_view(instr.lhs), self._bool_view(instr.rhs)),
            )
        elif op == "||":
            term = T.iff(
                bvar(var),
                T.or_(self._bool_view(instr.lhs), self._bool_view(instr.rhs)),
            )
        else:  # division/modulo: uninterpreted
            term = T.TRUE
        return Constraint(term).conjoin(
            self._operand_dd(instr.lhs), self._operand_dd(instr.rhs)
        )

    def _unop_dd(self, var: str, instr: cfg.UnOp) -> Constraint:
        operand = instr.operand
        if instr.op == "!":
            term = T.iff(bvar(var), T.not_(self._bool_view(operand)))
        elif instr.op == "-":
            term = T.eq(ivar(var), T.neg(self._operand_term(operand)))
        else:
            term = T.TRUE
        return Constraint(term).conjoin(self._operand_dd(operand))

    def _bool_view(self, operand: cfg.Operand) -> Term:
        if isinstance(operand, cfg.Var):
            return bvar(operand.name)
        return T.TRUE if operand.value else T.FALSE

    # ------------------------------------------------------------------
    # CD
    # ------------------------------------------------------------------
    def cd(self, stmt_uid: int) -> Constraint:
        cached = self._cd_cache.get(stmt_uid)
        if cached is not None:
            return cached
        if stmt_uid in self._cd_in_progress:
            return TRUE_CONSTRAINT
        self._cd_in_progress.add(stmt_uid)
        try:
            result = self._compute_cd(stmt_uid)
        finally:
            self._cd_in_progress.discard(stmt_uid)
        self._cd_cache[stmt_uid] = result
        return result

    def _compute_cd(self, stmt_uid: int) -> Constraint:
        controls = self.seg.statement_controls(stmt_uid)
        if not controls:
            return TRUE_CONSTRAINT
        terms: List[Term] = []
        parts: List[Constraint] = []
        for cond_var, taken in controls:
            literal = bvar(cond_var) if taken else T.not_(bvar(cond_var))
            terms.append(literal)
            parts.append(self.dd(cond_var))
            # Recursive control dependence of the branch variable's
            # defining statement (Example 3.8: CD chains θ4 -> θ3).
            def_instr = self.seg.def_instr.get(cond_var)
            if def_instr is not None:
                parts.append(self.cd(def_instr.uid))
        return Constraint(T.and_(*terms)).conjoin(*parts)

    # ------------------------------------------------------------------
    # PC (Equation 1)
    # ------------------------------------------------------------------
    def pc(self, path: Sequence[VertexKey]) -> Constraint:
        """Path condition of a local value-flow path in this SEG.

        ``path`` is a sequence of def/use vertex keys; consecutive
        vertices must be connected by copy edges (or name the same
        variable at def/use anchors).
        """
        parts: List[Constraint] = []
        terms: List[Term] = []
        previous: Optional[VertexKey] = None
        for vertex in path:
            var = vertex_var(vertex)
            stmt_uid = self._anchor_stmt(vertex)
            if stmt_uid is not None:
                parts.append(self.cd(stmt_uid))
            if previous is not None:
                prev_var = vertex_var(previous)
                label, is_copy = self._edge_info(previous, vertex)
                # The v_{i-1} == v_i equation of Eq. (1) holds only for
                # copy edges; a hop through an operator vertex (taint
                # through arithmetic) transforms the value.
                if (
                    is_copy
                    and prev_var is not None
                    and var is not None
                    and prev_var != var
                ):
                    terms.append(T.eq(ivar(prev_var), ivar(var)))
                if label is not None and label is not T.TRUE:
                    terms.append(label)
                    parts.append(self._condition_dd(label))
            previous = vertex
        return Constraint(T.and_(*terms)).conjoin(*parts)

    def _anchor_stmt(self, vertex: VertexKey) -> Optional[int]:
        if vertex[0] == "use":
            return vertex[2]
        if vertex[0] == "def":
            instr = self.seg.def_instr.get(vertex[1])
            return instr.uid if instr is not None else None
        return None

    def _edge_label(self, src: VertexKey, dst: VertexKey) -> Optional[Term]:
        label, _ = self._edge_info(src, dst)
        return label

    def _edge_info(self, src: VertexKey, dst: VertexKey):
        """(label, is_copy) of the edge src -> dst; no edge means a jump
        the search made through an operator or summary (label None, and
        treated as a non-copy transition)."""
        for edge in self.seg.in_edges.get(dst, ()):  # noqa: B909
            if edge.src == src:
                return edge.label, edge.is_copy
        return None, False
