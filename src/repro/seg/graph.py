"""SEG data structure (paper Definition 3.2).

Vertices are identified by lightweight tuple keys:

- ``('def', var)`` — the unique SSA definition of ``var`` (the paper's
  abbreviation of ``v@s`` when ``v`` is defined at ``s``);
- ``('use', var, stmt_uid)`` — a use of ``var`` at a specific statement,
  needed to anchor sources and sinks (``c@free(c)``);
- ``('const', value, stmt_uid)`` — a constant operand occurrence;
- ``('op', stmt_uid)`` — an operator vertex representing the symbolic
  expression computed by the statement.

Edges:

- *data-dependence* edges carry a condition label (a Term; ``TRUE`` for
  unconditional dependence).  Copy-like edges (assignment, phi operand,
  memory load, use-at-statement) are marked ``is_copy`` — value-flow path
  search follows exactly these, while operator edges participate only in
  symbolic-expression/condition construction;
- *control-dependence* edges from a statement to the branch-condition
  variables governing it, labeled true/false.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.ir import cfg
from repro.smt.terms import Term

VertexKey = Tuple  # ('def', var) | ('use', var, uid) | ('const', val, uid) | ('op', uid)


def def_key(var: str) -> VertexKey:
    return ("def", var)


def use_key(var: str, stmt_uid: int) -> VertexKey:
    return ("use", var, stmt_uid)


def const_key(value: int, stmt_uid: int) -> VertexKey:
    return ("const", value, stmt_uid)


def op_key(stmt_uid: int) -> VertexKey:
    return ("op", stmt_uid)


def vertex_var(key: VertexKey) -> Optional[str]:
    """SSA variable named by a def/use vertex, None for const/op."""
    if key[0] in ("def", "use"):
        return key[1]
    return None


@dataclass
class DataEdge:
    src: VertexKey
    dst: VertexKey
    label: Term
    is_copy: bool = True


@dataclass
class SEG:
    """The symbolic expression graph of one (transformed, SSA) function."""

    function_name: str
    vertices: set = field(default_factory=set)
    # Data dependence, indexed both ways.
    out_edges: Dict[VertexKey, List[DataEdge]] = field(default_factory=dict)
    in_edges: Dict[VertexKey, List[DataEdge]] = field(default_factory=dict)
    # Control dependence: statement uid -> [(branch cond SSA var, taken)].
    control: Dict[int, List[Tuple[str, bool]]] = field(default_factory=dict)
    # Statement bookkeeping.
    instr_by_uid: Dict[int, cfg.Instr] = field(default_factory=dict)
    def_instr: Dict[str, cfg.Instr] = field(default_factory=dict)
    # Anchors populated by the builder, consumed by checkers/engine.
    call_sites: List[cfg.Call] = field(default_factory=list)
    return_instr: Optional[cfg.Ret] = None

    # ------------------------------------------------------------------
    def add_vertex(self, key: VertexKey) -> VertexKey:
        self.vertices.add(key)
        return key

    def add_data_edge(
        self, src: VertexKey, dst: VertexKey, label: Term, is_copy: bool = True
    ) -> None:
        self.add_vertex(src)
        self.add_vertex(dst)
        edge = DataEdge(src, dst, label, is_copy)
        self.out_edges.setdefault(src, []).append(edge)
        self.in_edges.setdefault(dst, []).append(edge)

    def copy_successors(self, key: VertexKey) -> Iterable[DataEdge]:
        for edge in self.out_edges.get(key, ()):  # noqa: B909
            if edge.is_copy:
                yield edge

    def copy_predecessors(self, key: VertexKey) -> Iterable[DataEdge]:
        for edge in self.in_edges.get(key, ()):  # noqa: B909
            if edge.is_copy:
                yield edge

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self.out_edges.values())

    def vertex_count(self) -> int:
        return len(self.vertices)

    def statement_controls(self, stmt_uid: int) -> List[Tuple[str, bool]]:
        return self.control.get(stmt_uid, [])
