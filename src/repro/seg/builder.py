"""SEG construction from a prepared (transformed, SSA) function.

Follows the paper's construction (Section 3.2.1):

- direct def-use dependence from assignments and operators,
- conditional dependence from phis labeled with gating conditions,
- memory-mediated dependence from the local points-to analysis: a load's
  incoming edges come from the values the analysis resolved, labeled with
  their conditions (the ``{(L, θ1), (M, ¬θ1)}`` sets of Fig. 2),
- control-dependence edges from each statement to the branch variables
  that govern its block, labeled true/false,
- use-vertices anchoring operands at statements (``c@free(c)``), so
  checkers can designate sources and sinks.
"""

from __future__ import annotations

from repro.core.pipeline import PreparedFunction
from repro.ir import cfg
from repro.obs.metrics import get_registry
from repro.obs.trace import trace
from repro.seg.graph import SEG, const_key, def_key, op_key, use_key
from repro.smt import terms as T


def build_seg(prepared: PreparedFunction) -> SEG:
    with trace("seg.build", unit=prepared.function.name) as span:
        seg = _build_seg(prepared)
        registry = get_registry()
        registry.counter("seg.nodes", "SEG vertices built").inc(seg.vertex_count())
        registry.counter("seg.edges", "SEG edges built").inc(seg.edge_count())
        span.set(nodes=seg.vertex_count(), edges=seg.edge_count())
        return seg


def _build_seg(prepared: PreparedFunction) -> SEG:
    function = prepared.function
    points_to = prepared.points_to
    gates = prepared.gates
    seg = SEG(function.name)

    def operand_vertex(operand: cfg.Operand, stmt_uid: int):
        if isinstance(operand, cfg.Var):
            return def_key(operand.name)
        return const_key(operand.value, stmt_uid)

    def add_use(operand: cfg.Operand, stmt_uid: int):
        """Anchor an operand use at a statement and wire its def in."""
        if isinstance(operand, cfg.Var):
            use = use_key(operand.name, stmt_uid)
            seg.add_data_edge(def_key(operand.name), use, T.TRUE)
            return use
        return seg.add_vertex(const_key(operand.value, stmt_uid))

    for label in function.block_order():
        block = function.blocks[label]
        controls = prepared.control_deps.get(label, [])
        control_list = []
        for branch_label, taken in controls:
            branch = function.blocks[branch_label].terminator
            assert isinstance(branch, cfg.Branch)
            if isinstance(branch.cond, cfg.Var):
                control_list.append((branch.cond.name, taken))
        for instr in block.all_instrs():
            seg.instr_by_uid[instr.uid] = instr
            if control_list:
                seg.control[instr.uid] = list(control_list)
            dest = instr.defined_var()
            if dest is not None:
                seg.def_instr[dest] = instr
            _add_instr_edges(seg, instr, points_to, gates, operand_vertex, add_use)
    return seg


def _add_instr_edges(seg, instr, points_to, gates, operand_vertex, add_use):
    if isinstance(instr, cfg.Assign):
        seg.add_data_edge(operand_vertex(instr.src, instr.uid), def_key(instr.dest), T.TRUE)
    elif isinstance(instr, cfg.Phi):
        for index, (_, operand) in enumerate(instr.incomings):
            gate = gates.gate(instr, index)
            if gate is T.FALSE:
                continue
            seg.add_data_edge(operand_vertex(operand, instr.uid), def_key(instr.dest), gate)
    elif isinstance(instr, (cfg.BinOp, cfg.UnOp)):
        # Operator vertex encoding the symbolic expression (Example 3.3).
        operator = op_key(instr.uid)
        operands = (
            (instr.lhs, instr.rhs) if isinstance(instr, cfg.BinOp) else (instr.operand,)
        )
        for operand in operands:
            seg.add_data_edge(
                operand_vertex(operand, instr.uid), operator, T.TRUE, is_copy=False
            )
        seg.add_data_edge(operator, def_key(instr.dest), T.TRUE, is_copy=False)
    elif isinstance(instr, cfg.Load):
        add_use(instr.pointer, instr.uid)  # dereference anchor (sink)
        for value, cond in points_to.load_values.get(instr.uid, ()):  # noqa: B909
            seg.add_data_edge(operand_vertex(value, instr.uid), def_key(instr.dest), cond)
    elif isinstance(instr, cfg.Store):
        add_use(instr.pointer, instr.uid)  # dereference anchor (sink)
        add_use(instr.value, instr.uid)
    elif isinstance(instr, cfg.Malloc):
        seg.add_vertex(def_key(instr.dest))
    elif isinstance(instr, cfg.Call):
        seg.call_sites.append(instr)
        for operand in instr.args:
            add_use(operand, instr.uid)  # actual-parameter anchors
        for receiver in instr.all_receivers():
            seg.add_vertex(def_key(receiver))  # filled by callee summaries
    elif isinstance(instr, cfg.Ret):
        seg.return_instr = instr
        if instr.value is not None:
            add_use(instr.value, instr.uid)  # return-value anchors
        for operand in instr.extra_values:
            add_use(operand, instr.uid)
    elif isinstance(instr, cfg.Branch):
        if isinstance(instr.cond, cfg.Var):
            add_use(instr.cond, instr.uid)
    # Jump: no dependence.
