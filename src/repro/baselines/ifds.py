"""Dense, IFDS-style data-flow baseline (Saturn/Calysto stand-in).

The paper's Section 1 motivates sparse analysis by the cost of "dense"
designs that propagate data-flow facts to *all* program points along
control-flow edges.  This baseline does exactly that for
use-after-free facts:

- a fact is "variable v holds a dangling value" (or "some dangling value
  was stored to the heap");
- facts propagate along CFG edges through every statement of every
  block — the per-statement work that sparse analyses skip;
- aliases are approximated by per-function copy-equivalence classes
  (assign/phi closures), and heap traffic by a single coarse heap fact;
- calls are handled context-insensitively with classic summary flags:
  "callee frees parameter i" and "callee returns a dangling value",
  computed in the same whole-program fixpoint.

The result is what the paper says of Saturn/Calysto: it finds the bugs
(including cross-function ones), is path-insensitive (reports the
contradictory-branch traps), and does strictly more per-statement work
than the sparse engines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.checkers.use_after_free import FREE_NAMES
from repro.core.report import BugReport, Location
from repro.ir import cfg
from repro.ir.lower import lower_program
from repro.ir.ssa import to_ssa
from repro.lang.parser import parse_program

Fact = Tuple[str, str]  # ('var', name) | ('heap', '')


@dataclass
class IFDSStats:
    propagations: int = 0
    facts_max: int = 0
    rounds: int = 0
    seconds: float = 0.0


class _CopyClasses:
    """Per-function union-find over copy-related variables."""

    def __init__(self, function: cfg.Function) -> None:
        self._parent: Dict[str, str] = {}
        for instr in function.all_instrs():
            if isinstance(instr, cfg.Assign) and isinstance(instr.src, cfg.Var):
                self._union(instr.dest, instr.src.name)
            elif isinstance(instr, cfg.Phi):
                for _, operand in instr.incomings:
                    if isinstance(operand, cfg.Var):
                        self._union(instr.dest, operand.name)

    def _find(self, var: str) -> str:
        parent = self._parent
        root = var
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[var] != root:
            parent[var], var = root, parent[var]
        return root

    def _union(self, a: str, b: str) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._parent[rb] = ra

    def same(self, a: str, b: str) -> bool:
        return self._find(a) == self._find(b)

    def members(self, var: str, universe) -> List[str]:
        root = self._find(var)
        return [v for v in universe if self._find(v) == root]


class IFDSBaseline:
    """Dense forward propagation of dangling-value facts."""

    def __init__(self, module: cfg.Module) -> None:
        self.module = module
        self.stats = IFDSStats()
        self._classes: Dict[str, _CopyClasses] = {}
        self._vars: Dict[str, List[str]] = {}
        for function in module:
            self._classes[function.name] = _CopyClasses(function)
            names: Set[str] = set(function.params)
            for instr in function.all_instrs():
                dest = instr.defined_var()
                if dest is not None:
                    names.add(dest)
                names.update(instr.used_vars())
            self._vars[function.name] = sorted(names)

    @classmethod
    def from_source(cls, source: str) -> "IFDSBaseline":
        module = lower_program(parse_program(source))
        for function in module:
            to_ssa(function)
        return cls(module)

    # ------------------------------------------------------------------
    def check_use_after_free(self) -> List[BugReport]:
        start = time.perf_counter()
        reports: Dict[tuple, BugReport] = {}
        block_in: Dict[Tuple[str, str], Set[Fact]] = {}
        # Whole-program summary flags, grown monotonically.
        frees_param: Set[Tuple[str, int]] = set()
        returns_dangling: Set[str] = set()
        dangling_param: Set[Tuple[str, int]] = set()

        changed = True
        while changed and self.stats.rounds < 20:
            self.stats.rounds += 1
            changed = False
            for function in self.module:
                if self._propagate_function(
                    function,
                    block_in,
                    frees_param,
                    returns_dangling,
                    dangling_param,
                    reports,
                ):
                    changed = True
        self.stats.seconds = time.perf_counter() - start
        return list(reports.values())

    # ------------------------------------------------------------------
    def _propagate_function(
        self,
        function: cfg.Function,
        block_in,
        frees_param: Set[Tuple[str, int]],
        returns_dangling: Set[str],
        dangling_param: Set[Tuple[str, int]],
        reports,
    ) -> bool:
        name = function.name
        classes = self._classes[name]
        universe = self._vars[name]
        changed = False

        entry_facts = block_in.setdefault((name, function.entry), set())
        for index, param in enumerate(function.params):
            if (name, index) in dangling_param:
                fact = ("var", param)
                if fact not in entry_facts:
                    entry_facts.add(fact)
                    changed = True

        summaries_before = (
            len(frees_param),
            len(returns_dangling),
            len(dangling_param),
        )
        for label in function.block_order():
            block = function.blocks[label]
            facts = set(block_in.setdefault((name, label), set()))
            self.stats.facts_max = max(self.stats.facts_max, len(facts))
            for instr in block.all_instrs():
                self.stats.propagations += 1
                self._transfer(
                    function,
                    classes,
                    universe,
                    instr,
                    facts,
                    frees_param,
                    returns_dangling,
                    dangling_param,
                    reports,
                )
            for succ in block.succs:
                succ_facts = block_in.setdefault((name, succ), set())
                before = len(succ_facts)
                succ_facts.update(facts)
                if len(succ_facts) != before:
                    changed = True
        if summaries_before != (
            len(frees_param),
            len(returns_dangling),
            len(dangling_param),
        ):
            changed = True
        return changed

    def _taint_class(self, classes, universe, facts: Set[Fact], var: str) -> None:
        for member in classes.members(var, universe):
            facts.add(("var", member))

    def _transfer(
        self,
        function: cfg.Function,
        classes: _CopyClasses,
        universe,
        instr: cfg.Instr,
        facts: Set[Fact],
        frees_param: Set[Tuple[str, int]],
        returns_dangling: Set[str],
        dangling_param: Set[Tuple[str, int]],
        reports,
    ) -> None:
        name = function.name

        def tracked(operand: cfg.Operand) -> bool:
            return isinstance(operand, cfg.Var) and ("var", operand.name) in facts

        def param_index_of(var: str):
            for index, param in enumerate(function.params):
                if classes.same(param, var):
                    return index
            return None

        if isinstance(instr, cfg.Call):
            is_free = instr.callee in FREE_NAMES and instr.callee not in self.module
            frees = is_free
            if instr.callee in self.module:
                for index, arg in enumerate(instr.args):
                    if isinstance(arg, cfg.Var):
                        if (instr.callee, index) in frees_param:
                            frees = True
                            self._mark_freed(
                                function, classes, universe, instr, arg.name,
                                facts, frees_param, param_index_of, reports,
                            )
                        if tracked(arg):
                            dangling_param.add((instr.callee, index))
                if instr.callee in returns_dangling and instr.dest is not None:
                    self._taint_class(classes, universe, facts, instr.dest)
            if is_free:
                for arg in instr.args:
                    if isinstance(arg, cfg.Var):
                        if tracked(arg):
                            self._report(reports, name, instr, arg.name, "double free")
                        self._mark_freed(
                            function, classes, universe, instr, arg.name,
                            facts, frees_param, param_index_of, reports,
                        )
            del frees
            return
        if isinstance(instr, cfg.Assign):
            if tracked(instr.src):
                facts.add(("var", instr.dest))
            return
        if isinstance(instr, cfg.Phi):
            if any(tracked(op) for _, op in instr.incomings):
                facts.add(("var", instr.dest))
            return
        if isinstance(instr, cfg.Load):
            if tracked(instr.pointer):
                self._report(reports, name, instr, instr.pointer.name, "use after free")
            if ("heap", "") in facts:
                facts.add(("var", instr.dest))
            return
        if isinstance(instr, cfg.Store):
            if tracked(instr.pointer):
                self._report(reports, name, instr, instr.pointer.name, "use after free")
            return
        if isinstance(instr, cfg.Ret):
            operands = ([] if instr.value is None else [instr.value]) + list(
                instr.extra_values
            )
            if any(tracked(op) for op in operands):
                returns_dangling.add(name)
            return

    def _mark_freed(
        self,
        function: cfg.Function,
        classes: _CopyClasses,
        universe,
        instr: cfg.Instr,
        var: str,
        facts: Set[Fact],
        frees_param: Set[Tuple[str, int]],
        param_index_of,
        reports,
    ) -> None:
        """A value held by ``var`` became dangling here."""
        self._taint_class(classes, universe, facts, var)
        # If the value was ever stored into memory, the stored copy
        # dangles too (coarse single-heap approximation).
        for other in function.all_instrs():
            if (
                isinstance(other, cfg.Store)
                and isinstance(other.value, cfg.Var)
                and classes.same(other.value.name, var)
            ):
                facts.add(("heap", ""))
        index = param_index_of(var)
        if index is not None:
            frees_param.add((function.name, index))

    def _report(self, reports, func_name: str, instr: cfg.Instr, var: str, kind: str) -> None:
        report = BugReport(
            checker="use-after-free",
            source=Location(func_name, instr.line, var),
            sink=Location(func_name, instr.line, var),
            condition=f"unknown (dense, path-insensitive): {kind}",
        )
        reports.setdefault(report.key(), report)
