"""Baseline analyses the paper compares against.

- :mod:`repro.baselines.svf` — the "layered" design (SVF [45,46]):
  whole-program Andersen points-to first, then a global sparse value-flow
  graph, then condition-free source-sink traversal.  Exhibits the
  "pointer trap": imprecise points-to inflates the SVFG and the warning
  count (paper Fig. 7-9, Table 1).
- :mod:`repro.baselines.ifds` — a dense IFDS-style propagation in the
  style of Saturn/Calysto: data-flow facts pushed along control-flow
  edges (paper Section 1's motivation for sparseness).
- :mod:`repro.baselines.intraunit` — an intra-unit checker in the style
  of Infer/CSA as the paper describes them: per-function, no cross-unit
  value flow, no full path correlation (Table 3).
"""

from repro.baselines.svf import SVFBaseline, SVFGStats
from repro.baselines.ifds import IFDSBaseline
from repro.baselines.intraunit import IntraUnitBaseline

__all__ = ["IFDSBaseline", "IntraUnitBaseline", "SVFBaseline", "SVFGStats"]
