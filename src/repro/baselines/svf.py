"""The "layered" SVF baseline (paper Sections 1-2, evaluation §5.1).

Design replicated from SVF (Sui & Xue, CC'16), the strongest layered
competitor the paper evaluates:

1. **Independent global points-to analysis** — flow-, context- and
   path-insensitive Andersen inclusion analysis over the whole program
   (:mod:`repro.pta.andersen`).
2. **Global sparse value-flow graph (FSVFG)** — one graph for the whole
   program: direct def-use edges, plus memory edges from *every* store
   that may write an object to *every* load that may read it (per the
   points-to results), plus context-insensitive call/return bindings.
3. **Bug detection** — graph reachability from checker sources to sinks,
   with no path conditions and no context sensitivity.

The imprecision is the point of the comparison: one spurious points-to
target creates many spurious SVFG edges, each of which manufactures
warnings ("the pointer trap").  The baseline also *materializes* the
whole graph up front, which is what blows up its time and memory on the
paper's larger subjects (Figs. 7-9).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.checkers.base import Checker
from repro.core.report import BugReport, Location
from repro.ir import cfg
from repro.ir.lower import lower_program
from repro.ir.ssa import to_ssa
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.pta.andersen import AndersenAnalysis
from repro.pta.memory import MemObject

Node = Tuple[str, str]  # (function, ssa var) — global value-flow node


@dataclass
class SVFGStats:
    functions: int = 0
    nodes: int = 0
    edges: int = 0
    pts_size: int = 0
    seconds_pta: float = 0.0
    seconds_svfg: float = 0.0
    seconds_check: float = 0.0

    def build_seconds(self) -> float:
        return self.seconds_pta + self.seconds_svfg


class SVFBaseline:
    """Layered SVFA: Andersen -> global SVFG -> reachability."""

    def __init__(self, module: cfg.Module) -> None:
        self.module = module
        self.stats = SVFGStats(functions=len(list(module)))
        self.succ: Dict[Node, List[Node]] = {}
        self.andersen: Optional[AndersenAnalysis] = None
        self._built = False

    # ------------------------------------------------------------------
    @classmethod
    def from_source(cls, source: str) -> "SVFBaseline":
        return cls.from_program(parse_program(source))

    @classmethod
    def from_program(cls, program: ast.Program) -> "SVFBaseline":
        module = lower_program(program)
        for function in module:
            to_ssa(function)
        return cls(module)

    # ------------------------------------------------------------------
    def build(self) -> "SVFBaseline":
        """Run the points-to analysis and materialize the global SVFG."""
        if self._built:
            return self
        start = time.perf_counter()
        self.andersen = AndersenAnalysis(self.module).run()
        self.stats.seconds_pta = time.perf_counter() - start
        self.stats.pts_size = self.andersen.total_pts_size()

        start = time.perf_counter()
        self._build_svfg()
        self.stats.seconds_svfg = time.perf_counter() - start
        self.stats.nodes = len(self.succ)
        self.stats.edges = sum(len(v) for v in self.succ.values())
        self._built = True
        return self

    def _add_edge(self, src: Node, dst: Node) -> None:
        self.succ.setdefault(src, []).append(dst)
        self.succ.setdefault(dst, [])

    def _build_svfg(self) -> None:
        andersen = self.andersen
        assert andersen is not None
        # Memory edges: store site writing object o -> load site reading o.
        stores_by_object: Dict[MemObject, List[Tuple[str, cfg.Store]]] = {}
        loads_by_object: Dict[MemObject, List[Tuple[str, cfg.Load]]] = {}

        for function in self.module:
            name = function.name
            for instr in function.all_instrs():
                if isinstance(instr, cfg.Assign) and isinstance(instr.src, cfg.Var):
                    self._add_edge((name, instr.src.name), (name, instr.dest))
                elif isinstance(instr, cfg.Phi):
                    for _, operand in instr.incomings:
                        if isinstance(operand, cfg.Var):
                            self._add_edge((name, operand.name), (name, instr.dest))
                elif isinstance(instr, cfg.Store):
                    for obj in andersen.sorted_points_to(name, instr.pointer.name):
                        stores_by_object.setdefault(obj, []).append((name, instr))
                elif isinstance(instr, cfg.Load):
                    for obj in andersen.sorted_points_to(name, instr.pointer.name):
                        loads_by_object.setdefault(obj, []).append((name, instr))
                elif isinstance(instr, cfg.Call) and instr.callee in self.module:
                    callee = self.module[instr.callee]
                    for actual, formal in zip(instr.args, callee.params):
                        if isinstance(actual, cfg.Var):
                            self._add_edge((name, actual.name), (callee.name, formal))
                    receivers = instr.all_receivers()
                    values: List[cfg.Operand] = []
                    for ret in callee.return_instrs():
                        if ret.value is not None:
                            values.append(ret.value)
                        values.extend(ret.extra_values)
                    for receiver, value in zip(receivers, values):
                        if isinstance(value, cfg.Var):
                            self._add_edge((callee.name, value.name), (name, receiver))

        # The quadratic blow-up: every store of o feeds every load of o,
        # with no flow, path, or context filtering.
        for obj, loads in loads_by_object.items():
            for store_fn, store in stores_by_object.get(obj, ()):  # noqa: B909
                if not isinstance(store.value, cfg.Var):
                    continue
                for load_fn, load in loads:
                    self._add_edge(
                        (store_fn, store.value.name), (load_fn, load.dest)
                    )

    # ------------------------------------------------------------------
    def check(self, checker: Checker) -> List[BugReport]:
        """Condition-free source-to-sink traversal: from each source the
        whole value-flow slice (backward to aliases, then forward) is
        swept, with no ordering, path, or context filtering."""
        self.build()
        start = time.perf_counter()
        reports: Dict[tuple, BugReport] = {}
        sources, sinks = self._anchors(checker)
        pred = self._reverse_adjacency()
        for src_fn, src_var, src_line in sources:
            # Backward closure: every node whose value flows into the
            # source (the freed value's aliases), then forward from all.
            roots = self._closure((src_fn, src_var), pred)
            reachable = set()
            for root in roots:
                reachable |= self._reachable(root)
            for sink_fn, sink_var, sink_line, sink_uid in sinks:
                if (sink_fn, sink_var) in reachable:
                    report = BugReport(
                        checker=checker.name,
                        source=Location(src_fn, src_line, src_var),
                        sink=Location(sink_fn, sink_line, sink_var),
                        condition="unknown (path-insensitive)",
                    )
                    reports.setdefault(report.key(), report)
        self.stats.seconds_check += time.perf_counter() - start
        return list(reports.values())

    def _anchors(self, checker: Checker):
        """Source/sink tuples reusing the checker's callee-name specs."""
        from repro.core.checkers.use_after_free import FREE_NAMES

        source_names = getattr(checker, "source_calls", FREE_NAMES)
        sink_is_deref = not hasattr(checker, "sink_calls")
        sink_names = getattr(checker, "sink_calls", FREE_NAMES)
        sources = []
        sinks = []
        for function in self.module:
            name = function.name
            for instr in function.all_instrs():
                if isinstance(instr, cfg.Call) and instr.callee in source_names:
                    if checker.name in ("use-after-free", "double-free"):
                        for arg in instr.args:
                            if isinstance(arg, cfg.Var):
                                sources.append((name, arg.name, instr.line))
                    elif instr.dest is not None:
                        sources.append((name, instr.dest, instr.line))
                if sink_is_deref and isinstance(instr, (cfg.Load, cfg.Store)):
                    sinks.append((name, instr.pointer.name, instr.line, instr.uid))
                elif (
                    not sink_is_deref
                    and isinstance(instr, cfg.Call)
                    and instr.callee in sink_names
                ):
                    for arg in instr.args:
                        if isinstance(arg, cfg.Var):
                            sinks.append((name, arg.name, instr.line, instr.uid))
        return sources, sinks

    def _reachable(self, start: Node) -> Set[Node]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for succ in self.succ.get(node, ()):  # noqa: B909
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def _reverse_adjacency(self) -> Dict[Node, List[Node]]:
        pred: Dict[Node, List[Node]] = {}
        for node, succs in self.succ.items():
            for succ in succs:
                pred.setdefault(succ, []).append(node)
        return pred

    def _closure(self, start: Node, pred: Dict[Node, List[Node]]) -> Set[Node]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for previous in pred.get(node, ()):  # noqa: B909
                if previous not in seen:
                    seen.add(previous)
                    stack.append(previous)
        return seen
