"""Intra-unit baseline: an Infer/CSA stand-in (paper Table 3).

The paper characterizes Infer and the Clang Static Analyzer as fast
because they "confine their activities within each compilation unit and
do not fully track path correlations", at the cost of more false
warnings and of missing cross-unit bugs.  This baseline reproduces that
trade-off:

- per-function only: no summaries, no caller/callee value flow;
- flow-sensitive (a use before the free is fine);
- *not* path-correlated: branch conditions are ignored, so the
  contradictory-branch trap is reported as a bug (a false positive).

It reuses Pinpoint's SEG but searches each function in isolation and
skips the condition-solving stage entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

from repro.core.checkers.base import Checker
from repro.core.engine import Pinpoint, PinpointFunction
from repro.core.report import BugReport, Location
from repro.seg.graph import def_key


@dataclass
class IntraUnitStats:
    functions: int = 0
    seconds: float = 0.0


class IntraUnitBaseline:
    """Per-function, path-insensitive source-sink search."""

    def __init__(self, engine: Pinpoint) -> None:
        self.engine = engine
        self.stats = IntraUnitStats(functions=len(engine.functions))

    @classmethod
    def from_source(cls, source: str) -> "IntraUnitBaseline":
        return cls(Pinpoint.from_source(source))

    # ------------------------------------------------------------------
    def check(self, checker: Checker) -> List[BugReport]:
        start = time.perf_counter()
        reports: Dict[tuple, BugReport] = {}
        defined = self.engine.module.functions
        for name, pf in self.engine.functions.items():
            call_uids = {
                call.uid for call in pf.seg.call_sites if call.callee in defined
            }
            sources = [
                s
                for s in checker.sources(pf.prepared, pf.seg)
                if s.instr_uid not in call_uids
            ]
            sinks = {
                s.vertex: s
                for s in checker.sinks(pf.prepared, pf.seg)
                if s.instr_uid not in call_uids
            }
            for source in sources:
                self._search(pf, checker, source, sinks, reports)
        self.stats.seconds = time.perf_counter() - start
        return list(reports.values())

    def _search(self, pf: PinpointFunction, checker, source, sinks, reports) -> None:
        name = pf.prepared.function.name
        start_vertex = def_key(source.value_var)
        # Like the main engine, fan out from the source value's local
        # alias closure (copies made before the free still dangle).
        stack = [start_vertex]
        visited = {start_vertex}
        closure = [start_vertex]
        while closure:
            vertex = closure.pop()
            for edge in pf.seg.copy_predecessors(vertex):
                if edge.src[0] == "def" and edge.src not in visited:
                    visited.add(edge.src)
                    closure.append(edge.src)
                    stack.append(edge.src)
        while stack:
            vertex = stack.pop()
            for edge in pf.seg.out_edges.get(vertex, ()):  # noqa: B909
                target = edge.dst
                if not edge.is_copy or target in visited:
                    continue
                visited.add(target)
                if target[0] == "def":
                    stack.append(target)
                    continue
                # Flow-sensitivity: respect statement ordering...
                if not pf.happens_after(source.instr_uid, target[2]):
                    continue
                # ...but NO path correlation: every ordered source-sink
                # pair is reported regardless of branch conditions.
                sink = sinks.get(target)
                if sink is not None:
                    report = BugReport(
                        checker=checker.name,
                        source=Location(name, source.line, source.value_var),
                        sink=Location(name, sink.line, sink.value_var),
                        condition="not checked (intra-unit)",
                    )
                    reports.setdefault(report.key(), report)
