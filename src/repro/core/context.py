"""Cloning-based context sensitivity (paper Section 3.3.1(2)).

When a callee's summarized constraint is used at a call site, every
variable in it is renamed with a per-context suffix (``x.2`` becomes
``x.2~7``), so two call sites of the same function get independent
constraint copies — the cloning-based approach of Whaley & Lam / Lattner
et al. that the paper follows.

A :class:`Context` remembers which call site created it and in which
parent context, so formal parameters surfacing later inside the cloned
constraint can still be bound to the right actuals (the lazy part of
Equations (2) and (3)).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.ir import cfg
from repro.smt import terms as T
from repro.smt.terms import Term


@dataclass(frozen=True)
class Context:
    """One clone of a function's constraints.

    ``None`` plays the role of the root context (the function the
    value-flow search started in), whose variables are never renamed.
    """

    ident: int
    function: str
    call: Optional[cfg.Call]  # the call site that created this clone
    parent: Optional["Context"]  # context the call site lives in

    @property
    def depth(self) -> int:
        depth = 0
        node: Optional[Context] = self
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def suffix(self) -> str:
        return f"~{self.ident}"


class ContextAllocator:
    """Allocates fresh contexts; one per engine run.

    The checker run calls :meth:`reset` before processing each function,
    so the idents a function's search allocates — and therefore the
    ``~N`` suffixes baked into its summarized conditions and report
    condition strings — depend only on that function's own artifacts and
    callee summaries, never on how much work preceded it in the run.
    That history-independence is what lets the session-level check memo
    replay a function's results byte-identically.  Suffix *chains* stay
    unambiguous because :func:`clone_term` renames every variable of the
    cloned constraint, so nested clones accumulate ``~i~j`` paths that
    are unique within the function even though idents restart."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def reset(self) -> None:
        self._counter = itertools.count(1)

    def new(
        self,
        function: str,
        call: Optional[cfg.Call],
        parent: Optional[Context],
    ) -> Context:
        return Context(next(self._counter), function, call, parent)


def rename_var(name: str, context: Optional[Context]) -> str:
    return name if context is None else name + context.suffix()


def clone_term(term: Term, context: Optional[Context]) -> Term:
    """Rename every variable in ``term`` into ``context``."""
    if context is None:
        return term
    suffix = context.suffix()
    mapping = {name: name + suffix for name in term.variables()}
    if not mapping:
        return term
    return T.FACTORY.rename(term, mapping)


def ctx_ivar(name: str, context: Optional[Context]) -> Term:
    return T.int_var(rename_var(name, context))


def ctx_bvar(name: str, context: Optional[Context]) -> Term:
    return T.bool_var(rename_var(name, context))
