"""Bug reports and engine statistics."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.robust.diagnostics import Diagnostic


@dataclass(frozen=True)
class Location:
    """A program point: function name plus surface source line."""

    function: str
    line: int
    variable: str = ""

    def __str__(self) -> str:
        var = f" ({self.variable})" if self.variable else ""
        return f"{self.function}:{self.line}{var}"


@dataclass
class BugReport:
    """One value-flow bug: a source flowing to a sink on a feasible path."""

    checker: str
    source: Location
    sink: Location
    path: Tuple[Location, ...] = ()
    condition: str = "true"
    verdict: str = "sat"  # sat | unknown (timeout treated as reportable)
    # A human-readable feasibility witness: atom literals from the SMT
    # model that mention program variables ("c.0 > 0"), when available.
    witness: str = ""

    def key(self) -> Tuple:
        """Deduplication key: one report per (source stmt, sink stmt)."""
        return (self.checker, self.source, self.sink)

    def __str__(self) -> str:
        steps = " -> ".join(str(loc) for loc in self.path) or "direct"
        text = (
            f"[{self.checker}] {self.source} flows to {self.sink}\n"
            f"    path: {steps}\n"
            f"    condition: {self.condition}"
        )
        if self.witness:
            text += f"\n    feasible when: {self.witness}"
        return text


def report_as_dict(report: "BugReport") -> dict:
    """The canonical JSON shape of one report.

    Single source of truth shared by ``repro check --json``, the SARIF
    exporter's property bag, and the analysis daemon's result documents —
    byte-identity assertions between those surfaces compare exactly this.
    """
    return {
        "checker": report.checker,
        "source": {
            "function": report.source.function,
            "line": report.source.line,
            "variable": report.source.variable,
        },
        "sink": {
            "function": report.sink.function,
            "line": report.sink.line,
            "variable": report.sink.variable,
        },
        "path": [
            {"function": loc.function, "line": loc.line, "variable": loc.variable}
            for loc in report.path
        ],
        "condition": report.condition,
        "verdict": report.verdict,
    }


@dataclass
class EngineStats:
    """Counters mirroring the paper's evaluation dimensions.

    This is the *per-checker-run* view; :meth:`publish` mirrors every
    field into the process metrics registry (``engine.<field>``, labeled
    by checker) so ``--stats``, ``--metrics-out``, the JSON payload and
    SARIF all report from the same numbers.
    """

    functions: int = 0
    seg_vertices: int = 0
    seg_edges: int = 0
    summaries_rv: int = 0
    summaries_vf: int = 0
    candidates: int = 0
    pruned_linear: int = 0
    pruned_smt: int = 0
    reported: int = 0
    smt_queries: int = 0
    linear_queries: int = 0
    search_steps: int = 0
    # Summary lookups at call sites during the value-flow search: a hit
    # means the callee's summaries were available (defined, analyzed
    # earlier in bottom-up order), a miss that the call was treated as
    # opaque (external/quarantined callee).
    summary_hits: int = 0
    summary_misses: int = 0
    # Robustness counters (repro.robust): candidates decided without
    # SMT because a budget ran out, SMT queries cut off by the per-query
    # deadline, and units of work quarantined after an internal failure.
    degraded_candidates: int = 0
    smt_deadline_hits: int = 0
    quarantined_units: int = 0
    # Points-to precision tier of this run ("fi" or "fs") and the fs
    # tier's store-update/escalation accounting.  ``strong_updates``
    # counts syntactic + proof-driven strong updates over every prepared
    # function; ``escalated_functions`` counts functions the engine
    # re-prepared under the precise tier to re-confirm reports.
    pta_tier: str = "fi"
    strong_updates: int = 0
    weak_updates: int = 0
    escalated_functions: int = 0
    seconds_prepare: float = 0.0
    seconds_seg: float = 0.0
    seconds_search: float = 0.0
    seconds_solving: float = 0.0

    def as_dict(self) -> dict:
        """Every field, by name — nothing hand-enumerated, so a field
        added to the dataclass can never be silently missing here."""
        return dataclasses.asdict(self)

    def publish(self, checker: str, registry: Optional[MetricsRegistry] = None) -> None:
        """Mirror this run's stats into the metrics registry.

        Integer fields become ``engine.<field>`` counters and the
        ``seconds_*`` timings ``engine.seconds`` counters labeled by
        phase, all labeled ``checker=<name>``.  Summary-cache lookups
        additionally feed ``engine.summaries.{hit,miss}``.
        """
        # Explicit None check: an empty MetricsRegistry is falsy (it has
        # __len__), so ``registry or get_registry()`` would ignore it.
        if registry is None:
            registry = get_registry()
        for name, value in self.as_dict().items():
            if isinstance(value, str):
                continue  # e.g. pta_tier: not a number, not a counter
            if name.startswith("seconds_"):
                registry.counter(
                    "engine.seconds", "Engine time by phase (seconds)"
                ).inc(value, phase=name[len("seconds_"):], checker=checker)
            else:
                registry.counter(
                    f"engine.{name}", f"EngineStats field {name!r}"
                ).inc(value, checker=checker)
        registry.counter(
            "engine.summaries.hit", "Callee summaries found at call sites"
        ).inc(self.summary_hits, checker=checker)
        registry.counter(
            "engine.summaries.miss", "Call sites with no callee summaries"
        ).inc(self.summary_misses, checker=checker)


@dataclass
class CheckResult:
    """All reports from one checker run plus statistics."""

    checker: str
    reports: List[BugReport] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)
    # Degradations and quarantines: module-level events (parse recovery,
    # preparation failures) plus this run's own (search budget, SMT
    # deadline, checker crashes).  Empty for a full-coverage run.
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    @property
    def degraded(self) -> bool:
        """Did this run complete with less than full coverage/precision?"""
        return bool(self.diagnostics)

    def summary_line(self) -> str:
        """One stable, parseable line summarizing the run.

        Format (fixed; scripts and tests may rely on it)::

            <checker>: <N> reports (<C> candidates, <L> pruned by linear
            solver, <S> pruned by SMT)

        with `` [degraded: <D> diagnostic(s)]`` appended if and only if
        the run carries diagnostics.  All five numbers are base-10
        integers; the checker name never contains ``:``.
        """
        stats = self.stats
        line = (
            f"{self.checker}: {len(self.reports)} reports "
            f"({stats.candidates} candidates, {stats.pruned_linear} pruned by "
            f"linear solver, {stats.pruned_smt} pruned by SMT)"
        )
        if self.diagnostics:
            line += f" [degraded: {len(self.diagnostics)} diagnostic(s)]"
        return line
