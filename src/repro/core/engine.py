"""The Pinpoint engine: demand-driven, compositional global value-flow
analysis (paper Section 3.3).

One bottom-up pass over the call graph per checker.  For each function:

1. start value-flow searches at (a) every formal-parameter slot, (b)
   every local checker source, (c) every call-site receiver whose callee
   has a VF2 summary (the callee returns a source-born value), and (d)
   every call-site actual whose callee has a VF3 summary (the call makes
   the actual's value source-born, e.g. freed);
2. follow SEG copy edges forward; at call sites jump through callee VF1
   summaries; record VF1-VF4 summaries at interface endpoints;
3. a source-born value arriving at a sink (locally or via a callee VF4)
   is a bug *candidate*: its global path condition is assembled via
   Equations (1)-(3) with cloning-based context sensitivity, filtered by
   the linear-time solver, and finally decided by the SMT solver.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.context import Context, ContextAllocator, clone_term, ctx_bvar, ctx_ivar
from repro.core.checkers.base import Checker, SinkSpec, SourceSpec
from repro.core.pipeline import PreparedFunction, PreparedModule, prepare_source
from repro.core.report import BugReport, CheckResult, EngineStats, Location
from repro.core.summaries import (
    FunctionSummaries,
    RVSummary,
    VFSummary,
    interface_params,
    receiver_for_slot,
    return_slots,
)
from repro.ir import cfg
from repro.ir.dominance import dominators
from repro.lang import ast
from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.obs.progress import get_progress
from repro.obs.trace import trace as obs_trace
from repro.robust.budget import ResourceBudget
from repro.robust.diagnostics import (
    REASON_BUDGET,
    REASON_DEADLINE,
    REASON_QUARANTINED,
    REASON_REDUCED_PRECISION,
    STAGE_CHECKER,
    STAGE_SEARCH,
    STAGE_SEG,
    STAGE_SMT,
    DiagnosticLog,
)
from repro.robust.faults import fault_point
from repro.robust.quarantine import Quarantine
import repro.verify as verify_mod
from repro.seg.builder import build_seg
from repro.seg.conditions import ConditionBuilder, Constraint, TRUE_CONSTRAINT
from repro.seg.graph import SEG, def_key, vertex_var
from repro.smt import terms as T
from repro.smt.linear_solver import LinearSolver
from repro.smt.solver import Result, SMTSolver
from repro.smt.terms import Term

log = get_logger("engine")


def _format_witness(model, limit: int = 4) -> str:
    """Render up to ``limit`` interesting literals of an SMT model.

    Literals over branch temporaries (``%t…``) or context clones
    (``x.0~3``) are noise for the reader; prefer atoms that only mention
    source-level variables of the reporting function.
    """
    if not model:
        return ""
    literals = []
    seen = set()
    for atom, value in model.items():
        if not atom.is_comparison():
            continue
        names = atom.variables()
        if not names:
            continue
        if any("~" in name or name.startswith("%") or "$" in name for name in names):
            continue
        literal = atom if value else T.not_(atom)
        if literal.ident in seen:
            continue
        seen.add(literal.ident)
        literals.append(str(literal))
        if len(literals) >= limit:
            break
    return " and ".join(literals)


@dataclass
class EngineConfig:
    """Analysis knobs.  Defaults follow the paper's evaluation setup."""

    max_call_depth: int = 6  # nested calling contexts (paper: six levels)
    use_linear_filter: bool = True  # ablation: skip the linear pre-filter
    use_smt: bool = True  # ablation: path-insensitive mode when False
    max_paths_per_source: int = 64  # demand-driven search budget
    max_reports_per_function: int = 32
    # Self-verification mode: ""/off/fast/full ("" defers to the
    # REPRO_VERIFY environment variable at run time).
    verify: str = ""
    # Points-to precision tier: ""/fi/fs ("" defers to REPRO_PTA, which
    # defaults to fi).  "fs" prepares on the cheap tier everywhere and
    # escalates only functions implicated in candidate reports to the
    # sparse flow-sensitive tier before re-confirming.
    pta_tier: str = ""

    def __post_init__(self) -> None:
        if self.verify not in ("", "off", "fast", "full"):
            raise ValueError(
                f"verify must be one of off|fast|full, got {self.verify!r}"
            )
        if self.pta_tier not in ("", "fi", "fs"):
            raise ValueError(
                f"pta_tier must be one of fi|fs, got {self.pta_tier!r}"
            )
        if self.max_call_depth < 1:
            raise ValueError(
                f"max_call_depth must be >= 1, got {self.max_call_depth} "
                "(a depth below 1 silently drops every calling context)"
            )
        if self.max_paths_per_source < 1:
            raise ValueError(
                f"max_paths_per_source must be >= 1, got {self.max_paths_per_source} "
                "(a budget below 1 silently disables every search)"
            )
        if self.max_reports_per_function < 1:
            raise ValueError(
                f"max_reports_per_function must be >= 1, "
                f"got {self.max_reports_per_function}"
            )


# ----------------------------------------------------------------------
# Search bookkeeping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TraceNode:
    """Linked-list trace of the search; reconstructed into a path."""

    kind: str  # 'vertex' | 'vf1' | 'origin-vf2' | 'origin-vf3'
    payload: tuple
    prev: Optional["_TraceNode"]


@dataclass(frozen=True)
class _Origin:
    """Where the tracked value was born, for reporting."""

    function: str
    line: int
    variable: str
    instr_uid: int
    # Summary that carried the source into this function, if any.
    via_summary: Optional[VFSummary] = None
    via_call: Optional[cfg.Call] = None
    # The SSA variable in the *searching* function that first holds the
    # tracked value.  Checkers with null-is-inert semantics (free(null)
    # is a no-op) require this value to be non-null for a report.
    root_var: str = ""


class PinpointFunction:
    """Per-function analysis state: SEG + condition builder + dominance."""

    def __init__(self, prepared: PreparedFunction, seg: Optional[SEG] = None) -> None:
        self.prepared = prepared
        # A prebuilt SEG (scheduler worker or artifact cache) is adopted
        # as-is; build_seg is deterministic, so both paths agree.
        self.seg: SEG = seg if seg is not None else build_seg(prepared)
        self.conditions = ConditionBuilder(self.seg, prepared.function)
        self.dom = dominators(prepared.function)
        # Statement uid -> (block label, index) for happens-after checks.
        self.position: Dict[int, Tuple[str, int]] = {}
        for label in prepared.function.block_order():
            block = prepared.function.blocks[label]
            for index, instr in enumerate(block.all_instrs()):
                self.position[instr.uid] = (label, index)
        self._reach_cache: Dict[str, Set[str]] = {}

    def happens_after(self, first_uid: int, second_uid: int) -> bool:
        """May ``second`` execute after ``first``?  (CFG reachability;
        within one block, instruction order; strict for the same uid)."""
        if first_uid == second_uid:
            return False
        first = self.position.get(first_uid)
        second = self.position.get(second_uid)
        if first is None or second is None:
            return True  # be conservative
        if first[0] == second[0]:
            if second[1] > first[1]:
                return True
            # Same block, earlier index: only via a cycle through the block.
            return first[0] in self._reachable(first[0])
        return second[0] in self._reachable(first[0])

    def _reachable(self, label: str) -> Set[str]:
        cached = self._reach_cache.get(label)
        if cached is not None:
            return cached
        blocks = self.prepared.function.blocks
        seen: Set[str] = set()
        stack = list(blocks[label].succs)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(blocks[current].succs)
        self._reach_cache[label] = seen
        return seen


class Pinpoint:
    """Facade: prepare once, run any number of checkers.

    A function whose SEG construction fails is quarantined (dropped with
    a diagnostic); a checker run that crashes returns a degraded
    :class:`CheckResult` instead of raising.  An optional
    :class:`~repro.robust.budget.ResourceBudget` bounds wall clock and
    search effort; past it, candidates are decided at reduced precision
    rather than not at all."""

    def __init__(
        self,
        module: PreparedModule,
        config: Optional[EngineConfig] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> None:
        self.module = module
        self.config = config or EngineConfig()
        self.budget = budget or ResourceBudget()
        self.budget.start()
        self.diagnostics = module.diagnostics
        from repro.pta.flowsense import resolve_pta_tier

        self.pta_tier = resolve_pta_tier(self.config.pta_tier)
        # Session-level check memo (set by IncrementalAnalyzer): lets a
        # checker run replay per-function results for functions whose
        # prepared artifacts AND transitive callee check-results are
        # unchanged since the previous run.  ``prepare_digests`` maps
        # function name -> digest of its prepare cache key.
        self.check_memo: Optional["CheckMemo"] = None
        self.prepare_digests: Dict[str, str] = {}
        # Artifact store (set by from_source) so per-function escalation
        # can reuse/persist fs-tier artifacts under their own digests.
        self._store = None
        # Escalation memo: function name -> "did the fs tier change its
        # points-to facts" (False also covers "escalation kept fi").
        self._escalated: Dict[str, bool] = {}
        self.functions: Dict[str, PinpointFunction] = {}
        # Artifacts quarantined by the verifier — ('cfg', Function) from
        # the IR pass, ('seg', SEG) from here — for --dump-on-verify-fail.
        self.verify_failures: Dict[str, tuple] = dict(module.verify_failures)
        self.verify_mode = verify_mod.resolve_mode(self.config.verify)
        get_progress().set_stage("seg", functions=len(module.order))
        start = time.perf_counter()
        for name in module.order:
            zone = Quarantine(self.diagnostics, STAGE_SEG, name)
            with zone:
                # The fault point fires even with a prebuilt SEG so
                # injected `seg` faults behave identically under
                # --jobs N / --cache-dir.
                fault_point("seg", name)
                pf = PinpointFunction(module[name], seg=module.segs.get(name))
            if zone.tripped:
                continue
            if self.verify_mode != verify_mod.MODE_OFF:
                with verify_mod.timed_verify("seg"), obs_trace(
                    "verify.seg", unit=name
                ):
                    violations = verify_mod.verify_seg(pf.seg, module[name])
                if violations:
                    errors = verify_mod.record_violations(
                        violations, self.diagnostics
                    )
                    if errors:
                        self.verify_failures[name] = ("seg", pf.seg)
                        continue
            self.functions[name] = pf
        if self.verify_mode == verify_mod.MODE_FULL:
            with verify_mod.timed_verify("call"), obs_trace(
                "verify.call", unit="<module>"
            ):
                violations = verify_mod.verify_call_interfaces(module)
            if violations:
                errors = verify_mod.record_violations(violations, self.diagnostics)
                for violation in errors:
                    dropped = self.functions.pop(violation.unit, None)
                    if dropped is not None:
                        self.verify_failures.setdefault(
                            violation.unit, ("seg", dropped.seg)
                        )
        self.seg_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    @classmethod
    def from_source(
        cls,
        source: str,
        config: Optional[EngineConfig] = None,
        budget: Optional[ResourceBudget] = None,
        recover: bool = False,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        worker_timeout: float = 0.0,
        journal=None,
        resume: bool = False,
    ) -> "Pinpoint":
        """Parse, prepare and index a program.

        ``jobs > 1`` prepares call-graph waves on a process pool;
        ``cache_dir`` persists per-function artifacts across runs.
        When either is left unset, the ``REPRO_JOBS`` /
        ``REPRO_CACHE_DIR`` environment variables apply (an explicit
        ``jobs=1`` wins over the environment).  ``journal`` (a
        :class:`repro.cache.RunJournal`) makes the preparation phase
        crash-durable and ``resume=True`` replays a previous run's
        journaled prefix.  Reports are byte-identical to a serial,
        uncached, uninterrupted run."""
        from repro.cache import open_store
        from repro.sched import resolve_jobs

        verify = (config.verify if config is not None else "")
        store = open_store(cache_dir)
        # Preparation always runs on the cheap fi tier — the fs tier is
        # applied per function by the escalation path in check(), which
        # is what keeps --pta=fs near fi cost on report-free code.
        engine = cls(
            prepare_source(
                source,
                budget=budget,
                recover=recover,
                verify=verify,
                jobs=resolve_jobs(jobs),
                store=store,
                worker_timeout=worker_timeout,
                journal=journal,
                resume=resume,
            ),
            config,
            budget,
        )
        engine._store = store
        return engine

    @classmethod
    def from_program(
        cls,
        program: ast.Program,
        config: Optional[EngineConfig] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> "Pinpoint":
        from repro.core.pipeline import prepare_module

        verify = (config.verify if config is not None else "")
        return cls(
            prepare_module(program, budget=budget, verify=verify), config, budget
        )

    # ------------------------------------------------------------------
    def seg_size(self) -> Tuple[int, int]:
        vertices = sum(f.seg.vertex_count() for f in self.functions.values())
        edges = sum(f.seg.edge_count() for f in self.functions.values())
        return vertices, edges

    # ------------------------------------------------------------------
    def check(self, checker: Checker) -> CheckResult:
        """Run one checker over the whole program.

        Never raises for analysis-internal failures: a crash anywhere in
        the run yields a CheckResult whose diagnostics name what was
        quarantined.

        Under ``--pta=fs`` this is where the precision tier applies: the
        checker first runs against the cheap fi preparation; every
        function implicated in a report is then *escalated* — re-prepared
        under the sparse flow-sensitive tier — and, if any escalation
        actually changed points-to facts (a proof-driven strong update
        fired), the checker re-runs against the upgraded functions so
        only reports that survive the precise tier are returned."""
        result = self._check_once(checker)
        if self.pta_tier != "fs" or not result.reports:
            result.stats.escalated_functions = len(self._escalated)
            return result
        candidates = sorted(
            {report.source.function for report in result.reports}
            | {report.sink.function for report in result.reports}
        )
        changed = False
        for name in candidates:
            changed = self._escalate_function(name) or changed
        if changed:
            result = self._check_once(checker)
        result.stats.escalated_functions = len(self._escalated)
        return result

    def _check_once(self, checker: Checker) -> CheckResult:
        progress = get_progress()
        progress.set_stage("checker", checker=checker.name)
        with obs_trace("checker.run", unit=checker.name):
            run = _CheckerRun(self, checker)
            zone = Quarantine(run.diagnostics, STAGE_CHECKER, checker.name)
            with zone:
                result = run.execute()
                progress.checker_done(checker.name, len(result.reports))
                return result
            # The whole run crashed (diagnostic already recorded):
            # salvage whatever was found before the failure.
            run.stats.quarantined_units += 1
            result = run.finish()
            progress.checker_done(checker.name, len(result.reports))
            return result

    # ------------------------------------------------------------------
    # Per-function escalation to the fs precision tier
    # ------------------------------------------------------------------
    def _escalate_function(self, name: str) -> bool:
        """Re-prepare ``name`` under the fs tier; returns True when the
        upgrade changed its points-to facts (so reports must re-confirm).

        Escalation is conservative end to end: any failure — missing
        AST, preparation crash, changed connector signature, a verify
        error on the upgraded artifacts — keeps the fi version, so fs
        can lose precision back to fi but never coverage."""
        if name in self._escalated:
            return False
        self._escalated[name] = False
        current = self.module.functions.get(name)
        func_ast = self.module.asts.get(name)
        if current is None or func_ast is None or name not in self.functions:
            return False
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "pta.escalations",
            "Functions re-prepared under the fs tier by report escalation",
        ).inc()
        with obs_trace("pta.escalate", unit=name):
            try:
                prepared_fs, seg = self._prepare_fs(name, func_ast)
            except Exception as error:
                self.diagnostics.record(
                    STAGE_CHECKER,
                    name,
                    REASON_REDUCED_PRECISION,
                    detail=f"fs escalation failed, keeping fi: "
                    f"{type(error).__name__}: {error}",
                )
                return False
        if prepared_fs is None:
            return False
        from repro.cache.keys import signature_fingerprint

        if signature_fingerprint(prepared_fs.signature) != signature_fingerprint(
            current.signature
        ):
            # Cannot happen (Mod/Ref is tier-independent), but if it ever
            # did, swapping would desynchronize already-prepared callers.
            self.diagnostics.record(
                STAGE_CHECKER,
                name,
                REASON_REDUCED_PRECISION,
                detail="fs escalation changed the connector signature; keeping fi",
            )
            return False
        if self.verify_mode != verify_mod.MODE_OFF:
            with verify_mod.timed_verify("pta"), obs_trace(
                "verify.pta", unit=name
            ):
                violations = verify_mod.verify_flow_tier(prepared_fs, current)
            if violations:
                errors = verify_mod.record_violations(
                    violations, self.diagnostics
                )
                if errors:
                    return False
        if not prepared_fs.points_to.strong_uids:
            # No proof-driven strong update fired: the fs facts are the
            # fi facts, so the fi artifacts (and reports) stand as-is.
            return False
        zone = Quarantine(self.diagnostics, STAGE_SEG, name)
        with zone:
            pf = PinpointFunction(prepared_fs, seg=seg)
        if zone.tripped:
            return False
        self.module.functions[name] = prepared_fs
        self.functions[name] = pf
        self._escalated[name] = True
        log.info("function escalated to fs tier", function=name)
        return True

    def _prepare_fs(self, name: str, func_ast):
        """Prepare one function under the fs tier, through the artifact
        store when one is attached (fs digests never collide with fi)."""
        from repro.cache.keys import key_digest, prepare_cache_key
        from repro.core.pipeline import prepare_function

        callgraph = self.module.callgraph
        scc_of: Dict[str, int] = {}
        if callgraph is not None:
            for index, scc in enumerate(callgraph.sccs()):
                for member in scc:
                    scc_of[member] = index
        usable = {
            other: prepared.signature
            for other, prepared in self.module.functions.items()
            if other != name
            and scc_of.get(other, -1) != scc_of.get(name, -2)
        }
        digest = ""
        if self._store is not None and callgraph is not None:
            digest = key_digest(
                prepare_cache_key(
                    func_ast,
                    usable,
                    callgraph.callees.get(name, ()),
                    pta_tier="fs",
                )
            )
            hit = self._store.get(digest)
            if hit is not None:
                _stored, result, seg = hit
                return result, seg
        # budget=None: escalation must be deterministic — a cooperative
        # budget could degrade conditions differently run to run.
        prepared_fs = prepare_function(
            func_ast, usable, self.module.linear, budget=None, pta_tier="fs"
        )
        if self._store is not None and digest:
            seg = None
            try:
                seg = build_seg(prepared_fs)
            except Exception:
                seg = None
            self._store.put(digest, name, prepared_fs, seg)
            return prepared_fs, seg
        return prepared_fs, None


@dataclass
class CheckMemoEntry:
    """One function's recorded check-phase results.

    Valid exactly while ``key`` matches: the key chains the function's
    prepare digest with the check keys of every callee whose summaries
    were visible during its processing, so any change in its own
    artifacts or anywhere below it in the call graph produces a
    different key and forces a live re-run.
    """

    key: str
    summaries: FunctionSummaries
    reports: List[BugReport]
    diagnostics: List  # Diagnostic attempts made while processing
    stats_delta: Dict[str, float]


class CheckMemo:
    """Per-checker tables of :class:`CheckMemoEntry`, owned by a
    long-lived :class:`~repro.core.incremental.IncrementalAnalyzer`.

    This is the check-phase half of warm re-checks: the prepare cache
    alone makes re-*preparation* incremental, but a checker run still
    walks every function.  With the memo, unchanged functions replay
    their summaries/reports/diagnostics in microseconds and only the
    edit-invalidated cone is searched for real — which is what takes a
    single-function edit re-check from "proportional to program size"
    to millisecond-class.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Dict[str, CheckMemoEntry]] = {}

    def table(self, checker: str) -> Dict[str, CheckMemoEntry]:
        return self._tables.setdefault(checker, {})

    def invalidate(self, name: Optional[str] = None) -> None:
        if name is None:
            self._tables.clear()
            return
        for table in self._tables.values():
            table.pop(name, None)

    def prune(self, live: Set[str]) -> None:
        """Drop entries for functions no longer in the program."""
        for table in self._tables.values():
            for name in [n for n in table if n not in live]:
                del table[name]

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())


class _CaptureLog(DiagnosticLog):
    """Tees diagnostics to the run log while keeping this function's own
    attempt list (pre-dedup) for the check memo.

    Recording *attempts* rather than "what the run log actually
    appended" matters: a diagnostic this function raises may have been
    deduplicated away because an earlier function already raised the
    same key — but on a later warm run where that earlier function was
    edited and no longer raises it, the replay must still surface this
    function's attempt, exactly as a cold run would.
    """

    def __init__(self, target: DiagnosticLog) -> None:
        super().__init__()
        self._target = target

    def add(self, diag) -> None:
        key = (diag.stage, diag.unit, diag.reason, diag.line)
        if key not in self._seen:
            self._seen.add(key)
            self.entries.append(diag)
        # Metrics and run-level dedup stay the target's business.
        self._target.add(diag)


class _TeeReports:
    """Stands in for the run's report dict while one function records.

    Inserts are forwarded to the real dict, but every distinct attempted
    key is also kept — even when run-level dedup makes the insert a
    no-op, because a (source, sink) pair can be derivable from more than
    one processing function and the replay of *this* function must not
    depend on which other function got there first (same rationale as
    :class:`_CaptureLog`).
    """

    def __init__(self, target: Dict[tuple, BugReport]) -> None:
        self._target = target
        self._seen: Set[tuple] = set()
        self.attempts: List[BugReport] = []

    def setdefault(self, key: tuple, report: BugReport) -> BugReport:
        if key not in self._seen:
            self._seen.add(key)
            self.attempts.append(report)
        return self._target.setdefault(key, report)


class _CheckerRun:
    """One checker's bottom-up pass (summaries + bug search)."""

    def __init__(self, engine: Pinpoint, checker: Checker) -> None:
        self.engine = engine
        self.checker = checker
        self.config = engine.config
        self.module = engine.module
        self.budget = engine.budget
        self.linear = LinearSolver()
        self.smt = SMTSolver()
        self.contexts = ContextAllocator()
        self.summaries: Dict[str, FunctionSummaries] = {}
        self.stats = EngineStats()
        self.reports: Dict[tuple, BugReport] = {}
        self.absence_mode = getattr(checker, "absence_mode", False)
        # This run's own degradations; merged with the module-level log
        # (parse/prepare/seg events) into the CheckResult.
        self.diagnostics = DiagnosticLog()
        # Degradation ladder rung 2: once the search budget is
        # exhausted, candidates are still collected but decided
        # path-insensitively (no condition assembly, no solving).
        self.reduced_precision = False
        self._search_start = time.perf_counter()
        # Session check memo (only under an IncrementalAnalyzer).  Off
        # whenever results could be time-dependent: a limited budget may
        # degrade mid-run, and the fs tier mutates prepared artifacts
        # between the two _check_once passes.
        self._memo_table: Optional[Dict[str, CheckMemoEntry]] = None
        if (
            engine.check_memo is not None
            and engine.prepare_digests
            and engine.pta_tier != "fs"
            and not self.budget.limited
        ):
            self._memo_table = engine.check_memo.table(checker.name)
        self._memo_keys: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def execute(self) -> CheckResult:
        self._search_start = time.perf_counter()
        self.budget.start()
        if self._memo_table is not None:
            self._compute_memo_keys()
        for name in self.module.order:
            zone = Quarantine(self.diagnostics, STAGE_CHECKER, name)
            with zone:
                self._process_function(name)
            if zone.tripped:
                self.stats.quarantined_units += 1
        return self.finish()

    def finish(self) -> CheckResult:
        """Assemble the CheckResult from whatever has been computed so
        far (also used to salvage a crashed run)."""
        self.stats.functions = len(self.engine.functions)
        vertices, edges = self.engine.seg_size()
        self.stats.seg_vertices = vertices
        self.stats.seg_edges = edges
        self.stats.seconds_seg = self.engine.seg_seconds
        self.stats.seconds_search = time.perf_counter() - self._search_start
        self.stats.smt_queries = self.smt.queries
        self.stats.smt_deadline_hits = self.smt.deadline_hits
        self.stats.linear_queries = self.linear.queries
        self.stats.reported = len(self.reports)
        self.stats.pta_tier = self.engine.pta_tier
        self.stats.strong_updates = sum(
            pf.prepared.points_to.strong_updates
            for pf in self.engine.functions.values()
        )
        self.stats.weak_updates = sum(
            pf.prepared.points_to.weak_updates
            for pf in self.engine.functions.values()
        )
        self.stats.escalated_functions = len(self.engine._escalated)
        diagnostics = list(self.engine.diagnostics) + list(self.diagnostics)
        self.stats.quarantined_units += len(
            self.engine.diagnostics.quarantined_units()
        )
        self.stats.publish(self.checker.name)
        log.info(
            "checker finished",
            checker=self.checker.name,
            reports=len(self.reports),
            candidates=self.stats.candidates,
            diagnostics=len(diagnostics),
        )
        return CheckResult(
            self.checker.name,
            list(self.reports.values()),
            self.stats,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    # Session check memo: key computation, replay, recording
    # ------------------------------------------------------------------
    def _compute_memo_keys(self) -> None:
        """Assign a check key to every memoizable function, in bottom-up
        order (so a caller's key can chain its callees' keys).

        A function's check-phase output is a pure function of

        - the checker + engine configuration,
        - its own prepared artifacts (the prepare digest), and
        - for each call site: whether the callee is defined, and — when
          the callee's summaries were visible during processing — the
          callee's own check key (covering the summaries' content
          transitively).

        A callee that was processed *before* this function but has no
        key (unmemoizable, or quarantined at SEG) makes this function
        unmemoizable too: its summaries-visibility can't be
        fingerprinted.  A defined callee processed *after* it (a
        same-SCC member later in the rotation) contributed no summaries,
        only its "defined" bit, so an opaque marker suffices.
        """
        config = self.config
        config_sig = "|".join(
            (
                self.checker.name,
                str(config.max_call_depth),
                str(config.use_linear_filter),
                str(config.use_smt),
                str(config.max_paths_per_source),
                str(config.max_reports_per_function),
                self.engine.verify_mode,
                self.engine.pta_tier,
                str(self.absence_mode),
            )
        )
        callgraph = self.module.callgraph
        callees_of = callgraph.callees if callgraph is not None else {}
        defined = self.module.functions
        processed: Set[str] = set()
        for name in self.module.order:
            digest = self.engine.prepare_digests.get(name)
            memoizable = digest is not None and name in self.engine.functions
            parts = [config_sig, str(digest)]
            if memoizable:
                for callee in sorted(callees_of.get(name, ())):
                    if callee == name:
                        # Self-recursive call: during its own processing a
                        # function sees only its in-progress summaries —
                        # no external dependency.
                        parts.append("self")
                    elif callee in processed:
                        callee_key = self._memo_keys.get(callee)
                        if callee_key is None:
                            memoizable = False
                            break
                        parts.append(callee_key)
                    elif callee in defined:
                        parts.append(f"opaque:{callee}")
                    else:
                        parts.append(f"ext:{callee}")
            processed.add(name)
            if memoizable:
                self._memo_keys[name] = hashlib.sha256(
                    "\x1f".join(parts).encode("utf-8")
                ).hexdigest()

    @staticmethod
    def _numeric_stats(stats: EngineStats) -> Dict[str, float]:
        return {
            key: value
            for key, value in stats.as_dict().items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }

    def _replay(self, name: str, entry: CheckMemoEntry) -> None:
        self.summaries[name] = entry.summaries
        for report in entry.reports:
            self.reports.setdefault(report.key(), report)
        for diag in entry.diagnostics:
            self.diagnostics.add(diag)
        for field_name, delta in entry.stats_delta.items():
            setattr(
                self.stats, field_name, getattr(self.stats, field_name) + delta
            )
        get_registry().counter(
            "engine.check_cache.hit",
            "Functions whose check-phase results were replayed from the"
            " session memo",
        ).inc(checker=self.checker.name)

    def _process_recording(
        self, name: str, pf: PinpointFunction, key: str
    ) -> None:
        """Run the function live and record a memo entry on success."""
        stats_before = self._numeric_stats(self.stats)
        run_log = self.diagnostics
        run_reports = self.reports
        capture = _CaptureLog(run_log)
        tee = _TeeReports(run_reports)
        self.diagnostics = capture
        self.reports = tee  # type: ignore[assignment]
        try:
            self._process_prepared(name, pf)
        finally:
            self.diagnostics = run_log
            self.reports = run_reports
        stats_after = self._numeric_stats(self.stats)
        delta = {
            field_name: value - stats_before[field_name]
            for field_name, value in stats_after.items()
            if value != stats_before[field_name]
        }
        self._memo_table[name] = CheckMemoEntry(
            key=key,
            summaries=self.summaries[name],
            reports=list(tee.attempts),
            diagnostics=list(capture.entries),
            stats_delta=delta,
        )
        get_registry().counter(
            "engine.check_cache.miss",
            "Functions whose check phase ran live and was recorded",
        ).inc(checker=self.checker.name)

    # ------------------------------------------------------------------
    def _process_function(self, name: str) -> None:
        pf = self.engine.functions.get(name)
        if pf is None:
            return  # quarantined at SEG construction
        # Per-function ident numbering: see ContextAllocator.reset.
        self.contexts.reset()
        key = self._memo_keys.get(name)
        if key is not None:
            entry = self._memo_table.get(name)
            if entry is not None and entry.key == key:
                self._replay(name, entry)
                return
        with obs_trace("checker.fn", unit=name) as span:
            smt_before = self.smt.queries
            if key is None:
                self._process_prepared(name, pf)
            else:
                self._process_recording(name, pf, key)
            span.set(smt_queries=self.smt.queries - smt_before)

    def _process_prepared(self, name: str, pf: PinpointFunction) -> None:
        prepared = pf.prepared
        summaries = FunctionSummaries(name)
        self.summaries[name] = summaries
        with obs_trace("summaries.rv", unit=name):
            self._build_rv_summaries(pf, summaries)
        lint_after = self.engine.verify_mode == verify_mod.MODE_FULL

        # Intrinsic source/sink specs (free, fgetc, ...) only apply to
        # *external* callees; a defined function's behaviour comes from
        # its summaries, not from its name.
        defined = self.module.functions
        call_uids = {call.uid for call in pf.seg.call_sites if call.callee in defined}

        # Summary availability at this function's call sites (the
        # engine.summaries.{hit,miss} metric): a miss means the callee is
        # external or quarantined and the call is treated as opaque.
        for call in pf.seg.call_sites:
            if call.callee in self.summaries:
                self.stats.summary_hits += 1
            else:
                self.stats.summary_misses += 1

        sinks = {
            spec.vertex: spec
            for spec in self.checker.sinks(prepared, pf.seg)
            if spec.instr_uid not in call_uids
        }
        sources = [
            spec
            for spec in self.checker.sources(prepared, pf.seg)
            if spec.instr_uid not in call_uids
        ]

        # (a) parameter-slot searches -> VF1/VF3/VF4 summaries.
        params = interface_params(prepared.function)
        for slot, param in enumerate(params):
            self._search(
                pf,
                summaries,
                start_vertex=def_key(param),
                origin=None,
                param_slot=slot,
                after_uid=None,
                sinks=sinks,
                local_sources=sources,
            )

        # (b) local sources.  In absence mode (memory leak) the report
        # logic inverts: reaching a sink is GOOD, so only the dedicated
        # absence analysis runs.
        for spec in sources:
            if self.absence_mode:
                self._check_absence(pf, spec, sinks)
                continue
            origin = _Origin(
                name, spec.line, spec.value_var, spec.instr_uid,
                root_var=spec.value_var,
            )
            self._search(
                pf,
                summaries,
                start_vertex=def_key(spec.value_var),
                origin=origin,
                param_slot=None,
                after_uid=spec.instr_uid,
                sinks=sinks,
                local_sources=sources,
                origin_trace=_TraceNode("vertex", (name, spec.vertex), None),
                extra_starts=self._backward_closure(pf, spec.value_var),
            )

        # (c) receivers of calls whose callee returns a source-born value
        # (VF2), and (d) actuals whose callee sources them (VF3).
        for call in pf.seg.call_sites if not self.absence_mode else ():
            callee_summaries = self.summaries.get(call.callee)
            if callee_summaries is None:
                continue
            for vf2 in callee_summaries.vf2:
                receiver = receiver_for_slot(call, vf2.ret_slot or 0)
                if receiver is None:
                    continue
                origin = _Origin(
                    vf2.origin_function or vf2.function,
                    vf2.origin_line or vf2.source_line,
                    vf2.origin_var or vf2.source_var,
                    vf2.source_uid,
                    via_summary=vf2,
                    via_call=call,
                    root_var=receiver,
                )
                trace = _TraceNode("origin-vf2", (call, vf2), None)
                self._search(
                    pf,
                    summaries,
                    start_vertex=def_key(receiver),
                    origin=origin,
                    param_slot=None,
                    after_uid=call.uid,
                    sinks=sinks,
                    local_sources=sources,
                    origin_trace=trace,
                )
            for vf3 in callee_summaries.vf3:
                actual = self._actual_for_slot(call, vf3.param_slot or 0)
                if not isinstance(actual, cfg.Var):
                    continue
                origin = _Origin(
                    vf3.origin_function or vf3.function,
                    vf3.origin_line or vf3.sink_line,
                    vf3.origin_var or vf3.sink_var,
                    vf3.sink_uid,
                    via_summary=vf3,
                    via_call=call,
                    root_var=actual.name,
                )
                trace = _TraceNode("origin-vf3", (call, vf3), None)
                self._search(
                    pf,
                    summaries,
                    start_vertex=def_key(actual.name),
                    origin=origin,
                    param_slot=None,
                    after_uid=call.uid,
                    sinks=sinks,
                    local_sources=sources,
                    origin_trace=trace,
                    extra_starts=self._backward_closure(pf, actual.name),
                )

        self.stats.summaries_rv += len(summaries.rv)
        self.stats.summaries_vf += (
            len(summaries.vf1) + len(summaries.vf2) + len(summaries.vf3) + len(summaries.vf4)
        )
        if lint_after:
            with verify_mod.timed_verify("summary"), obs_trace(
                "verify.summary", unit=name
            ):
                lints = verify_mod.lint_summaries(summaries, pf)
            if lints:
                verify_mod.record_violations(lints, self.diagnostics)

    # ------------------------------------------------------------------
    # RV summaries
    # ------------------------------------------------------------------
    def _build_rv_summaries(self, pf: PinpointFunction, summaries: FunctionSummaries) -> None:
        function = pf.prepared.function
        for slot, value in enumerate(return_slots(function)):
            if value is None:
                continue
            if isinstance(value, cfg.Var):
                constraint = pf.conditions.dd(value.name)
            else:
                constraint = TRUE_CONSTRAINT
            summaries.rv[slot] = RVSummary(function.name, slot, value, constraint)

    # ------------------------------------------------------------------
    # Value-flow search
    # ------------------------------------------------------------------
    def _backward_closure(self, pf: PinpointFunction, var: str) -> List[tuple]:
        """Def vertices whose value flows into ``var`` via copy edges —
        the upstream aliases of a source-born value (all of them dangle
        once the value is freed).

        The walk also crosses call junctions backward: a call receiver's
        value came from the actuals the callee's VF1 summaries connect it
        to (``q = id(p)`` makes ``p`` an upstream alias of ``q``).
        """
        start = def_key(var)
        closure = [start]
        seen = {start}
        stack = [start]
        while stack:
            vertex = stack.pop()
            for edge in pf.seg.copy_predecessors(vertex):
                src = edge.src
                if src in seen or src[0] != "def":
                    continue
                seen.add(src)
                closure.append(src)
                stack.append(src)
            # Receiver: map back through the callee's VF1 summaries.
            name = vertex[1] if vertex[0] == "def" else None
            if name is None:
                continue
            call = pf.seg.def_instr.get(name)
            if not isinstance(call, cfg.Call):
                continue
            callee_summaries = self.summaries.get(call.callee)
            if callee_summaries is None:
                continue
            slot = 0 if call.dest == name else None
            if slot is None and name in call.extra_receivers:
                slot = 1 + call.extra_receivers.index(name)
            if slot is None:
                continue
            for vf1 in callee_summaries.vf1:
                if vf1.ret_slot != slot or vf1.param_slot is None:
                    continue
                actual = self._actual_for_slot(call, vf1.param_slot)
                if isinstance(actual, cfg.Var):
                    actual_vertex = def_key(actual.name)
                    if actual_vertex not in seen:
                        seen.add(actual_vertex)
                        closure.append(actual_vertex)
                        stack.append(actual_vertex)
        return closure

    def _search(
        self,
        pf: PinpointFunction,
        summaries: FunctionSummaries,
        start_vertex,
        origin: Optional[_Origin],
        param_slot: Optional[int],
        after_uid: Optional[int],
        sinks: Dict[tuple, SinkSpec],
        local_sources: List[SourceSpec],
        origin_trace: Optional[_TraceNode] = None,
        extra_starts: Optional[List[tuple]] = None,
    ) -> None:
        """DFS over copy edges from ``start_vertex`` (plus any
        ``extra_starts``, e.g. the backward alias closure of a source).

        ``origin`` is set for source-born searches (bug reports possible);
        ``param_slot`` for interface searches (summaries recorded).
        """
        function_name = pf.prepared.function.name
        source_uids = {spec.instr_uid for spec in local_sources}
        source_by_vertex = {spec.vertex: spec for spec in local_sources}
        ret = pf.seg.return_instr
        ret_operands: Dict[tuple, int] = {}
        if ret is not None:
            for slot, operand in enumerate(return_slots(pf.prepared.function)):
                if isinstance(operand, cfg.Var):
                    ret_operands[("use", operand.name, ret.uid)] = slot
        call_by_uid = {call.uid: call for call in pf.seg.call_sites}

        root = origin_trace or _TraceNode("vertex", (function_name, start_vertex), None)
        stack: List[Tuple[tuple, _TraceNode, int]] = [(start_vertex, root, 0)]
        visited: Set[tuple] = {start_vertex}
        for extra in extra_starts or ():
            if extra not in visited:
                visited.add(extra)
                stack.append(
                    (extra, _TraceNode("vertex", (function_name, extra), root), 0)
                )
        endpoints = 0

        while stack:
            vertex, trace, hops = stack.pop()
            self.stats.search_steps += 1
            if not self.budget.spend_steps(1) and not self.reduced_precision:
                # Rung 2 of the degradation ladder: keep walking the SEG
                # (finding candidates is cheap), but stop paying for
                # condition assembly and solving from here on.
                self.reduced_precision = True
                self.diagnostics.record(
                    STAGE_SEARCH,
                    function_name,
                    REASON_BUDGET,
                    detail=(
                        "search budget exhausted; remaining candidates "
                        "decided path-insensitively"
                    ),
                )
            if endpoints >= self.config.max_paths_per_source:
                break
            for edge in pf.seg.out_edges.get(vertex, ()):  # noqa: B909
                target = edge.dst
                if not edge.is_copy and not self.checker.through_ops:
                    continue
                if not edge.is_copy:
                    # Traverse operator vertices transparently (taint).
                    if target[0] == "op":
                        for onward in pf.seg.out_edges.get(target, ()):  # noqa: B909
                            if onward.dst not in visited and onward.dst[0] == "def":
                                visited.add(onward.dst)
                                stack.append(
                                    (
                                        onward.dst,
                                        _TraceNode(
                                            "vertex", (function_name, onward.dst), trace
                                        ),
                                        hops + 1,
                                    )
                                )
                    continue
                if target in visited:
                    continue
                visited.add(target)
                new_trace = _TraceNode("vertex", (function_name, target), trace)

                if target[0] == "def":
                    stack.append((target, new_trace, hops + 1))
                    continue

                # Use anchors: endpoints and call/return junctions.
                stmt_uid = target[2]

                # The happens-after filter applies to *endpoints* (sinks
                # and call descents), not to propagation: a copy made
                # before the free still aliases the dangling value.
                ordered = (
                    origin is None
                    or after_uid is None
                    or pf.happens_after(after_uid, stmt_uid)
                )

                sink = sinks.get(target)
                if sink is not None:
                    endpoints += 1
                    if origin is not None:
                        if ordered:
                            self._candidate_local(pf, origin, new_trace, sink)
                    elif param_slot is not None:
                        self._record_vf(
                            summaries, "vf4", pf, param_slot, new_trace, sink=sink
                        )

                source_here = source_by_vertex.get(target)
                if source_here is not None and param_slot is not None:
                    endpoints += 1
                    self._record_vf(
                        summaries, "vf3", pf, param_slot, new_trace, sink=source_here
                    )

                ret_slot = ret_operands.get(target)
                if ret_slot is not None:
                    endpoints += 1
                    if origin is not None:
                        self._record_vf2(summaries, pf, origin, new_trace, ret_slot)
                    elif param_slot is not None:
                        self._record_vf(
                            summaries, "vf1", pf, param_slot, new_trace, ret_slot=ret_slot
                        )

                call = call_by_uid.get(stmt_uid)
                if call is not None and call.callee in self.summaries:
                    arg_slot = self._arg_slot(call, target[1])
                    if arg_slot is not None:
                        self._through_call(
                            pf,
                            summaries,
                            call,
                            arg_slot,
                            origin if ordered else None,
                            param_slot,
                            new_trace,
                            stack,
                            visited,
                            hops,
                        )

    # ------------------------------------------------------------------
    def _arg_slot(self, call: cfg.Call, var_name: str) -> Optional[int]:
        for index, arg in enumerate(call.args):
            if isinstance(arg, cfg.Var) and arg.name == var_name:
                return index
        return None

    def _actual_for_slot(self, call: cfg.Call, slot: int) -> Optional[cfg.Operand]:
        if slot < len(call.args):
            return call.args[slot]
        return None

    def _through_call(
        self,
        pf: PinpointFunction,
        summaries: FunctionSummaries,
        call: cfg.Call,
        arg_slot: int,
        origin: Optional[_Origin],
        param_slot: Optional[int],
        trace: _TraceNode,
        stack,
        visited,
        hops: int,
    ) -> None:
        callee_summaries = self.summaries[call.callee]
        function_name = pf.prepared.function.name

        # VF4 in the callee: tracked value reaches a sink inside.
        for vf4 in callee_summaries.vf4_from(arg_slot):
            if origin is not None:
                self._candidate_via_callee(pf, origin, trace, call, vf4)
            elif param_slot is not None:
                self._record_vf(
                    summaries,
                    "vf4",
                    pf,
                    param_slot,
                    _TraceNode("vf1", (call, vf4), trace),
                    nested=vf4,
                )

        # VF3 in the callee, seen from a parameter search: the parameter's
        # value is sourced deeper down -> transitive VF3.
        if param_slot is not None:
            for vf3 in callee_summaries.vf3_from(arg_slot):
                self._record_vf(
                    summaries,
                    "vf3",
                    pf,
                    param_slot,
                    _TraceNode("vf1", (call, vf3), trace),
                    nested=vf3,
                )

        # VF1: value flows through the callee back to a receiver.
        for vf1 in callee_summaries.vf1_from(arg_slot):
            receiver = receiver_for_slot(call, vf1.ret_slot or 0)
            if receiver is None:
                continue
            receiver_vertex = def_key(receiver)
            if receiver_vertex in visited:
                continue
            visited.add(receiver_vertex)
            jump = _TraceNode("vf1", (call, vf1), trace)
            stack.append(
                (
                    receiver_vertex,
                    _TraceNode("vertex", (function_name, receiver_vertex), jump),
                    hops + 1,
                )
            )

    # ------------------------------------------------------------------
    # Summary recording
    # ------------------------------------------------------------------
    def _trace_vertices(self, trace: _TraceNode) -> List[tuple]:
        """Trace nodes oldest-first."""
        nodes = []
        node: Optional[_TraceNode] = trace
        while node is not None:
            nodes.append(node)
            node = node.prev
        nodes.reverse()
        return nodes

    def _local_path(self, trace: _TraceNode, function: str) -> List[tuple]:
        """The suffix of vertices within ``function`` (after the last
        junction), used for local PC computation."""
        path = []
        node: Optional[_TraceNode] = trace
        while node is not None and node.kind == "vertex":
            if node.payload[0] == function:
                path.append(node.payload[1])
            node = node.prev
        path.reverse()
        return path

    def _assemble(self, pf: PinpointFunction, trace: _TraceNode) -> Constraint:
        """Assemble the global constraint for a trace (Eqs. 1-3)."""
        nodes = self._trace_vertices(trace)
        pieces: List[Term] = []
        params: List[Tuple[str, str, Optional[Context]]] = []  # (func, param, ctx)
        all_params: Set[Tuple[str, Optional[Context]]] = set()
        receiver_queue: List[Tuple[str, str, Optional[Context]]] = []

        current_run: List[tuple] = []
        run_function = pf.prepared.function.name
        previous_vertex: Optional[tuple] = None

        def flush_run():
            nonlocal current_run
            if not current_run:
                return
            constraint = pf.conditions.pc(current_run)
            pieces.append(constraint.term)
            for param in constraint.params:
                all_params.add((param, None))
            for receiver in constraint.receivers:
                receiver_queue.append((run_function, receiver, None))
            current_run = []

        for node in nodes:
            if node.kind == "vertex":
                func, vertex = node.payload
                current_run.append(vertex)
                previous_vertex = vertex
            elif node.kind == "vf1":
                call, summary = node.payload
                flush_run()
                self._splice_summary(
                    pf, call, summary, pieces, all_params, receiver_queue,
                    link_entry=previous_vertex,
                )
            elif node.kind in ("origin-vf2", "origin-vf3"):
                call, summary = node.payload
                self._splice_summary(
                    pf, call, summary, pieces, all_params, receiver_queue,
                    link_entry=None,
                )

        flush_run()

        constraint = Constraint(T.and_(*pieces))
        term = constraint.term

        # Lazily bind surfaced parameters and resolve receivers (Eqs. 2/3).
        term = self._resolve(term, all_params, receiver_queue)
        return Constraint(term)

    def _splice_summary(
        self,
        pf: PinpointFunction,
        call: cfg.Call,
        summary: VFSummary,
        pieces: List[Term],
        all_params: Set[Tuple[str, Optional[Context]]],
        receiver_queue: List[Tuple[str, str, Optional[Context]]],
        link_entry: Optional[tuple],
    ) -> None:
        """Clone a callee VF summary into a fresh context and add the
        junction equalities of Equation (3)."""
        context = self.contexts.new(summary.function, call, None)
        if context.depth > self.config.max_call_depth:
            return
        cloned = clone_term(summary.constraint.term, context)
        pieces.append(cloned)

        # The call statement itself must be reachable: its control
        # dependence in the caller joins the condition (crucial for
        # origin splices, whose trace has no caller-side vertex at the
        # call to anchor CD through the local PC).
        call_cd = pf.conditions.cd(call.uid)
        pieces.append(call_cd.term)
        for param in call_cd.params:
            all_params.add((param, None))
        for receiver in call_cd.receivers:
            receiver_queue.append((pf.prepared.function.name, receiver, None))

        callee_pf = self.engine.functions.get(summary.function)
        callee_fn = callee_pf.prepared.function if callee_pf else None

        # Bind the callee's parameter dependencies to this call's actuals.
        if callee_fn is not None:
            iface = interface_params(callee_fn)
            slot_of = {name: i for i, name in enumerate(iface)}
            bind_params = set(summary.constraint.params)
            if summary.param_slot is not None and summary.param_slot < len(iface):
                bind_params.add(iface[summary.param_slot])
            for param in bind_params:
                slot = slot_of.get(param)
                if slot is None or slot >= len(call.args):
                    continue
                actual = call.args[slot]
                renamed_param = ctx_ivar(param, context)
                if isinstance(actual, cfg.Var):
                    pieces.append(T.eq(renamed_param, T.int_var(actual.name)))
                    pieces.append(
                        T.iff(ctx_bvar(param, context), T.bool_var(actual.name))
                    )
                    caller_dd = pf.conditions.dd(actual.name)
                    pieces.append(caller_dd.term)
                    for p2 in caller_dd.params:
                        all_params.add((p2, None))
                    for r2 in caller_dd.receivers:
                        receiver_queue.append(
                            (pf.prepared.function.name, r2, None)
                        )
                else:
                    pieces.append(T.eq(renamed_param, T.const(actual.value)))

            # Return junction: callee's returned value == caller receiver.
            if summary.ret_slot is not None:
                slots = return_slots(callee_fn)
                if summary.ret_slot < len(slots):
                    value = slots[summary.ret_slot]
                    receiver = receiver_for_slot(call, summary.ret_slot)
                    if receiver is not None and value is not None:
                        if isinstance(value, cfg.Var):
                            pieces.append(
                                T.eq(ctx_ivar(value.name, context), T.int_var(receiver))
                            )
                            pieces.append(
                                T.iff(
                                    ctx_bvar(value.name, context), T.bool_var(receiver)
                                )
                            )
                        else:
                            pieces.append(
                                T.eq(T.int_var(receiver), T.const(value.value))
                            )

        # The summary's own receiver deps were resolved when it was
        # created; nothing further to enqueue for it.
        del link_entry

    def _resolve(
        self,
        term: Term,
        params: Set[Tuple[str, Optional[Context]]],
        receiver_queue: List[Tuple[str, str, Optional[Context]]],
    ) -> Term:
        """Resolve receiver dependencies via RV summaries (Eq. 2).

        Root-context parameters stay free variables.  Receivers are
        expanded by cloning the callee's RV summary and binding its
        parameters to the call's actuals, recursively, bounded by the
        context depth limit.
        """
        del params  # root parameters stay free
        pieces: List[Term] = [term]
        processed: Set[Tuple[str, str, Optional[Context]]] = set()
        queue = list(receiver_queue)
        while queue:
            func_name, receiver, context = queue.pop()
            key = (func_name, receiver, context)
            if key in processed:
                continue
            processed.add(key)
            pf = self.engine.functions.get(func_name)
            if pf is None:
                continue
            call = pf.seg.def_instr.get(receiver)
            if not isinstance(call, cfg.Call):
                continue
            callee_summaries = self.summaries.get(call.callee)
            callee_pf = self.engine.functions.get(call.callee)
            if callee_summaries is None or callee_pf is None:
                continue
            slot = 0 if call.dest == receiver else None
            if slot is None:
                try:
                    slot = 1 + call.extra_receivers.index(receiver)
                except ValueError:
                    continue
            rv = callee_summaries.rv.get(slot)
            if rv is None:
                continue
            new_context = self.contexts.new(call.callee, call, context)
            if new_context.depth > self.config.max_call_depth:
                continue
            cloned = clone_term(rv.constraint.term, new_context)
            receiver_term = ctx_ivar(receiver, context)
            receiver_bool = ctx_bvar(receiver, context)
            if isinstance(rv.value, cfg.Var):
                pieces.append(T.eq(receiver_term, ctx_ivar(rv.value.name, new_context)))
                pieces.append(T.iff(receiver_bool, ctx_bvar(rv.value.name, new_context)))
            else:
                pieces.append(T.eq(receiver_term, T.const(rv.value.value)))
            pieces.append(cloned)
            # Bind the RV summary's parameters to this call's actuals.
            callee_fn = callee_pf.prepared.function
            iface = interface_params(callee_fn)
            slot_of = {name: i for i, name in enumerate(iface)}
            for param in rv.constraint.params:
                pslot = slot_of.get(param)
                if pslot is None or pslot >= len(call.args):
                    continue
                actual = call.args[pslot]
                renamed = ctx_ivar(param, new_context)
                if isinstance(actual, cfg.Var):
                    pieces.append(T.eq(renamed, ctx_ivar(actual.name, context)))
                    pieces.append(
                        T.iff(ctx_bvar(param, new_context), ctx_bvar(actual.name, context))
                    )
                    caller_dd = pf.conditions.dd(actual.name)
                    pieces.append(clone_term(caller_dd.term, context))
                    for r2 in caller_dd.receivers:
                        queue.append((func_name, r2, context))
                else:
                    pieces.append(T.eq(renamed, T.const(actual.value)))
        return T.and_(*pieces)

    # ------------------------------------------------------------------
    def _record_vf(
        self,
        summaries: FunctionSummaries,
        kind: str,
        pf: PinpointFunction,
        param_slot: int,
        trace: _TraceNode,
        sink: Optional[SinkSpec] = None,
        ret_slot: Optional[int] = None,
        nested: Optional[VFSummary] = None,
    ) -> None:
        constraint = self._summary_constraint(pf, trace)
        function = pf.prepared.function
        path = tuple(
            node.payload[1]
            for node in self._trace_vertices(trace)
            if node.kind == "vertex"
        )
        summary = VFSummary(
            kind=kind,
            function=function.name,
            path=path,
            constraint=constraint,
            param_slot=param_slot,
            ret_slot=ret_slot,
            sink_line=sink.line if sink else (nested.sink_line if nested else 0),
            sink_var=sink.value_var if sink else (nested.sink_var if nested else ""),
            sink_uid=sink.instr_uid if sink else (nested.sink_uid if nested else 0),
            origin_function=nested.origin_function or nested.function if nested else "",
            origin_line=(nested.origin_line or nested.sink_line) if nested else 0,
            origin_var=(nested.origin_var or nested.sink_var) if nested else "",
        )
        getattr(summaries, kind).append(summary)

    def _record_vf2(
        self,
        summaries: FunctionSummaries,
        pf: PinpointFunction,
        origin: _Origin,
        trace: _TraceNode,
        ret_slot: int,
    ) -> None:
        constraint = self._summary_constraint(pf, trace)
        function = pf.prepared.function
        path = tuple(
            node.payload[1]
            for node in self._trace_vertices(trace)
            if node.kind == "vertex"
        )
        summaries.vf2.append(
            VFSummary(
                kind="vf2",
                function=function.name,
                path=path,
                constraint=constraint,
                ret_slot=ret_slot,
                source_line=origin.line,
                source_var=origin.variable,
                source_uid=origin.instr_uid,
                origin_function=origin.function,
                origin_line=origin.line,
                origin_var=origin.variable,
            )
        )

    def _summary_constraint(self, pf: PinpointFunction, trace: _TraceNode) -> Constraint:
        """PC of a summarized path: assembled like a candidate (nested
        summaries spliced, receivers resolved), parameters kept free."""
        if self.reduced_precision:
            # Budget exhausted: keep the summary's linking structure but
            # drop its constraint (sound, path-insensitive).
            return TRUE_CONSTRAINT
        constraint = self._assemble(pf, trace)
        # Recover the parameter set: free interface variables of this
        # function occurring in the term.
        function = pf.prepared.function
        iface = set(interface_params(function))
        used = constraint.term.variables()
        params = frozenset(name for name in used if name in iface)
        return Constraint(constraint.term, params=params)

    # ------------------------------------------------------------------
    # Candidates -> reports
    # ------------------------------------------------------------------
    def _nonnull_source_term(self, pf: PinpointFunction, origin: _Origin) -> Term:
        """For checkers where a null tracked value is inert (free(null)
        is a no-op): the tracked value must be non-null, together with
        its defining constraints (so an undefined/zero value rules the
        candidate out)."""
        if not getattr(self.checker, "null_inert", False) or not origin.root_var:
            return T.TRUE
        dd = pf.conditions.dd(origin.root_var)
        term = T.and_(
            dd.term, T.ne(T.int_var(origin.root_var), T.const(0))
        )
        if dd.receivers:
            term = self._resolve(
                term,
                set(),
                [(pf.prepared.function.name, r, None) for r in dd.receivers],
            )
        return term

    def _candidate_local(
        self, pf: PinpointFunction, origin: _Origin, trace: _TraceNode, sink: SinkSpec
    ) -> None:
        self.stats.candidates += 1
        if self.reduced_precision:
            constraint = TRUE_CONSTRAINT
        else:
            constraint = self._assemble(pf, trace)
            constraint = Constraint(
                T.and_(constraint.term, self._nonnull_source_term(pf, origin))
            )
        self._decide_and_report(pf, origin, trace, sink.line, sink.value_var, constraint)

    def _candidate_via_callee(
        self,
        pf: PinpointFunction,
        origin: _Origin,
        trace: _TraceNode,
        call: cfg.Call,
        vf4: VFSummary,
    ) -> None:
        self.stats.candidates += 1
        full_trace = _TraceNode("vf1", (call, vf4), trace)
        if self.reduced_precision:
            constraint = TRUE_CONSTRAINT
        else:
            constraint = self._assemble(pf, full_trace)
            constraint = Constraint(
                T.and_(constraint.term, self._nonnull_source_term(pf, origin))
            )
        sink_function = vf4.origin_function or vf4.function
        sink_line = vf4.origin_line or vf4.sink_line
        sink_var = vf4.origin_var or vf4.sink_var
        self._decide_and_report(
            pf, origin, full_trace, sink_line, sink_var, constraint,
            sink_function=sink_function,
        )

    def _checked_smt(self, term: Term, function_name: str, sink_line: int) -> Result:
        """One SMT query under the budget's per-query deadline, with the
        degradation ladder applied:

        - deadline exceeded → rung 1: fall back to the linear solver's
          verdict (prune if it proves UNSAT, otherwise UNKNOWN);
        - solver crash → quarantine the query, same linear fallback.
        """
        try:
            answer = self.smt.check(term, deadline=self.budget.smt_deadline())
        except (KeyboardInterrupt, SystemExit, MemoryError):
            raise
        except Exception as error:
            self.diagnostics.record(
                STAGE_SMT,
                function_name,
                REASON_QUARANTINED,
                detail=f"{type(error).__name__}: {error}",
                line=sink_line,
            )
            self.stats.quarantined_units += 1
            return self._linear_fallback(term)
        if answer is Result.UNKNOWN and self.smt.last_unknown_reason == "deadline":
            self.diagnostics.record(
                STAGE_SMT,
                function_name,
                REASON_DEADLINE,
                detail="SMT deadline exceeded; using linear solver's verdict",
                line=sink_line,
            )
            return self._linear_fallback(term)
        return answer

    def _linear_fallback(self, term: Term) -> Result:
        if self.linear.is_obviously_unsat(term):
            return Result.UNSAT
        return Result.UNKNOWN

    def _decide_and_report(
        self,
        pf: PinpointFunction,
        origin: _Origin,
        trace: _TraceNode,
        sink_line: int,
        sink_var: str,
        constraint: Constraint,
        sink_function: Optional[str] = None,
    ) -> None:
        start = time.perf_counter()
        term = constraint.term
        verdict = "sat"
        witness = ""
        function_name = pf.prepared.function.name
        if self.reduced_precision:
            # Rung 2: budget exhausted — report the candidate without
            # solving.  "unknown" keeps it visible while flagging the
            # reduced confidence.
            verdict = "unknown"
            self.stats.degraded_candidates += 1
            self.diagnostics.record(
                STAGE_SEARCH,
                function_name,
                REASON_REDUCED_PRECISION,
                detail="candidate reported without path-condition solving",
                line=sink_line,
            )
        else:
            if self.config.use_linear_filter and self.linear.is_obviously_unsat(term):
                self.stats.pruned_linear += 1
                self.stats.seconds_solving += time.perf_counter() - start
                return
            if self.config.use_smt:
                answer = self._checked_smt(term, function_name, sink_line)
                if answer is Result.UNSAT:
                    self.stats.pruned_smt += 1
                    self.stats.seconds_solving += time.perf_counter() - start
                    return
                if answer is Result.UNKNOWN:
                    verdict = "unknown"
                else:
                    witness = _format_witness(self.smt.last_model)
        self.stats.seconds_solving += time.perf_counter() - start

        path = []
        for node in self._trace_vertices(trace):
            if node.kind != "vertex":
                continue
            func, vertex = node.payload
            var = vertex_var(vertex)
            if var is None:
                continue
            engine_pf = self.engine.functions.get(func)
            line = 0
            if engine_pf is not None:
                instr = engine_pf.seg.def_instr.get(var)
                if vertex[0] == "use":
                    instr = engine_pf.seg.instr_by_uid.get(vertex[2], instr)
                if instr is not None:
                    line = instr.line
            path.append(Location(func, line, var))

        report = BugReport(
            checker=self.checker.name,
            source=Location(origin.function, origin.line, origin.variable),
            sink=Location(
                sink_function or pf.prepared.function.name, sink_line, sink_var
            ),
            path=tuple(path),
            condition=str(term) if len(str(term)) < 400 else "...",
            verdict=verdict,
            witness=witness,
        )
        self.reports.setdefault(report.key(), report)

    # ------------------------------------------------------------------
    # Absence mode (memory leak)
    # ------------------------------------------------------------------
    def _check_absence(
        self, pf: PinpointFunction, spec: SourceSpec, sinks: Dict[tuple, SinkSpec]
    ) -> None:
        """Leak detection: report a source whose value reaches neither a
        release sink nor an escape point."""
        function = pf.prepared.function
        ret = pf.seg.return_instr
        ret_uids = {ret.uid} if ret is not None else set()
        call_uids = {c.uid: c for c in pf.seg.call_sites}

        stack = [def_key(spec.value_var)]
        visited = {def_key(spec.value_var)}
        while stack:
            vertex = stack.pop()
            for edge in pf.seg.out_edges.get(vertex, ()):  # noqa: B909
                target = edge.dst
                if not edge.is_copy or target in visited:
                    continue
                visited.add(target)
                if target[0] == "def":
                    stack.append(target)
                    continue
                stmt_uid = target[2]
                if target in sinks:
                    return  # released
                if stmt_uid in ret_uids:
                    return  # escapes via return
                call = call_uids.get(stmt_uid)
                if call is not None:
                    callee_summaries = self.summaries.get(call.callee)
                    slot = self._arg_slot(call, target[1])
                    if callee_summaries is None:
                        return  # unknown callee: assume it takes ownership
                    if slot is not None and callee_summaries.vf4_from(slot):
                        # For this checker sinks are the releases, so a
                        # param-to-sink summary means the callee frees it.
                        return
                    if slot is not None and callee_summaries.vf1_from(slot):
                        # flows back; keep following via receiver
                        for vf1 in callee_summaries.vf1_from(slot):
                            receiver = receiver_for_slot(call, vf1.ret_slot or 0)
                            if receiver is not None:
                                rv = def_key(receiver)
                                if rv not in visited:
                                    visited.add(rv)
                                    stack.append(rv)
                        continue
                    continue
                instr = pf.seg.instr_by_uid.get(stmt_uid)
                if isinstance(instr, cfg.Store) and not instr.synthetic:
                    if isinstance(instr.value, cfg.Var) and instr.value.name == target[1]:
                        # Stored into memory; if that memory is
                        # caller-visible the value escapes.  Soundy: any
                        # store counts as a potential escape unless the
                        # target is a local allocation that itself leaks.
                        targets = pf.prepared.points_to.store_targets.get(stmt_uid, ())
                        from repro.pta.memory import AuxObject

                        if any(isinstance(obj, AuxObject) for obj, _ in targets):
                            return
                if isinstance(instr, cfg.Store) and instr.synthetic:
                    return  # written back through a connector: escapes
                if isinstance(instr, cfg.Ret):
                    return
        # Nothing released or escaped: leak.
        self.stats.candidates += 1
        report = BugReport(
            checker=self.checker.name,
            source=Location(function.name, spec.line, spec.value_var),
            sink=Location(function.name, spec.line, spec.value_var),
            path=(Location(function.name, spec.line, spec.value_var),),
            condition="true",
            verdict="sat",
        )
        self.reports.setdefault(report.key(), report)
