"""Per-function preparation pipeline (the left half of the paper's
Fig. 6 architecture).

Functions are processed bottom-up over the call graph so a caller is
transformed against its callees' already-computed connector signatures:

1. lower the AST to a CFG;
2. rewrite call sites against known callee signatures (Fig. 3(b));
3. run Mod/Ref on a throwaway SSA copy to find this function's own
   side effects;
4. rewrite the function's interface (Fig. 3(a)), registering its
   connector signature for upper-level callers;
5. convert to SSA and run the quasi path-sensitive points-to analysis,
   whose conditional data dependence feeds the SEG builder.

Calls to functions in the same call-graph SCC (recursion) are left
untransformed — the paper unrolls call-graph cycles once; such calls are
treated as opaque external calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir import cfg
from repro.ir.callgraph import CallGraph
from repro.ir.controldep import control_dependence
from repro.ir.gating import GateInfo
from repro.ir.lower import lower_program
from repro.ir.ssa import to_ssa
from repro.lang import ast
from repro.lang.parser import parse_program, parse_program_tolerant
from repro.obs.log import get_logger
from repro.obs.progress import get_progress
from repro.obs.trace import trace
from repro.pta.intraproc import PointsToAnalysis, PointsToResult
from repro.robust.budget import ResourceBudget
from repro.robust.diagnostics import (
    REASON_BUDGET,
    REASON_PARSE_ERROR,
    STAGE_PARSE,
    STAGE_PREPARE,
    STAGE_PTA,
    DiagnosticLog,
)
from repro.robust.faults import fault_point
from repro.robust.quarantine import Quarantine
from repro.smt.linear_solver import LinearSolver
from repro.transform.connectors import (
    ConnectorSignature,
    transform_call_sites,
    transform_function_interface,
)
from repro.transform.modref import ModRefSummary, compute_modref

_log = get_logger("pipeline")


@dataclass
class PreparedFunction:
    """Everything later stages need about one function."""

    name: str
    function: cfg.Function  # transformed, SSA
    points_to: PointsToResult
    gates: GateInfo
    control_deps: Dict[str, list]
    signature: ConnectorSignature
    modref: ModRefSummary
    # Call sites where two distinct actual arguments may point to the
    # same object — violations of the paper's "distinct parameters do
    # not alias" soundiness assumption (§4.2, improvable with partial
    # transfer functions per Wilson & Lam).  Surfaced as diagnostics so
    # users know where the analysis may be unsound.
    alias_hazards: List[tuple] = field(default_factory=list)
    # Precision tier this function was prepared under ("fi" or "fs"),
    # and — on the fs tier — the sparse must-alias pass's result
    # (repro.pta.flowsense.FlowSenseResult) whose proofs justified any
    # flow-sensitive strong updates.  The verifier audits points_to
    # against it.
    pta_tier: str = "fi"
    flow: Optional[object] = None


@dataclass
class PreparedModule:
    functions: Dict[str, PreparedFunction] = field(default_factory=dict)
    callgraph: Optional[CallGraph] = None
    order: List[str] = field(default_factory=list)
    linear: LinearSolver = field(default_factory=LinearSolver)
    # Degradations and quarantines accumulated while building this
    # module (parse recovery, per-function preparation failures).  The
    # engine folds these into every CheckResult.
    diagnostics: DiagnosticLog = field(default_factory=DiagnosticLog)
    # Functions quarantined by the IR verifier, kept around (keyed by
    # name, valued ('cfg', Function)) so --dump-on-verify-fail can
    # render the offending artifact.
    verify_failures: Dict[str, tuple] = field(default_factory=dict)
    # SEGs built ahead of the engine (by scheduler workers or loaded
    # from the on-disk artifact cache).  The engine consumes these
    # instead of rebuilding; absence just means "build it yourself".
    segs: Dict[str, object] = field(default_factory=dict)
    # Surface ASTs of every successfully parsed function, kept so the
    # engine's per-function escalation path (--pta=fs) can re-prepare a
    # candidate function under the precise tier without re-parsing.
    asts: Dict[str, ast.FuncDef] = field(default_factory=dict)

    def __getitem__(self, name: str) -> PreparedFunction:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self):
        return iter(self.functions.values())


def prepare_module(
    program: ast.Program,
    budget: Optional[ResourceBudget] = None,
    diagnostics: Optional[DiagnosticLog] = None,
    verify: str = "",
    pta_tier: str = "fi",
) -> PreparedModule:
    """Run the preparation pipeline on a whole program.

    A function whose preparation raises is *quarantined*: it is dropped
    from the prepared module (recorded as a diagnostic) and its callers
    treat calls to it as opaque external calls — exactly the treatment
    same-SCC callees already get.  Nothing short of a fatal signal
    aborts the whole module.

    ``verify`` (``off``/``fast``/``full``, defaulting to the
    ``REPRO_VERIFY`` environment variable) runs the IR verifier on each
    prepared function; a function violating a structural invariant is
    quarantined just like one whose preparation crashed."""
    from repro.verify import MODE_OFF, record_violations, resolve_mode, timed_verify
    from repro.verify.ir_verifier import verify_function_ir

    verify_mode = resolve_mode(verify)
    prepared = PreparedModule()
    if diagnostics is not None:
        prepared.diagnostics = diagnostics
    linear = prepared.linear

    # Lower twice is avoided: we lower once for the call graph shape, then
    # re-lower per function for the throwaway Mod/Ref copy (lowering is
    # deterministic, but instruction uids differ; only the final SSA
    # function's uids matter downstream).
    with trace("lower", unit="<module>"):
        module = lower_program(program)
        callgraph = CallGraph(module)
    prepared.callgraph = callgraph
    order = callgraph.bottom_up_order()

    ast_by_name = {f.name: f for f in program.functions}
    prepared.asts = dict(ast_by_name)
    signatures: Dict[str, ConnectorSignature] = {}
    scc_of: Dict[str, int] = {}
    for index, scc in enumerate(callgraph.sccs()):
        for member in scc:
            scc_of[member] = index

    progress = get_progress()
    progress.set_stage("prepare", functions=len(order))
    progress.set_functions_total(len(order))

    log = prepared.diagnostics
    for name in order:
        func_ast = ast_by_name[name]

        # Signatures usable at this function's call sites: all known ones
        # except same-SCC members (recursion unrolled once).
        usable = {
            callee: sig
            for callee, sig in signatures.items()
            if scc_of.get(callee) != scc_of.get(name)
        }
        zone = Quarantine(log, STAGE_PREPARE, name, line=func_ast.line)
        with zone, trace("prepare.fn", unit=name):
            fault_point("prepare", name)
            result = prepare_function(
                func_ast, usable, linear, budget=budget, pta_tier=pta_tier
            )
        if zone.tripped:
            progress.tick(quarantined=1)
            continue
        if verify_mode != MODE_OFF:
            with timed_verify("ir"), trace("verify.ir", unit=name):
                violations = verify_function_ir(
                    result.function, result.control_deps, dom=result.gates.dom
                )
            if violations:
                errors = record_violations(violations, log)
                if errors:
                    prepared.verify_failures[name] = ("cfg", result.function)
                    progress.tick(quarantined=1)
                    continue
        if result.points_to.degraded:
            log.record(
                STAGE_PTA,
                name,
                REASON_BUDGET,
                detail="points-to conditions degraded to TRUE",
                line=func_ast.line,
            )
        signatures[name] = result.signature
        prepared.functions[name] = result
        prepared.order.append(name)
        progress.tick(prepared=1)
    _log.info(
        "module prepared",
        functions=len(prepared.functions),
        quarantined=len(order) - len(prepared.functions),
    )
    return prepared


def prepare_function(
    func_ast: ast.FuncDef,
    usable_signatures: Dict[str, ConnectorSignature],
    linear: Optional[LinearSolver] = None,
    budget: Optional[ResourceBudget] = None,
    pta_tier: str = "fi",
) -> PreparedFunction:
    """Run all per-function preparation stages for one function, given
    its callees' connector signatures.  This is the unit of work the
    incremental analyzer caches.

    ``pta_tier="fs"`` additionally runs the sparse flow-sensitive
    must-alias pass (:mod:`repro.pta.flowsense`) on the SSA function and
    feeds its proofs to the local points-to analysis, enabling strong
    updates through must-alias singleton pointers."""
    from repro.ir.lower import lower_function

    linear = linear or LinearSolver()

    # Per-function uid scope: instruction uids (and the loop-gate
    # variable names and SEG vertex identities derived from them) must
    # not depend on which process, or in what order, prepared this
    # function — that is what makes parallel and cache-warmed runs
    # byte-identical to serial ones.
    with cfg.scoped_uids():
        # Throwaway copy for Mod/Ref.
        scratch = lower_function(func_ast)
        transform_call_sites(scratch, usable_signatures)
        to_ssa(scratch)
        modref = compute_modref(scratch, linear=linear)

        # The real function: transform call sites + own interface, SSA.
        function = lower_function(func_ast)
        transform_call_sites(function, usable_signatures)
        signature = transform_function_interface(function, modref)
        to_ssa(function)

        gates = GateInfo(function)
        flow = None
        if pta_tier == "fs":
            from repro.pta.flowsense import FlowSensitivePTA

            with trace("pta.flowsense", unit=func_ast.name):
                flow = FlowSensitivePTA(function).run()
        analysis = PointsToAnalysis(
            function, gates=gates, linear=linear, budget=budget, flow=flow
        )
        points_to = analysis.run()
    return PreparedFunction(
        name=func_ast.name,
        function=function,
        points_to=points_to,
        gates=gates,
        control_deps=control_dependence(function),
        signature=signature,
        modref=modref,
        alias_hazards=_find_alias_hazards(function, points_to),
        pta_tier=pta_tier,
        flow=flow,
    )


def _find_alias_hazards(function: cfg.Function, points_to: PointsToResult):
    """Call sites passing two possibly-aliasing actuals to distinct
    formal parameters — where the callee-side no-alias assumption may
    lose writes (paper §4.2)."""
    from repro.pta.memory import AllocObject

    def alloc_objects(var: cfg.Var):
        # Only allocation sites witness a real may-alias; the speculative
        # per-parameter aux object every formal carries does not.
        return {
            obj
            for obj, _ in points_to.pts(var.name)
            if isinstance(obj, AllocObject)
        }

    hazards = []
    for instr in function.all_instrs():
        if not isinstance(instr, cfg.Call) or instr.synthetic:
            continue
        pointer_args = [
            (index, arg, alloc_objects(arg))
            for index, arg in enumerate(instr.args)
            if isinstance(arg, cfg.Var)
        ]
        pointer_args = [entry for entry in pointer_args if entry[2]]
        for position, (i, lhs, lhs_objs) in enumerate(pointer_args):
            for j, rhs, rhs_objs in pointer_args[position + 1 :]:
                if lhs.name == rhs.name or lhs_objs & rhs_objs:
                    hazards.append((instr.uid, i, j, instr.line))
    return hazards


def prepare_source(
    source: str,
    budget: Optional[ResourceBudget] = None,
    diagnostics: Optional[DiagnosticLog] = None,
    recover: bool = False,
    verify: str = "",
    jobs: int = 1,
    store=None,
    worker_timeout: float = 0.0,
    journal=None,
    resume: bool = False,
    pta_tier: str = "fi",
) -> PreparedModule:
    """Parse and prepare a program given as source text.

    With ``recover=True`` the parser quarantines malformed functions
    (recorded as ``parse`` diagnostics) instead of failing the whole
    program; input in which *nothing* parses still raises.

    ``jobs > 1`` prepares call-graph waves on a process pool and
    ``store`` (a :class:`repro.cache.SummaryStore`) persists/loads
    per-function artifacts; both route through the wave scheduler,
    which guarantees results identical to the serial path.  ``journal``
    (a :class:`repro.cache.RunJournal`) write-ahead-logs per-function
    completion for crash durability, and ``resume=True`` replays the
    journaled prefix of a previous run from the store."""
    if budget is not None:
        budget.start()
    get_progress().set_stage("parse")
    if not recover:
        with trace("parse", unit="<module>"):
            program = parse_program(source)
        return _prepare(
            program, budget, diagnostics, verify, jobs, store, worker_timeout,
            journal, resume, pta_tier,
        )
    log = diagnostics if diagnostics is not None else DiagnosticLog()
    with trace("parse", unit="<module>") as span:
        program, errors = parse_program_tolerant(source)
        span.set(functions=len(program.functions), parse_errors=len(errors))
    for error in errors:
        log.record(
            STAGE_PARSE,
            getattr(error, "unit", "") or "<module>",
            REASON_PARSE_ERROR,
            detail=error.message,
            line=error.line,
        )
    return _prepare(
        program, budget, log, verify, jobs, store, worker_timeout, journal,
        resume, pta_tier,
    )


def _prepare(
    program: ast.Program,
    budget: Optional[ResourceBudget],
    diagnostics: Optional[DiagnosticLog],
    verify: str,
    jobs: int,
    store,
    worker_timeout: float,
    journal=None,
    resume: bool = False,
    pta_tier: str = "fi",
) -> PreparedModule:
    """Serial pipeline, or the wave scheduler when parallelism, the
    artifact cache, or the run journal is requested."""
    if jobs and jobs > 1 or store is not None or journal is not None:
        from repro.sched.scheduler import prepare_program

        return prepare_program(
            program,
            jobs=jobs or 1,
            budget=budget,
            diagnostics=diagnostics,
            verify=verify,
            store=store,
            worker_timeout=worker_timeout,
            journal=journal,
            resume=resume,
            pta_tier=pta_tier,
        )
    return prepare_module(
        program, budget, diagnostics, verify=verify, pta_tier=pta_tier
    )
