"""Pinpoint's core: SEG-based, demand-driven, compositional bug finding.

The public entry point is :class:`repro.core.engine.Pinpoint`:

    from repro import Pinpoint, UseAfterFreeChecker

    engine = Pinpoint.from_source(source_text)
    result = engine.check(UseAfterFreeChecker())
    for report in result:
        print(report)

See :mod:`repro.core.pipeline` for the per-function preparation stages
(Fig. 6 of the paper) and :mod:`repro.core.engine` for the global
value-flow analysis (Section 3.3).
"""

from repro.core.pipeline import PreparedFunction, PreparedModule, prepare_module, prepare_source
from repro.core.engine import EngineConfig, Pinpoint
from repro.core.report import BugReport, CheckResult, EngineStats, Location

__all__ = [
    "BugReport",
    "CheckResult",
    "EngineConfig",
    "EngineStats",
    "Location",
    "Pinpoint",
    "PreparedFunction",
    "PreparedModule",
    "prepare_module",
    "prepare_source",
]
