"""Ad-hoc value-flow queries.

The paper positions Pinpoint as a framework: "problems that can be
modeled as value-flow paths are straightforward to solve" (§4.1).  This
module exposes that capability directly: describe where values of
interest are born and where their arrival matters, get back the feasible
flows — without subclassing :class:`~repro.core.checkers.base.Checker`.

Example::

    from repro.core.query import ValueFlowQuery

    query = (
        ValueFlowQuery("config-to-exec")
        .values_returned_by("load_config")
        .reaching_arguments_of("execute")
        .through_operators()          # survive arithmetic/string massaging
    )
    flows = query.run(engine)
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.checkers.base import Checker, SinkSpec, SourceSpec
from repro.core.engine import Pinpoint
from repro.core.report import BugReport
from repro.ir import cfg


class ValueFlowQuery:
    """A builder for source/sink vocabularies, executed via the engine."""

    def __init__(self, name: str = "value-flow-query") -> None:
        self.name = name
        self._source_returns: set = set()
        self._source_arguments: set = set()
        self._source_null_literals = False
        self._source_allocations = False
        self._sink_arguments: set = set()
        self._sink_dereferences = False
        self._through_ops = False

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    def values_returned_by(self, *callees: str) -> "ValueFlowQuery":
        """Track values received from calls to these (external) callees."""
        self._source_returns.update(callees)
        return self

    def values_passed_to(self, *callees: str) -> "ValueFlowQuery":
        """Track values at the moment they are passed to these callees
        (e.g. ``free``: the value dangles from the call on)."""
        self._source_arguments.update(callees)
        return self

    def null_literals(self) -> "ValueFlowQuery":
        self._source_null_literals = True
        return self

    def allocations(self) -> "ValueFlowQuery":
        self._source_allocations = True
        return self

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def reaching_arguments_of(self, *callees: str) -> "ValueFlowQuery":
        self._sink_arguments.update(callees)
        return self

    def reaching_dereferences(self) -> "ValueFlowQuery":
        self._sink_dereferences = True
        return self

    def through_operators(self) -> "ValueFlowQuery":
        """Let tracked values survive unary/binary operators (taint)."""
        self._through_ops = True
        return self

    # ------------------------------------------------------------------
    def run(self, engine: Pinpoint) -> List[BugReport]:
        """Execute against a prepared engine; returns feasible flows."""
        if not (
            self._source_returns
            or self._source_arguments
            or self._source_null_literals
            or self._source_allocations
        ):
            raise ValueError("query has no sources")
        if not (self._sink_arguments or self._sink_dereferences):
            raise ValueError("query has no sinks")
        checker = _QueryChecker(self)
        return list(engine.check(checker))


class _QueryChecker(Checker):
    """Adapter: a ValueFlowQuery as a Checker."""

    def __init__(self, query: ValueFlowQuery) -> None:
        self.name = query.name
        self.query = query
        self.through_ops = query._through_ops

    def sources(self, prepared, seg) -> List[SourceSpec]:
        query = self.query
        specs: List[SourceSpec] = []
        for call in seg.call_sites:
            if call.callee in query._source_returns and call.dest is not None:
                specs.append(
                    SourceSpec(
                        vertex=("def", call.dest),
                        value_var=call.dest,
                        instr_uid=call.uid,
                        line=call.line,
                        description=f"returned by {call.callee}",
                    )
                )
            if call.callee in query._source_arguments:
                specs.extend(
                    self._call_arg_specs(call, f"passed to {call.callee}", SourceSpec)
                )
        for instr in prepared.function.all_instrs():
            if instr.synthetic:
                continue
            if (
                query._source_null_literals
                and isinstance(instr, cfg.Assign)
                and isinstance(instr.src, cfg.Const)
                and instr.src.value == 0
            ):
                specs.append(
                    SourceSpec(
                        vertex=("def", instr.dest),
                        value_var=instr.dest,
                        instr_uid=instr.uid,
                        line=instr.line,
                        description="null literal",
                    )
                )
            if query._source_allocations and isinstance(instr, cfg.Malloc):
                specs.append(
                    SourceSpec(
                        vertex=("def", instr.dest),
                        value_var=instr.dest,
                        instr_uid=instr.uid,
                        line=instr.line,
                        description="allocation",
                    )
                )
        return specs

    def sinks(self, prepared, seg) -> List[SinkSpec]:
        query = self.query
        specs: List[SinkSpec] = []
        for call in seg.call_sites:
            if call.callee in query._sink_arguments:
                specs.extend(
                    self._call_arg_specs(call, f"argument of {call.callee}", SinkSpec)
                )
        if query._sink_dereferences:
            specs.extend(self._deref_sinks(prepared, seg))
        return specs
