"""Incremental analysis: reuse per-function artifacts across runs.

Industrial static analysis is run on every commit, so re-analysis cost
matters as much as cold cost (the paper cites Coverity's incremental
scanning as the deployment context).  Pinpoint's architecture makes
function-level incrementality natural: everything stage 1-3 computes for
a function (connectors, points-to, SEG) depends only on

- the function's own AST, and
- the connector signatures of its (non-recursive) callees.

The :class:`IncrementalAnalyzer` keys each function's prepared artifacts
by exactly that pair.  Re-analyzing an edited program reuses every
function whose key is unchanged; an edit that changes a callee's
*interface* (its Mod/Ref behaviour) transitively invalidates callers,
while a body-only edit re-analyzes just the one function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cache.keys import key_digest, prepare_cache_key
from repro.core.engine import EngineConfig, Pinpoint
from repro.core.pipeline import (
    PreparedFunction,
    PreparedModule,
    prepare_function,
)
from repro.ir.callgraph import CallGraph
from repro.ir.lower import lower_program
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.obs.metrics import get_registry
from repro.obs.trace import trace
from repro.transform.connectors import ConnectorSignature


@dataclass
class IncrementalStats:
    analyzed: int = 0
    reused: int = 0

    @property
    def total(self) -> int:
        return self.analyzed + self.reused


@dataclass
class _CacheEntry:
    key: Tuple
    prepared: PreparedFunction


class IncrementalAnalyzer:
    """Analyzes successive versions of a program, reusing artifacts.

    ``store`` (a :class:`repro.cache.SummaryStore`) adds a second,
    persistent tier: artifacts missing from the in-memory cache are
    looked up on disk before being recomputed, and fresh computations
    are written back, so a brand-new analyzer warm-starts from a cache
    directory populated by a previous process.
    """

    def __init__(
        self, config: Optional[EngineConfig] = None, store=None
    ) -> None:
        self.config = config
        self.store = store
        self._cache: Dict[str, _CacheEntry] = {}
        self.last_stats = IncrementalStats()

    def analyze(self, source: str) -> Pinpoint:
        """Prepare (incrementally) and wrap in an engine."""
        program = parse_program(source)
        return self.analyze_program(program)

    def analyze_program(self, program: ast.Program) -> Pinpoint:
        from repro.pta.flowsense import resolve_pta_tier

        tier = resolve_pta_tier(
            self.config.pta_tier if self.config is not None else ""
        )
        stats = IncrementalStats()
        prepared = PreparedModule()
        module = lower_program(program)
        callgraph = CallGraph(module)
        prepared.callgraph = callgraph
        order = callgraph.bottom_up_order()
        prepared.order = order

        ast_by_name = {f.name: f for f in program.functions}
        prepared.asts = dict(ast_by_name)
        scc_of: Dict[str, int] = {}
        for index, scc in enumerate(callgraph.sccs()):
            for member in scc:
                scc_of[member] = index

        signatures: Dict[str, ConnectorSignature] = {}
        next_cache: Dict[str, _CacheEntry] = {}
        for name in order:
            func_ast = ast_by_name[name]
            usable = {
                callee: sig
                for callee, sig in signatures.items()
                if scc_of.get(callee) != scc_of.get(name)
            }
            own_callees = callgraph.callees.get(name, set())
            key = prepare_cache_key(func_ast, usable, own_callees, pta_tier=tier)
            cached = self._cache.get(name)
            registry = get_registry()
            if cached is not None and cached.key == key:
                result = cached.prepared
                stats.reused += 1
                registry.counter(
                    "engine.prepare_cache.hit",
                    "Incremental runs reusing a function's prepared artifacts",
                ).inc()
            else:
                result = None
                if self.store is not None:
                    entry = self.store.get(key_digest(key))
                    if entry is not None:
                        _stored_name, result, seg = entry
                        if seg is not None:
                            prepared.segs[name] = seg
                        stats.reused += 1
                        registry.counter(
                            "engine.prepare_cache.hit",
                            "Incremental runs reusing a function's"
                            " prepared artifacts",
                        ).inc()
                if result is None:
                    with trace("prepare.fn", unit=name, incremental=True):
                        result = prepare_function(
                            func_ast, usable, prepared.linear, pta_tier=tier
                        )
                    stats.analyzed += 1
                    registry.counter(
                        "engine.prepare_cache.miss",
                        "Incremental runs re-preparing a function",
                    ).inc()
                    if self.store is not None:
                        self.store.put(key_digest(key), name, result)
            next_cache[name] = _CacheEntry(key, result)
            signatures[name] = result.signature
            prepared.functions[name] = result
        self._cache = next_cache
        self.last_stats = stats
        return Pinpoint(prepared, self.config)

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop one function's cache entry, or everything."""
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name, None)
