"""Incremental analysis: reuse per-function artifacts across runs.

Industrial static analysis is run on every commit, so re-analysis cost
matters as much as cold cost (the paper cites Coverity's incremental
scanning as the deployment context).  Pinpoint's architecture makes
function-level incrementality natural: everything stage 1-3 computes for
a function (connectors, points-to, SEG) depends only on

- the function's own AST, and
- the connector signatures of its (non-recursive) callees.

The :class:`IncrementalAnalyzer` keys each function's prepared artifacts
by exactly that pair.  Re-analyzing an edited program reuses every
function whose key is unchanged; an edit that changes a callee's
*interface* (its Mod/Ref behaviour) transitively invalidates callers,
while a body-only edit re-analyzes just the one function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cache.keys import key_digest, prepare_cache_key
from repro.core.engine import CheckMemo, EngineConfig, Pinpoint
from repro.core.pipeline import (
    PreparedFunction,
    PreparedModule,
    prepare_function,
)
from repro.ir.callgraph import CallGraph
from repro.ir.lower import lower_program
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.obs.metrics import get_registry
from repro.obs.trace import trace
from repro.transform.connectors import ConnectorSignature


@dataclass
class IncrementalStats:
    analyzed: int = 0
    reused: int = 0

    @property
    def total(self) -> int:
        return self.analyzed + self.reused


@dataclass
class _CacheEntry:
    key: Tuple
    prepared: PreparedFunction
    # The SEG the engine built from these artifacts, harvested after
    # engine construction so the next warm run skips the rebuild (same
    # contract as the on-disk store's seg column: purely derived data,
    # keyed by the same fingerprints).
    seg: Optional[object] = None


class IncrementalAnalyzer:
    """Analyzes successive versions of a program, reusing artifacts.

    ``store`` (a :class:`repro.cache.SummaryStore`) adds a second,
    persistent tier: artifacts missing from the in-memory cache are
    looked up on disk before being recomputed, and fresh computations
    are written back, so a brand-new analyzer warm-starts from a cache
    directory populated by a previous process.
    """

    def __init__(
        self, config: Optional[EngineConfig] = None, store=None
    ) -> None:
        self.config = config
        self.store = store
        self._cache: Dict[str, _CacheEntry] = {}
        # Check-phase memo: per-checker, per-function summaries/reports
        # recorded by the engine so warm re-checks replay unchanged
        # functions instead of re-searching them (see
        # :class:`repro.core.engine.CheckMemo`).  The prepare cache
        # bounds re-*preparation* to the edit's invalidation cone; this
        # bounds the *checker pass* the same way.
        self.check_memo = CheckMemo()
        self.last_stats = IncrementalStats()

    def analyze(self, source: str, budget=None) -> Pinpoint:
        """Prepare (incrementally) and wrap in an engine."""
        program = parse_program(source)
        return self.analyze_program(program, budget=budget)

    @property
    def warm(self) -> bool:
        """Has this analyzer prepared at least one program already?
        (The service layer uses this to classify requests cold/warm.)"""
        return bool(self._cache)

    @property
    def cached_functions(self) -> int:
        return len(self._cache)

    def analyze_program(self, program: ast.Program, budget=None) -> Pinpoint:
        from repro.pta.flowsense import resolve_pta_tier

        tier = resolve_pta_tier(
            self.config.pta_tier if self.config is not None else ""
        )
        stats = IncrementalStats()
        prepared = PreparedModule()
        module = lower_program(program)
        callgraph = CallGraph(module)
        prepared.callgraph = callgraph
        order = callgraph.bottom_up_order()
        prepared.order = order

        ast_by_name = {f.name: f for f in program.functions}
        prepared.asts = dict(ast_by_name)
        scc_of: Dict[str, int] = {}
        for index, scc in enumerate(callgraph.sccs()):
            for member in scc:
                scc_of[member] = index

        signatures: Dict[str, ConnectorSignature] = {}
        next_cache: Dict[str, _CacheEntry] = {}
        for name in order:
            func_ast = ast_by_name[name]
            usable = {
                callee: sig
                for callee, sig in signatures.items()
                if scc_of.get(callee) != scc_of.get(name)
            }
            own_callees = callgraph.callees.get(name, set())
            key = prepare_cache_key(func_ast, usable, own_callees, pta_tier=tier)
            cached = self._cache.get(name)
            registry = get_registry()
            if cached is not None and cached.key == key:
                result = cached.prepared
                if cached.seg is not None:
                    prepared.segs[name] = cached.seg
                stats.reused += 1
                registry.counter(
                    "engine.prepare_cache.hit",
                    "Incremental runs reusing a function's prepared artifacts",
                ).inc()
            else:
                result = None
                if self.store is not None:
                    entry = self.store.get(key_digest(key))
                    if entry is not None:
                        _stored_name, result, seg = entry
                        if seg is not None:
                            prepared.segs[name] = seg
                        stats.reused += 1
                        registry.counter(
                            "engine.prepare_cache.hit",
                            "Incremental runs reusing a function's"
                            " prepared artifacts",
                        ).inc()
                if result is None:
                    with trace("prepare.fn", unit=name, incremental=True):
                        result = prepare_function(
                            func_ast, usable, prepared.linear, pta_tier=tier
                        )
                    stats.analyzed += 1
                    registry.counter(
                        "engine.prepare_cache.miss",
                        "Incremental runs re-preparing a function",
                    ).inc()
                    if self.store is not None:
                        self.store.put(key_digest(key), name, result)
            next_cache[name] = _CacheEntry(
                key, result, seg=prepared.segs.get(name)
            )
            signatures[name] = result.signature
            prepared.functions[name] = result
        self._cache = next_cache
        self.last_stats = stats
        self.check_memo.prune(set(next_cache))
        engine = Pinpoint(prepared, self.config, budget)
        engine.check_memo = self.check_memo
        engine.prepare_digests = {
            name: key_digest(entry.key) for name, entry in next_cache.items()
        }
        # Harvest the SEGs this engine just built (before any check-time
        # fs escalation can swap functions to the precise tier, so the
        # cached SEG always matches the cached fi artifacts).
        for name, entry in next_cache.items():
            if entry.seg is None:
                pf = engine.functions.get(name)
                if pf is not None:
                    entry.seg = pf.seg
        return engine

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop one function's cache entry, or everything."""
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name, None)
        self.check_memo.invalidate(name)


def apply_function_edit(
    program: ast.Program, new_func: ast.FuncDef
) -> ast.Program:
    """A new program with one function's definition replaced.

    This is the single-function-delta entry point the analysis daemon's
    ``/v1/edit`` endpoint builds on: the caller parses just the edited
    function's text, splices it over the old definition here, and feeds
    the result back through :meth:`IncrementalAnalyzer.analyze_program`
    — where the AST x interface fingerprints confine re-preparation to
    the edited function (plus interface-invalidated callers).

    The input program is not mutated (sessions keep it as their current
    state until the re-check succeeds).  Raises ``KeyError`` when the
    program has no function of that name — an edit can change a body or
    interface, not add or remove functions (submit a full ``/v1/check``
    for structural changes).
    """
    if not any(f.name == new_func.name for f in program.functions):
        raise KeyError(new_func.name)
    return ast.Program(
        functions=[
            new_func if f.name == new_func.name else f
            for f in program.functions
        ]
    )
