"""Double-free checker.

Source: the argument of ``free(p)``.  Sink: the argument of another
``free`` reached later with the same value.  The engine's happens-after
filter keeps a single ``free`` statement from being both the source and
the sink of one report.
"""

from __future__ import annotations

from typing import List

from repro.core.checkers.base import Checker, SinkSpec, SourceSpec
from repro.core.checkers.use_after_free import FREE_NAMES
from repro.seg.graph import SEG


class DoubleFreeChecker(Checker):
    name = "double-free"
    # free(null) twice is harmless; only a real allocation double-frees.
    null_inert = True

    def sources(self, prepared, seg: SEG) -> List[SourceSpec]:
        specs: List[SourceSpec] = []
        for call in self._call_sites(seg, FREE_NAMES):
            specs.extend(self._call_arg_specs(call, "first free", SourceSpec))
        return specs

    def sinks(self, prepared, seg: SEG) -> List[SinkSpec]:
        specs: List[SinkSpec] = []
        for call in self._call_sites(seg, FREE_NAMES):
            specs.extend(self._call_arg_specs(call, "second free", SinkSpec))
        return specs
