"""Memory-leak checker (Saber/Fastcheck-style, simplified).

Unlike the source-sink checkers, a leak is an *absence* property: a
``malloc``'d value that neither reaches any ``free`` nor escapes the
allocating region (returned, stored into caller-visible memory, or passed
to a callee that might free/keep it).  The engine runs the same forward
value-flow search from each allocation and classifies the outcome:

- reaches a ``free`` anywhere (locally or through a callee summary) —
  not a leak;
- reaches a return slot, a store into caller-visible memory, or an
  unknown callee — escapes, assumed freed elsewhere (soundy);
- search exhausts with neither — reported as a leak.

This checker is used by the ablation/extension benches; it demonstrates
that the SEG machinery supports checker styles beyond plain
source-to-sink reachability.
"""

from __future__ import annotations

from typing import List

from repro.core.checkers.base import Checker, SinkSpec, SourceSpec
from repro.core.checkers.use_after_free import FREE_NAMES
from repro.ir import cfg
from repro.seg.graph import SEG


class MemoryLeakChecker(Checker):
    name = "memory-leak"
    # The engine special-cases this flag: instead of reporting when a sink
    # is reached, it reports when NO sink (free/escape) is reachable.
    absence_mode = True

    def sources(self, prepared, seg: SEG) -> List[SourceSpec]:
        specs: List[SourceSpec] = []
        for instr in prepared.function.all_instrs():
            if isinstance(instr, cfg.Malloc) and not instr.synthetic:
                specs.append(
                    SourceSpec(
                        vertex=("def", instr.dest),
                        value_var=instr.dest,
                        instr_uid=instr.uid,
                        line=instr.line,
                        description="allocated here",
                    )
                )
        return specs

    def sinks(self, prepared, seg: SEG) -> List[SinkSpec]:
        """Sinks are the 'releases': free calls.  Escapes are detected
        structurally by the engine (returns, stores, unknown calls)."""
        specs: List[SinkSpec] = []
        for call in self._call_sites(seg, FREE_NAMES):
            specs.extend(self._call_arg_specs(call, "freed", SinkSpec))
        return specs
