"""Taint checkers (paper Section 4.1 and Table 2).

A taint issue is a value-flow path from an *input* statement to a
*sensitive* statement.  Two concrete instances follow the paper:

- **path traversal** (CWE-23): user input (``fgetc``, ``recv``, ...)
  reaching a file operation (``fopen``, ``open``, ...);
- **data transmission** (CWE-402): sensitive data (``getpass``, ...)
  reaching an output channel (``sendto``, ``write``, ...).

As in the paper (and FlowDroid's evaluation mode it cites), sanitization
is not modeled.  Taint survives arithmetic and string-like operations, so
these checkers set ``through_ops``.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.checkers.base import Checker, SinkSpec, SourceSpec
from repro.ir import cfg
from repro.seg.graph import SEG


class TaintChecker(Checker):
    """Generic taint checker parameterized by source/sink callee names."""

    through_ops = True

    def __init__(
        self,
        name: str,
        source_calls: Iterable[str],
        sink_calls: Iterable[str],
    ) -> None:
        self.name = name
        self.source_calls = frozenset(source_calls)
        self.sink_calls = frozenset(sink_calls)

    def sources(self, prepared, seg: SEG) -> List[SourceSpec]:
        specs: List[SourceSpec] = []
        for call in self._call_sites(seg, self.source_calls):
            if call.dest is not None:
                specs.append(
                    SourceSpec(
                        vertex=("def", call.dest),
                        value_var=call.dest,
                        instr_uid=call.uid,
                        line=call.line,
                        description=f"input from {call.callee}",
                    )
                )
        return specs

    def sinks(self, prepared, seg: SEG) -> List[SinkSpec]:
        specs: List[SinkSpec] = []
        for call in self._call_sites(seg, self.sink_calls):
            specs.extend(
                self._call_arg_specs(call, f"reaches {call.callee}", SinkSpec)
            )
        return specs


PATH_TRAVERSAL_SOURCES = ("fgetc", "fgets", "recv", "read_input", "getenv", "scanf")
PATH_TRAVERSAL_SINKS = ("fopen", "open", "opendir", "remove", "rename")

DATA_TRANSMISSION_SOURCES = ("getpass", "read_key", "load_secret", "read_password")
DATA_TRANSMISSION_SINKS = ("sendto", "send", "write_socket", "log_msg")


class PathTraversalChecker(TaintChecker):
    def __init__(self) -> None:
        super().__init__(
            "path-traversal", PATH_TRAVERSAL_SOURCES, PATH_TRAVERSAL_SINKS
        )


class DataTransmissionChecker(TaintChecker):
    def __init__(self) -> None:
        super().__init__(
            "data-transmission", DATA_TRANSMISSION_SOURCES, DATA_TRANSMISSION_SINKS
        )
