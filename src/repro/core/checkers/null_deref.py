"""Null-pointer-dereference checker.

Source: an assignment of the ``null`` literal (constant 0) to a variable.
Sink: any dereference.  Narrower than an industrial null checker (no
may-fail allocators), but exercises the same value-flow machinery.
"""

from __future__ import annotations

from typing import List

from repro.core.checkers.base import Checker, SinkSpec, SourceSpec
from repro.ir import cfg
from repro.seg.graph import SEG


class NullDereferenceChecker(Checker):
    name = "null-deref"

    def sources(self, prepared, seg: SEG) -> List[SourceSpec]:
        specs: List[SourceSpec] = []
        for instr in prepared.function.all_instrs():
            if (
                isinstance(instr, cfg.Assign)
                and isinstance(instr.src, cfg.Const)
                and instr.src.value == 0
                and not instr.synthetic
            ):
                specs.append(
                    SourceSpec(
                        vertex=("def", instr.dest),
                        value_var=instr.dest,
                        instr_uid=instr.uid,
                        line=instr.line,
                        description="null assigned",
                    )
                )
        return specs

    def sinks(self, prepared, seg: SEG) -> List[SinkSpec]:
        return self._deref_sinks(prepared, seg)
