"""Resource-leak checker (file handles, sockets).

A generalization of the memory-leak checker demonstrating that the
absence machinery is resource-agnostic: values born at an *acquire*
call (``fopen``, ``socket``, ...) must reach a *release* call
(``fclose``, ``close``, ...) or escape the acquiring region.
"""

from __future__ import annotations

from typing import List

from repro.core.checkers.base import Checker, SinkSpec, SourceSpec
from repro.seg.graph import SEG

ACQUIRE_NAMES = frozenset({"fopen", "open", "socket", "acquire_lock", "opendir"})
RELEASE_NAMES = frozenset({"fclose", "close", "release_lock", "closedir"})


class ResourceLeakChecker(Checker):
    name = "resource-leak"
    absence_mode = True

    def sources(self, prepared, seg: SEG) -> List[SourceSpec]:
        specs: List[SourceSpec] = []
        for call in self._call_sites(seg, ACQUIRE_NAMES):
            if call.dest is not None:
                specs.append(
                    SourceSpec(
                        vertex=("def", call.dest),
                        value_var=call.dest,
                        instr_uid=call.uid,
                        line=call.line,
                        description=f"acquired via {call.callee}",
                    )
                )
        return specs

    def sinks(self, prepared, seg: SEG) -> List[SinkSpec]:
        specs: List[SinkSpec] = []
        for call in self._call_sites(seg, RELEASE_NAMES):
            specs.extend(self._call_arg_specs(call, "released", SinkSpec))
        return specs
