"""Checkers: the bug classes Pinpoint detects as value-flow paths (§4.1).

Each checker designates *sources* (where a value of interest is born:
``free(c)`` makes ``c`` dangling; ``r = fgetc()`` makes ``r`` tainted)
and *sinks* (where the value's arrival is a bug: a dereference, another
``free``, a sensitive call).  The engine does the rest: demand-driven
search, summary reuse, path-condition solving.
"""

from repro.core.checkers.base import Checker, SinkSpec, SourceSpec
from repro.core.checkers.use_after_free import UseAfterFreeChecker
from repro.core.checkers.double_free import DoubleFreeChecker
from repro.core.checkers.null_deref import NullDereferenceChecker
from repro.core.checkers.taint import (
    DataTransmissionChecker,
    PathTraversalChecker,
    TaintChecker,
)
from repro.core.checkers.memory_leak import MemoryLeakChecker
from repro.core.checkers.resource_leak import ResourceLeakChecker

__all__ = [
    "Checker",
    "DataTransmissionChecker",
    "DoubleFreeChecker",
    "MemoryLeakChecker",
    "NullDereferenceChecker",
    "PathTraversalChecker",
    "ResourceLeakChecker",
    "SinkSpec",
    "SourceSpec",
    "TaintChecker",
    "UseAfterFreeChecker",
]
