"""Checker interface.

A checker reduces a bug class to a source-sink reachability problem over
value flows (paper Section 4.1).  The engine asks each checker for the
source and sink anchors of every function's SEG and handles everything
else (summaries, context cloning, path conditions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.ir import cfg
from repro.seg.graph import SEG, VertexKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import PreparedFunction


@dataclass(frozen=True)
class SourceSpec:
    """A statement giving birth to a tracked value.

    ``vertex`` anchors the source in the SEG (for path reporting);
    ``value_var`` is the SSA variable whose value is tracked from here.
    """

    vertex: VertexKey
    value_var: str
    instr_uid: int
    line: int
    description: str = ""


@dataclass(frozen=True)
class SinkSpec:
    """A use anchor at which arrival of a tracked value is a bug."""

    vertex: VertexKey
    value_var: str
    instr_uid: int
    line: int
    description: str = ""


class Checker:
    """Base class; subclasses override :meth:`sources` and :meth:`sinks`."""

    name = "checker"
    # Whether tracked values survive through unary/binary operators
    # (true for taint, false for pointer identity).
    through_ops = False

    def sources(self, prepared: "PreparedFunction", seg: SEG) -> List[SourceSpec]:
        raise NotImplementedError

    def sinks(self, prepared: "PreparedFunction", seg: SEG) -> List[SinkSpec]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _call_sites(seg: SEG, callee_names) -> List[cfg.Call]:
        return [c for c in seg.call_sites if c.callee in callee_names]

    @staticmethod
    def _deref_sinks(prepared: "PreparedFunction", seg: SEG) -> List[SinkSpec]:
        """Every non-synthetic load/store pointer operand."""
        sinks: List[SinkSpec] = []
        for instr in prepared.function.all_instrs():
            if instr.synthetic:
                continue
            if isinstance(instr, (cfg.Load, cfg.Store)):
                sinks.append(
                    SinkSpec(
                        vertex=("use", instr.pointer.name, instr.uid),
                        value_var=instr.pointer.name,
                        instr_uid=instr.uid,
                        line=instr.line,
                        description="dereference",
                    )
                )
        return sinks

    @staticmethod
    def _call_arg_specs(call: cfg.Call, description: str, cls):
        specs = []
        for arg in call.args:
            if isinstance(arg, cfg.Var):
                specs.append(
                    cls(
                        vertex=("use", arg.name, call.uid),
                        value_var=arg.name,
                        instr_uid=call.uid,
                        line=call.line,
                        description=description,
                    )
                )
        return specs
