"""Use-after-free checker.

Source: the pointer argument of ``free(p)`` — from that statement on,
``p``'s value is dangling.  Sink: any dereference (load or store through
the pointer).  A report means the dangling value reaches a dereference on
a path whose condition is satisfiable — the paper's primary evaluation
checker (Table 1).
"""

from __future__ import annotations

from typing import List

from repro.core.checkers.base import Checker, SinkSpec, SourceSpec
from repro.seg.graph import SEG

FREE_NAMES = frozenset({"free", "release", "dispose", "kfree"})


class UseAfterFreeChecker(Checker):
    name = "use-after-free"
    # free(null) is a no-op, so a null tracked value cannot dangle.
    null_inert = True

    def sources(self, prepared, seg: SEG) -> List[SourceSpec]:
        specs: List[SourceSpec] = []
        for call in self._call_sites(seg, FREE_NAMES):
            specs.extend(
                self._call_arg_specs(call, "freed here", SourceSpec)
            )
        return specs

    def sinks(self, prepared, seg: SEG) -> List[SinkSpec]:
        return self._deref_sinks(prepared, seg)
