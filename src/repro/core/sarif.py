"""SARIF 2.1.0 export for bug reports.

SARIF (Static Analysis Results Interchange Format) is the OASIS-standard
JSON schema CI systems and code hosts ingest.  This module renders
:class:`~repro.core.report.CheckResult` objects as a minimal-but-valid
SARIF log: one run per checker, one result per report, with the
value-flow path attached as a codeFlow (threadFlow locations), and the
path condition/witness carried in result properties.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

from repro.core.report import BugReport, CheckResult, Location

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_RULE_DESCRIPTIONS = {
    "use-after-free": "A freed pointer value reaches a dereference.",
    "double-free": "A freed pointer value reaches another free.",
    "null-deref": "A null value reaches a dereference.",
    "memory-leak": "An allocation neither reaches a free nor escapes.",
    "resource-leak": "An acquired resource is never released.",
    "path-traversal": "User input reaches a file operation (CWE-23).",
    "data-transmission": "Sensitive data reaches an output channel (CWE-402).",
}


def _location(loc: Location, artifact: str) -> dict:
    entry = {
        "physicalLocation": {
            "artifactLocation": {"uri": artifact},
            "region": {"startLine": max(loc.line, 1)},
        },
        "logicalLocations": [{"name": loc.function, "kind": "function"}],
    }
    if loc.variable:
        entry["message"] = {"text": f"value held by {loc.variable}"}
    return entry


def _result(report: BugReport, artifact: str) -> dict:
    message = (
        f"{report.checker}: value from {report.source} reaches {report.sink}"
    )
    thread_locations = [
        {"location": _location(loc, artifact)} for loc in report.path
    ] or [{"location": _location(report.sink, artifact)}]
    result = {
        "ruleId": report.checker,
        "level": "error" if report.verdict == "sat" else "warning",
        "message": {"text": message},
        "locations": [_location(report.sink, artifact)],
        "relatedLocations": [_location(report.source, artifact)],
        "codeFlows": [
            {"threadFlows": [{"locations": thread_locations}]}
        ],
        "properties": {
            "pathCondition": report.condition,
            "verdict": report.verdict,
        },
    }
    if report.witness:
        result["properties"]["feasibleWhen"] = report.witness
    return result


def _notification(diag, artifact: str) -> dict:
    """One toolExecutionNotification per degradation/quarantine."""
    entry = {
        "level": "warning",
        "message": {"text": str(diag)},
        "descriptor": {"id": f"{diag.stage}/{diag.reason}"},
        "properties": diag.as_dict(),
    }
    if diag.line:
        entry["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": artifact},
                    "region": {"startLine": max(diag.line, 1)},
                }
            }
        ]
    return entry


def _run(
    result: CheckResult,
    artifact: str,
    metrics: Optional[dict] = None,
    trace_summary: Optional[dict] = None,
) -> dict:
    rules = [
        {
            "id": result.checker,
            "shortDescription": {
                "text": _RULE_DESCRIPTIONS.get(result.checker, result.checker)
            },
        }
    ]
    diagnostics = getattr(result, "diagnostics", []) or []
    # Stats/metrics/trace live on the invocation: they describe *this
    # analysis run*, not the rules or the results.  All three are views
    # over the same instrumentation layer (repro.obs).
    invocation_properties = {"stats": result.stats.as_dict()}
    if metrics is not None:
        invocation_properties["metrics"] = metrics
    if trace_summary is not None:
        invocation_properties["trace"] = trace_summary
    invocation = {
        "executionSuccessful": True,
        "toolExecutionNotifications": [
            _notification(diag, artifact) for diag in diagnostics
        ],
        "properties": invocation_properties,
    }
    return {
        "tool": {
            "driver": {
                "name": "repro-pinpoint",
                "informationUri": "https://doi.org/10.1145/3192366.3192418",
                "version": "1.0.0",
                "rules": rules,
            }
        },
        "invocations": [invocation],
        "results": [_result(report, artifact) for report in result],
        "properties": {
            "stats": result.stats.as_dict(),
            "degraded": bool(diagnostics),
        },
    }


def to_sarif(
    results: Iterable[CheckResult],
    artifact: str = "program.pin",
    metrics: Optional[dict] = None,
    trace_summary: Optional[dict] = None,
) -> dict:
    """Build the SARIF log object for one or more checker runs.

    ``metrics`` (a :meth:`MetricsRegistry.as_dict` dump) and
    ``trace_summary`` (a :meth:`Tracer.summary` digest) are attached to
    every run's invocation properties when given.
    """
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            _run(result, artifact, metrics, trace_summary) for result in results
        ],
    }


def to_sarif_json(
    results: Iterable[CheckResult],
    artifact: str = "program.pin",
    indent: int = 2,
    metrics: Optional[dict] = None,
    trace_summary: Optional[dict] = None,
) -> str:
    return json.dumps(
        to_sarif(results, artifact, metrics, trace_summary), indent=indent
    )
