"""Function summaries (paper Section 3.3.2).

Two summary families, generated bottom-up so callers can reuse them:

- **RV summaries** describe the value range of each return slot (the
  original return value plus each Aux return value):
  ``(slot value, DD(value)^P, params P)``.

- **VF summaries** describe checker-relevant value-flow paths through a
  function, with their path condition ``PC(π)^P`` and the parameter set
  ``P`` the condition still depends on:

  - VF1: formal parameter (slot) → return value (slot);
  - VF2: source statement → return value (slot);
  - VF3: formal parameter (slot) → source statement (the parameter's
    value becomes e.g. freed);
  - VF4: formal parameter (slot) → sink statement.

Interface slots: parameter slot ``i`` is the i-th entry of
``function.params + function.aux_params`` (matching the transformed call
argument order); return slot ``0`` is the original return value and slot
``1 + j`` is the j-th Aux return value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir import cfg
from repro.seg.conditions import Constraint
from repro.seg.graph import VertexKey


@dataclass(frozen=True)
class RVSummary:
    function: str
    slot: int
    value: cfg.Operand  # the returned operand (Var or Const)
    constraint: Constraint  # DD(value) with receivers resolved

    @property
    def params(self):
        return self.constraint.params


@dataclass(frozen=True)
class VFSummary:
    kind: str  # 'vf1' | 'vf2' | 'vf3' | 'vf4'
    function: str
    path: Tuple[VertexKey, ...]
    constraint: Constraint  # PC(path), receivers resolved, params kept
    param_slot: Optional[int] = None  # vf1/vf3/vf4 start
    ret_slot: Optional[int] = None  # vf1/vf2 end
    # Source/sink anchoring for reporting (function, line, variable, uid).
    source_line: int = 0
    source_var: str = ""
    source_uid: int = 0
    sink_line: int = 0
    sink_var: str = ""
    sink_uid: int = 0
    # Nested origin: when the real source/sink lives in a deeper callee,
    # these record the original location for the report.
    origin_function: str = ""
    origin_line: int = 0
    origin_var: str = ""


@dataclass
class FunctionSummaries:
    """All summaries of one function for one checker run."""

    function: str
    rv: Dict[int, RVSummary] = field(default_factory=dict)
    vf1: List[VFSummary] = field(default_factory=list)
    vf2: List[VFSummary] = field(default_factory=list)
    vf3: List[VFSummary] = field(default_factory=list)
    vf4: List[VFSummary] = field(default_factory=list)

    def vf1_from(self, param_slot: int) -> List[VFSummary]:
        return [s for s in self.vf1 if s.param_slot == param_slot]

    def vf3_from(self, param_slot: int) -> List[VFSummary]:
        return [s for s in self.vf3 if s.param_slot == param_slot]

    def vf4_from(self, param_slot: int) -> List[VFSummary]:
        return [s for s in self.vf4 if s.param_slot == param_slot]

    def count(self) -> int:
        return (
            len(self.rv)
            + len(self.vf1)
            + len(self.vf2)
            + len(self.vf3)
            + len(self.vf4)
        )


def interface_params(function: cfg.Function) -> List[str]:
    """SSA names of all formal parameters in call-argument order."""
    return list(function.params) + list(function.aux_params)


def return_slots(function: cfg.Function) -> List[Optional[cfg.Operand]]:
    """Returned operands by slot (None when the function never returns)."""
    rets = function.return_instrs()
    if not rets:
        return []
    ret = rets[0]
    slots: List[Optional[cfg.Operand]] = [ret.value]
    slots.extend(ret.extra_values)
    return slots


def receiver_for_slot(call: cfg.Call, slot: int) -> Optional[str]:
    """The caller-side receiver variable of a callee return slot."""
    if slot == 0:
        return call.dest
    index = slot - 1
    if index < len(call.extra_receivers):
        return call.extra_receivers[index]
    return None
