"""Report baselining: suppress known findings, surface only new ones.

The per-commit workflow the paper's deployment context implies: a first
full scan produces a *baseline* of accepted/triaged findings; subsequent
scans report only findings not in the baseline.  Combined with
:class:`~repro.core.incremental.IncrementalAnalyzer`, this gives the
check-only-what-changed loop commercial tools ship.

Baselines are JSON and match findings *structurally* — by checker,
source/sink function names and variables (not line numbers), so
unrelated edits that shift lines do not resurface triaged findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.report import BugReport, CheckResult

FindingKey = Tuple[str, str, str, str, str]


def finding_key(report: BugReport) -> FindingKey:
    """Line-number-insensitive identity of a finding."""
    return (
        report.checker,
        report.source.function,
        report.source.variable,
        report.sink.function,
        report.sink.variable,
    )


@dataclass
class Baseline:
    """A set of accepted findings."""

    findings: Set[FindingKey] = field(default_factory=set)

    # ------------------------------------------------------------------
    @classmethod
    def from_results(cls, results: Iterable[CheckResult]) -> "Baseline":
        baseline = cls()
        for result in results:
            for report in result:
                baseline.findings.add(finding_key(report))
        return baseline

    @classmethod
    def from_reports(cls, reports: Iterable[BugReport]) -> "Baseline":
        return cls({finding_key(r) for r in reports})

    # ------------------------------------------------------------------
    def filter_new(self, result: CheckResult) -> List[BugReport]:
        """Reports in ``result`` not covered by this baseline."""
        return [r for r in result if finding_key(r) not in self.findings]

    def filter_fixed(self, result: CheckResult) -> List[FindingKey]:
        """Baselined findings of this checker that no longer appear."""
        current = {finding_key(r) for r in result}
        return sorted(
            key
            for key in self.findings
            if key[0] == result.checker and key not in current
        )

    def merge(self, other: "Baseline") -> "Baseline":
        return Baseline(self.findings | other.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def __contains__(self, report: BugReport) -> bool:
        return finding_key(report) in self.findings

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        entries = [
            {
                "checker": checker,
                "source_function": src_fn,
                "source_variable": src_var,
                "sink_function": sink_fn,
                "sink_variable": sink_var,
            }
            for checker, src_fn, src_var, sink_fn, sink_var in sorted(self.findings)
        ]
        return json.dumps({"version": 1, "findings": entries}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        payload = json.loads(text)
        findings = {
            (
                entry["checker"],
                entry["source_function"],
                entry["source_variable"],
                entry["sink_function"],
                entry["sink_variable"],
            )
            for entry in payload.get("findings", [])
        }
        return cls(findings)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
