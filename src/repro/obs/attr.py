"""Cross-process cost attribution: the ``repro why-slow`` analyzer.

PR 2's spans and PR 5's run history stopped at the process boundary —
worker spans were absorbed post-hoc with no causal link to the wave
that dispatched them, so "parallel overhead" was the unexplained
remainder of every ``--jobs`` run.  With trace-context propagation
(worker spans re-parent under their dispatching ``sched.wave`` span)
and the ``sched.dispatch.*`` overhead counters, the assembled span tree
supports the questions the ROADMAP's parallelism item actually asks:

- **critical path** — the longest parent→child chain through the wave
  barriers; the run cannot finish faster than this chain no matter how
  many workers are added;
- **per-wave stragglers** — the one task each barrier waits on, with
  the barrier waste (wave wall minus straggler) made explicit;
- **compute vs. dispatch overhead** — a two-way split of scheduler
  wall, denominated against measured wall time so the shares sum to
  1.0 and can be regression-gated in run history.

:func:`cost_breakdown` builds the machine-readable document (the
``why-slow`` JSON artifact, also attached to run records);
:func:`render_why_slow` prints it as the ranked tables of the
``repro why-slow`` subcommand.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.measure import Measurement
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiling import _fmt_seconds, _table, pass_table, unit_table
from repro.obs.trace import Span, Tracer

#: Document schema tag, bumped on incompatible shape changes.
SCHEMA = "repro.why_slow/1"

#: ``sched.dispatch.*`` counters folded into the overhead detail, in
#: display order.  Seconds-valued entries sum into ``overhead.total_-
#: seconds``; byte-valued entries ride along for size attribution.
DISPATCH_SECONDS = (
    "sched.dispatch.serialize_seconds",
    "sched.dispatch.deserialize_seconds",
    "sched.dispatch.queue_seconds",
    "sched.dispatch.warmup_seconds",
)
DISPATCH_BYTES = (
    "sched.dispatch.serialize_bytes",
    "sched.dispatch.result_bytes",
)


def _counter_total(registry: MetricsRegistry, name: str) -> float:
    metric = registry.get(name)
    if isinstance(metric, Counter):
        return metric.total()
    return 0.0


def _gauge_value(registry: MetricsRegistry, name: str) -> float:
    metric = registry.get(name)
    if isinstance(metric, Gauge):
        return metric.value()
    return 0.0


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
def critical_path(spans: Sequence[Span]) -> List[Span]:
    """Longest-duration root→leaf chain through the span tree.

    Starts at the heaviest root span and descends into the heaviest
    child at every level.  With worker spans re-parented under their
    waves, the chain naturally reads *run → wave → straggler task →
    hottest pass inside it* — the sequence of regions that bound the
    run's wall time.
    """
    if not spans:
        return []
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent, []).append(span)
    roots = children.get(None, [])
    if not roots:
        return []
    chain: List[Span] = []
    node = max(roots, key=lambda s: s.duration)
    while node is not None:
        chain.append(node)
        kids = children.get(node.uid)
        node = max(kids, key=lambda s: s.duration) if kids else None
    return chain


def _wave_rows(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """One row per ``sched.wave`` span: wall, tasks, straggler, waste."""
    rows: List[Dict[str, Any]] = []
    for span in spans:
        if span.name != "sched.wave":
            continue
        straggler_seconds = float(span.args.get("straggler_seconds", 0.0) or 0.0)
        rows.append(
            {
                "index": int(span.unit) if span.unit.isdigit() else span.unit,
                "seconds": round(span.duration, 6),
                "functions": int(span.args.get("functions", 0) or 0),
                "dispatched": int(span.args.get("dispatched", 0) or 0),
                "cached": int(span.args.get("cached", 0) or 0),
                "straggler": str(span.args.get("straggler", "") or ""),
                "straggler_seconds": round(straggler_seconds, 6),
                "barrier_waste_seconds": round(
                    max(0.0, span.duration - straggler_seconds), 6
                ),
            }
        )
    rows.sort(key=lambda row: row["seconds"], reverse=True)
    return rows


# ----------------------------------------------------------------------
# The breakdown document
# ----------------------------------------------------------------------
def cost_breakdown(
    tracer: Tracer,
    registry: MetricsRegistry,
    measurement: Optional[Measurement] = None,
    source_label: str = "",
    top: int = 10,
) -> Dict[str, Any]:
    """Assemble the ``why-slow`` document from one run's observability.

    The compute/dispatch split is denominated against the largest wall
    figure we have (measured wall, traced root time, or wave-loop
    wall), so the two shares always sum to 1.0 — "overhead" is a
    measured share of real time, not an unexplained remainder.
    """
    spans = list(tracer.spans)
    traced_seconds = sum(s.duration for s in spans if s.parent is None)
    wall_seconds = measurement.seconds if measurement is not None else 0.0

    wave_seconds = _gauge_value(registry, "attr.wave_seconds")
    work_seconds = _gauge_value(registry, "attr.work_seconds")
    critical_seconds = _gauge_value(registry, "attr.critical_path_seconds")

    chain = critical_path(spans)
    if not critical_seconds and chain:
        # Serial / untraced-scheduler fallback: the heaviest chain's
        # root bounds the run just as the wave stragglers would.
        critical_seconds = chain[0].duration

    denominator = max(wall_seconds, traced_seconds, wave_seconds) or 1.0
    dispatch_wall = max(0.0, wave_seconds - critical_seconds)
    compute_wall = max(0.0, denominator - dispatch_wall)
    shares = {
        "compute": round(compute_wall / denominator, 4),
        "dispatch_overhead": round(dispatch_wall / denominator, 4),
    }

    overhead: Dict[str, Any] = {}
    overhead_total = 0.0
    for name in DISPATCH_SECONDS:
        value = _counter_total(registry, name)
        overhead[name.rsplit(".", 1)[-1]] = round(value, 6)
        overhead_total += value
    for name in DISPATCH_BYTES:
        overhead[name.rsplit(".", 1)[-1]] = int(_counter_total(registry, name))
    overhead["barrier_waste_seconds"] = round(dispatch_wall, 6)
    overhead["total_seconds"] = round(overhead_total, 6)

    jobs = int(_gauge_value(registry, "sched.jobs") or 1)
    parallel = {
        "jobs": jobs,
        "wave_seconds": round(wave_seconds, 6),
        "work_seconds": round(work_seconds, 6),
        "critical_path_seconds": round(critical_seconds, 6),
        "utilization": round(_gauge_value(registry, "attr.utilization"), 4),
        "overhead_ratio": round(_gauge_value(registry, "attr.overhead_ratio"), 4),
        # Brent bound: with infinite workers the wave plan still costs
        # the critical path, so work/critical caps achievable speedup.
        "speedup_bound": round(work_seconds / critical_seconds, 2)
        if critical_seconds > 0
        else 0.0,
    }

    # Wave/dispatch spans carry bookkeeping units (wave indices), not
    # functions — keep them out of the per-function ranking.
    unit_spans = [
        s
        for s in spans
        if s.name != "sched.wave" and not s.name.startswith("sched.dispatch")
    ]
    units = unit_table(unit_spans)
    top_functions = [
        {
            "unit": row.unit,
            "self_seconds": round(row.self_seconds, 6),
            "smt_queries": row.smt_queries,
            "hottest_pass": row.hottest_pass,
        }
        for row in units[:top]
    ]

    smt: Dict[str, Any] = {}
    smt_queries = registry.get("smt.queries")
    if isinstance(smt_queries, Counter) and smt_queries.total():
        smt["queries"] = int(smt_queries.total())
    smt_hist = registry.get("smt.solve_seconds")
    if isinstance(smt_hist, Histogram) and smt_hist.total_count():
        smt["solve_seconds"] = {
            key: round(value, 6)
            for key, value in smt_hist.merged_quantiles().items()
        }
    smt_units = [row for row in units if row.smt_queries]
    smt_units.sort(key=lambda row: row.smt_queries, reverse=True)
    if smt_units:
        smt["top_units"] = [
            {
                "unit": row.unit,
                "smt_queries": row.smt_queries,
                "self_seconds": round(row.self_seconds, 6),
            }
            for row in smt_units[:top]
        ]

    document: Dict[str, Any] = {
        "schema": SCHEMA,
        "label": source_label,
        "trace_id": tracer.trace_id if tracer.enabled else "",
        "spans": len(spans),
        "wall_seconds": round(wall_seconds, 6),
        "traced_seconds": round(traced_seconds, 6),
        "accounted_seconds": round(denominator, 6),
        "shares": shares,
        "overhead": overhead,
        "parallel": parallel,
        "critical_path": [
            {
                "name": span.name,
                "unit": span.unit,
                "seconds": round(span.duration, 6),
            }
            for span in chain
        ],
        "critical_path_seconds": round(critical_seconds, 6),
        "waves": _wave_rows(spans),
        "top_functions": top_functions,
        # Same shape as profile_dict's pass table, so ``repro profile
        # --compare`` can diff a why-slow artifact against a profile.
        "passes": [
            {
                "name": row.name,
                "calls": row.count,
                "total_seconds": round(row.total_seconds, 6),
                "self_seconds": round(row.self_seconds, 6),
            }
            for row in pass_table(spans)[:top]
        ],
    }
    if measurement is not None:
        document["peak_mb"] = round(measurement.peak_mb, 3)
    if smt:
        document["smt"] = smt
    return document


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_why_slow(document: Dict[str, Any], top: int = 10) -> str:
    """Human-readable ``repro why-slow`` report for a breakdown doc."""
    label = document.get("label", "")
    title = f"repro why-slow — {label}" if label else "repro why-slow"
    lines: List[str] = [title, "=" * len(title)]

    shares = document.get("shares", {})
    parallel = document.get("parallel", {})
    bits = [
        f"{_fmt_seconds(document.get('wall_seconds', 0.0))} wall",
        f"{100 * shares.get('compute', 0.0):.1f}% compute",
        f"{100 * shares.get('dispatch_overhead', 0.0):.1f}% dispatch overhead",
    ]
    if parallel.get("jobs", 1) > 1:
        bits.append(f"jobs={parallel['jobs']}")
        bits.append(f"utilization {100 * parallel.get('utilization', 0.0):.1f}%")
    lines.append(", ".join(bits))
    lines.append("")

    chain = document.get("critical_path", [])
    if chain:
        lines.append("critical path (heaviest chain through the wave barriers)")
        lines.append(
            _table(
                ["depth", "span", "unit", "seconds"],
                [
                    [
                        str(depth),
                        entry["name"],
                        entry.get("unit", ""),
                        _fmt_seconds(entry["seconds"]),
                    ]
                    for depth, entry in enumerate(chain)
                ],
            )
        )
        lines.append("")

    waves = document.get("waves", [])
    if waves:
        lines.append(f"slowest waves (top {top}, by wall)")
        lines.append(
            _table(
                ["wave", "wall", "tasks", "straggler", "straggler t", "barrier waste"],
                [
                    [
                        str(row["index"]),
                        _fmt_seconds(row["seconds"]),
                        str(row["dispatched"]),
                        row["straggler"] or "-",
                        _fmt_seconds(row["straggler_seconds"]),
                        _fmt_seconds(row["barrier_waste_seconds"]),
                    ]
                    for row in waves[:top]
                ],
            )
        )
        lines.append("")

    overhead = document.get("overhead", {})
    if overhead:
        lines.append("dispatch overhead breakdown")
        rows = []
        for key in (
            "serialize_seconds",
            "deserialize_seconds",
            "queue_seconds",
            "warmup_seconds",
            "barrier_waste_seconds",
        ):
            if key in overhead:
                rows.append([key.replace("_", " "), _fmt_seconds(overhead[key])])
        for key in ("serialize_bytes", "result_bytes"):
            if key in overhead:
                rows.append([key.replace("_", " "), f"{overhead[key]} B"])
        lines.append(_table(["segment", "cost"], rows))
        lines.append("")

    functions = document.get("top_functions", [])
    if functions:
        lines.append(f"hottest functions (top {top}, by self time)")
        lines.append(
            _table(
                ["function", "self", "smt queries", "hottest pass"],
                [
                    [
                        row["unit"],
                        _fmt_seconds(row["self_seconds"]),
                        str(row["smt_queries"]),
                        row["hottest_pass"],
                    ]
                    for row in functions[:top]
                ],
            )
        )
        lines.append("")

    smt = document.get("smt", {})
    if smt.get("top_units"):
        lines.append(f"hottest SMT consumers (top {top}, by query count)")
        lines.append(
            _table(
                ["function", "queries", "self"],
                [
                    [
                        row["unit"],
                        str(row["smt_queries"]),
                        _fmt_seconds(row["self_seconds"]),
                    ]
                    for row in smt["top_units"][:top]
                ],
            )
        )
        quantiles = smt.get("solve_seconds", {})
        if quantiles:
            lines.append(
                "SMT solve quantiles: "
                + ", ".join(
                    f"{key} {_fmt_seconds(value)}"
                    for key, value in quantiles.items()
                )
            )
        lines.append("")

    if parallel.get("jobs", 1) > 1:
        bound = parallel.get("speedup_bound", 0.0)
        lines.append(
            f"parallel efficiency: {100 * parallel.get('utilization', 0.0):.1f}% "
            f"of {parallel['jobs']} workers busy; "
            f"overhead ratio {parallel.get('overhead_ratio', 0.0):.2f}; "
            f"speedup bound {bound:.2f}x (work / critical path)"
        )
    return "\n".join(lines).rstrip()
