"""Atomic file export for observability artifacts.

Every artifact the instrumentation layer writes — ``--metrics-out``
scrape files, ``--trace`` Chrome JSON, run-history indexes, the
``BENCH_pinpoint.json`` trajectory — goes through :func:`atomic_write`:
the payload lands in a same-directory temp file first and is moved into
place with ``os.replace``, so a concurrent reader (a Prometheus scraper,
a dashboard tailing the history dir, a parallel CI job) sees either the
old file or the new one, never a torn write.  Parent directories are
created on demand, matching :mod:`repro.cache.store` semantics.
"""

from __future__ import annotations

import os
import tempfile


def ensure_parent_dir(path: str) -> None:
    """Create the directory that will hold ``path``, if any."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)


def append_line(path: str, line: str, fsync: bool = False) -> None:
    """Append one line to ``path`` with a single ``os.write``.

    The companion of :func:`atomic_write` for append-only logs (the run
    journal, history ``runs.jsonl``): a whole-file rewrite per record
    would be quadratic, so appends go through one ``write(2)`` on an
    ``O_APPEND`` descriptor instead.  A crash (SIGKILL, OOM-kill) can
    tear at most the final line — page-cache writes survive process
    death — and every reader of these files skips an unparsable tail.
    ``fsync=True`` additionally flushes to stable storage for callers
    that must survive power loss, at real latency cost.
    """
    ensure_parent_dir(path)
    data = line.encode("utf-8")
    if not data.endswith(b"\n"):
        data += b"\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory so the final rename
    never crosses a filesystem boundary.  On any error the temp file is
    removed and the original file (if one existed) is left untouched.
    """
    ensure_parent_dir(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=".tmp-", suffix=os.path.basename(path), dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
