"""Injectable clocks for deterministic instrumentation.

Every obs component (tracer, histograms' timing helpers, the profiler)
takes a ``clock`` callable returning seconds as a float.  Production code
uses :func:`time.perf_counter`; tests inject a :class:`ManualClock` so
span durations and trace exports are exactly reproducible (no flaky
"duration > 0" assertions, goldens compare byte-for-byte).
"""

from __future__ import annotations

import time
from typing import Callable

Clock = Callable[[], float]

#: Default wall clock for spans and histogram timings.
DEFAULT_CLOCK: Clock = time.perf_counter


class ManualClock:
    """A clock that only moves when told to.

    ``tick`` is added on *every* read, which makes successive events
    strictly ordered without any explicit ``advance`` calls — convenient
    for golden-file tests where each span should get a distinct,
    deterministic timestamp.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.now = start
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("ManualClock cannot move backwards")
        self.now += seconds
