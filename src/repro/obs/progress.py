"""Live run-progress state for the analysis monitor.

A process-global :class:`ProgressTracker` receives coarse progress
signals from the pipeline — stage transitions (parse → prepare → seg →
checker), wave boundaries from the parallel scheduler, per-function
ticks — and turns them into

- a point-in-time :meth:`~ProgressTracker.snapshot` (the monitor's
  ``/status`` endpoint), and
- a bounded, sequence-numbered event log (the ``/events`` SSE stream).

Overhead discipline mirrors :mod:`repro.obs.trace`: the tracker is
**disabled by default**, and every mutating method starts with one
truth test on ``enabled`` — instrumented call sites on hot paths stay
hot when no monitor is attached (guarded by
``tests/test_performance_guards.py``).  The tracker is thread-safe; a
condition variable lets SSE streamers block until the next event.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

#: Ring-buffer size of the event log.  Old events fall off; ``/events``
#: consumers see the dropped count via the sequence-number gap.
MAX_EVENTS = 1024


class ProgressTracker:
    """Thread-safe collector of run-progress events."""

    def __init__(self, clock=time.time) -> None:
        self.enabled = False
        self.clock = clock
        self._lock = threading.Lock()
        self._event_ready = threading.Condition(self._lock)
        self._events: List[Dict[str, Any]] = []
        self._seq = 0
        self.reset()

    def reset(self) -> None:
        self.command = ""
        self.label = ""
        self.stage = "idle"
        self.stage_info: Dict[str, Any] = {}
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.exit_code: Optional[int] = None
        self.waves_done = 0
        self.waves_total = 0
        self.functions_total = 0
        self.functions_prepared = 0
        self.functions_cached = 0
        self.functions_quarantined = 0
        self.checkers_done: List[str] = []

    # ------------------------------------------------------------------
    def _emit(self, kind: str, **payload) -> None:
        """Append one event (caller must NOT hold the lock)."""
        with self._event_ready:
            self._seq += 1
            event = {"seq": self._seq, "ts": round(self.clock(), 3), "kind": kind}
            event.update(payload)
            self._events.append(event)
            if len(self._events) > MAX_EVENTS:
                del self._events[: len(self._events) - MAX_EVENTS]
            self._event_ready.notify_all()

    # ------------------------------------------------------------------
    # Producer API (pipeline, scheduler, engine, CLI)
    # ------------------------------------------------------------------
    def begin_run(self, command: str, label: str = "") -> None:
        if not self.enabled:
            return
        with self._lock:
            self.reset()
            self.command = command
            self.label = label
            self.stage = "starting"
            self.started_at = self.clock()
        self._emit("run.start", command=command, label=label)

    def set_stage(self, stage: str, **info) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.stage = stage
            self.stage_info = dict(info)
        self._emit("stage", stage=stage, **info)

    def set_functions_total(self, total: int) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.functions_total = int(total)

    def wave_progress(
        self,
        done: int,
        total: int,
        prepared: int = 0,
        cached: int = 0,
        quarantined: int = 0,
    ) -> None:
        """One scheduler wave finished (counts are per-wave increments)."""
        if not self.enabled:
            return
        with self._lock:
            self.waves_done = done
            self.waves_total = total
            self.functions_prepared += prepared
            self.functions_cached += cached
            self.functions_quarantined += quarantined
        self._emit(
            "wave",
            wave=done,
            waves=total,
            prepared=prepared,
            cached=cached,
            quarantined=quarantined,
        )

    def tick(self, prepared: int = 0, cached: int = 0, quarantined: int = 0) -> None:
        """Per-function progress from the serial pipeline (no event, so
        a 10k-function module does not flood the stream)."""
        if not self.enabled:
            return
        with self._lock:
            self.functions_prepared += prepared
            self.functions_cached += cached
            self.functions_quarantined += quarantined

    def checker_done(self, name: str, reports: int) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.checkers_done.append(name)
        self._emit("checker", checker=name, reports=reports)

    def heartbeat(self, **info) -> None:
        if not self.enabled:
            return
        self._emit("heartbeat", **info)

    def finish(self, exit_code: int) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.finished_at = self.clock()
            self.exit_code = exit_code
            self.stage = "done"
        self._emit("run.finish", exit_code=exit_code)

    # ------------------------------------------------------------------
    # Consumer API (the monitor endpoints)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The ``/status`` document.  Degradation figures come from the
        process metrics registry so a degraded (exit-3) run is visible
        live, not only after the CLI computed its exit code."""
        from repro.obs.metrics import get_registry

        with self._lock:
            now = self.clock()
            data: Dict[str, Any] = {
                "command": self.command,
                "label": self.label,
                "stage": self.stage,
                "stage_info": dict(self.stage_info),
                "running": self.started_at is not None and self.finished_at is None,
                "elapsed_seconds": round(
                    ((self.finished_at or now) - self.started_at), 3
                )
                if self.started_at is not None
                else 0.0,
                "waves": {"done": self.waves_done, "total": self.waves_total},
                "functions": {
                    "total": self.functions_total,
                    "prepared": self.functions_prepared,
                    "cached": self.functions_cached,
                    "quarantined": self.functions_quarantined,
                },
                "checkers_done": list(self.checkers_done),
                "exit_code": self.exit_code,
                "events": self._seq,
            }
        registry = get_registry()
        degradations = registry.get("robust.degradations")
        total = degradations.total() if degradations is not None else 0
        data["degraded"] = bool(total) or (
            self.exit_code is not None and self.exit_code in (3, 4)
        )
        data["degradations"] = int(total)
        return data

    def events_after(self, seq: int, limit: int = 0) -> List[Dict[str, Any]]:
        """Buffered events with sequence number > ``seq``."""
        with self._lock:
            events = [e for e in self._events if e["seq"] > seq]
        return events[:limit] if limit else events

    def wait_for_event(self, seq: int, timeout: float) -> bool:
        """Block until an event with sequence > ``seq`` exists (or the
        timeout passes); True iff one is available."""
        with self._event_ready:
            if self._seq > seq:
                return True
            self._event_ready.wait(timeout)
            return self._seq > seq


# ----------------------------------------------------------------------
# Global tracker
# ----------------------------------------------------------------------
_PROGRESS = ProgressTracker()


def get_progress() -> ProgressTracker:
    return _PROGRESS


def set_progress(tracker: ProgressTracker) -> ProgressTracker:
    """Swap the process-global tracker (fresh one per CLI run/test)."""
    global _PROGRESS
    _PROGRESS = tracker
    return tracker
