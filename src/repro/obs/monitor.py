"""Live analysis monitor: a tiny stdlib HTTP server over the obs layer.

``repro serve`` (and ``repro check --monitor-port N``) start a
:class:`MonitorServer` on a daemon thread next to the analysis.  Four
endpoints, all read-only:

``/healthz``
    Liveness probe — ``{"ok": true}`` plus the current stage.  Returns
    200 even while degraded; degradation is state, not ill health.
``/metrics``
    The process :class:`~repro.obs.metrics.MetricsRegistry` in
    Prometheus text exposition format (worker metrics appear as the
    scheduler merges them at wave boundaries).
``/status``
    JSON progress snapshot from the global
    :class:`~repro.obs.progress.ProgressTracker`: current stage,
    scheduler wave counts, functions prepared/cached/quarantined,
    degradation totals.
``/events``
    The progress event log.  Default is a Server-Sent-Events stream
    (``text/event-stream``) that follows the run live; ``?follow=0``
    dumps the buffered events as JSON lines and closes, which is what
    ``curl`` in CI wants.  ``?since=SEQ`` resumes after a known event.

The server binds ``127.0.0.1`` only — it is a local inspection hatch,
not a service — and port ``0`` picks an ephemeral port (``start()``
returns the bound port).
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs.metrics import get_registry
from repro.obs.progress import get_progress

#: Seconds an SSE stream waits for a new event before emitting a
#: keep-alive comment (also bounds shutdown latency of stream threads).
STREAM_POLL_SECONDS = 0.5


class _MonitorHandler(BaseHTTPRequestHandler):
    server_version = "repro-monitor/1"
    protocol_version = "HTTP/1.0"

    # The monitor is ancillary: never let request logging pollute the
    # analysis output on stdout/stderr.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # ------------------------------------------------------------------
    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload, status: int = 200) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, "application/json; charset=utf-8", body)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        try:
            if parsed.path == "/healthz":
                self._healthz()
            elif parsed.path == "/metrics":
                self._metrics()
            elif parsed.path == "/status":
                self._send_json(get_progress().snapshot())
            elif parsed.path == "/events":
                self._events(query)
            else:
                self._send_json({"error": "not found", "path": parsed.path}, 404)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def _healthz(self) -> None:
        snapshot = get_progress().snapshot()
        self._send_json(
            {
                "ok": True,
                # The bound port, so a scraper that found us via a
                # printed ephemeral-port line can confirm it has the
                # right process.
                "port": self.server.server_address[1],
                "stage": snapshot["stage"],
                "running": snapshot["running"],
                "degraded": snapshot["degraded"],
            }
        )

    def _metrics(self) -> None:
        text = get_registry().to_prometheus()
        self._send(200, "text/plain; version=0.0.4; charset=utf-8", text.encode("utf-8"))

    def _events(self, query) -> None:
        progress = get_progress()
        since = int(query.get("since", ["0"])[0])
        follow = query.get("follow", ["1"])[0] not in ("0", "false", "no")
        if not follow:
            events = progress.events_after(since)
            body = "".join(json.dumps(e, sort_keys=True) + "\n" for e in events)
            self._send(200, "application/x-ndjson; charset=utf-8", body.encode("utf-8"))
            return

        # SSE: stream until the run finishes or the client disconnects.
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        monitor: "MonitorServer" = self.server.monitor  # type: ignore[attr-defined]
        last = since
        while monitor.running:
            events = progress.events_after(last)
            for event in events:
                last = event["seq"]
                chunk = "event: {kind}\ndata: {data}\n\n".format(
                    kind=event["kind"], data=json.dumps(event, sort_keys=True)
                )
                self.wfile.write(chunk.encode("utf-8"))
            if events:
                self.wfile.flush()
                if events[-1]["kind"] == "run.finish":
                    break
            elif not progress.wait_for_event(last, STREAM_POLL_SECONDS):
                self.wfile.write(b": keep-alive\n\n")
                self.wfile.flush()


class MonitorServer:
    """The monitor HTTP server on a daemon thread."""

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        self.host = host
        self.port = port
        self.running = False
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and begin serving; returns the bound port."""
        httpd = ThreadingHTTPServer((self.host, self.port), _MonitorHandler)
        httpd.daemon_threads = True
        httpd.monitor = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self.running = True
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": STREAM_POLL_SECONDS},
            name="repro-monitor",
            daemon=True,
        )
        self._thread.start()
        global _ACTIVE
        _ACTIVE = self
        return self.port

    def stop(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if not self.running:
            return
        self.running = False
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MonitorServer":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


#: The monitor started by the current CLI run, if any — lets in-process
#: integration tests (and ``--linger`` teardown) find the ephemeral port.
_ACTIVE: Optional[MonitorServer] = None


def get_active_monitor() -> Optional[MonitorServer]:
    return _ACTIVE


def fetch(url: str, timeout: float = 5.0) -> Tuple[int, str]:
    """Minimal HTTP GET for tests/CLI (stdlib-only, no keep-alive).

    Returns ``(status_code, body_text)``.
    """
    parsed = urlparse(url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    path = parsed.path or "/"
    if parsed.query:
        path += "?" + parsed.query
    with socket.create_connection((host, port), timeout=timeout) as conn:
        request = f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n"
        conn.sendall(request.encode("ascii"))
        chunks = []
        while True:
            data = conn.recv(65536)
            if not data:
                break
            chunks.append(data)
    raw = b"".join(chunks).decode("utf-8", "replace")
    head, _, body = raw.partition("\r\n\r\n")
    status_line = head.splitlines()[0] if head else ""
    parts = status_line.split()
    status = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else 0
    return status, body
