"""Wall-time and peak-memory measurement (nesting-safe).

This is the home of the ``Measurement`` machinery the benchmark harness
and ``repro profile`` share; :mod:`repro.bench.metrics` re-exports it for
backward compatibility.

Peak memory is tracemalloc's high-water mark over the call — the same
"how much memory does building this graph take" question the paper's
Figs. 8-9 ask.  tracemalloc adds overhead, so time and memory
comparisons stay apples-to-apples as long as both systems are measured
this way.

Nesting: earlier versions unconditionally ``tracemalloc.start()`` /
``stop()`` and ``reset_peak()``, so a ``measure`` inside a ``measure``
stomped the outer call's tracking (the inner ``stop`` killed tracing,
the inner ``reset_peak`` erased the outer high-water mark).  Now a
module-level stack of active frames folds every observed watermark into
all enclosing measurements, and tracemalloc is only stopped by the
measurement that started it.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, List, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Measurement:
    seconds: float
    peak_bytes: int

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / (1024 * 1024)


class _Frame:
    __slots__ = ("baseline", "peak")

    def __init__(self, baseline: int) -> None:
        self.baseline = baseline
        self.peak = baseline


_active: List[_Frame] = []


def measure(thunk: Callable[[], T]) -> Tuple[T, Measurement]:
    """Run ``thunk`` measuring wall time and peak additional memory.

    Safe to nest: each level reports its own peak-over-baseline, and an
    inner call never disturbs an outer call's tracking.
    """
    gc.collect()
    owner = not tracemalloc.is_tracing()
    if owner:
        tracemalloc.start()
    # Fold the watermark reached so far into every enclosing frame,
    # because reset_peak() below erases it for them.
    current, peak = tracemalloc.get_traced_memory()
    for outer in _active:
        if peak > outer.peak:
            outer.peak = peak
    tracemalloc.reset_peak()
    frame = _Frame(baseline=current)
    _active.append(frame)
    start = time.perf_counter()
    try:
        result = thunk()
    finally:
        seconds = time.perf_counter() - start
        _, peak_now = tracemalloc.get_traced_memory()
        if peak_now > frame.peak:
            frame.peak = peak_now
        _active.pop()
        # Our peak is also a watermark the enclosing measurements lived
        # through.
        for outer in _active:
            if frame.peak > outer.peak:
                outer.peak = frame.peak
        if owner:
            tracemalloc.stop()
    return result, Measurement(seconds, max(0, frame.peak - frame.baseline))


def time_only(thunk: Callable[[], T]) -> Tuple[T, float]:
    """Run ``thunk`` measuring wall time only (no tracemalloc overhead)."""
    gc.collect()
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start
