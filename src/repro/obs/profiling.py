"""Aggregate spans + metrics into the ``repro profile`` report.

Answers the questions the paper's evaluation (Figs. 7-10) asks of any
value-flow framework: which *pass* dominates (SEG build vs. summary
search vs. SMT solving) and which *function* is hottest, with SMT-query
attribution per function.

Self-time is duration minus the duration of direct child spans (same
thread, linked by parent uid), so a pass that merely contains another
pass is not double-charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.measure import Measurement
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer


@dataclass
class PassRow:
    name: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0


@dataclass
class UnitRow:
    unit: str
    self_seconds: float = 0.0
    smt_queries: int = 0
    passes: Dict[str, float] = field(default_factory=dict)

    @property
    def hottest_pass(self) -> str:
        if not self.passes:
            return ""
        return max(self.passes.items(), key=lambda item: item[1])[0]


def self_times(spans: Sequence[Span]) -> Dict[int, float]:
    """Span uid -> duration minus direct children's durations."""
    child_time: Dict[int, float] = {}
    for span in spans:
        if span.parent is not None:
            child_time[span.parent] = child_time.get(span.parent, 0.0) + span.duration
    return {
        span.uid: max(0.0, span.duration - child_time.get(span.uid, 0.0))
        for span in spans
    }


def pass_table(spans: Sequence[Span]) -> List[PassRow]:
    """Per-pass totals, hottest (by self time) first."""
    selfs = self_times(spans)
    rows: Dict[str, PassRow] = {}
    for span in spans:
        row = rows.setdefault(span.name, PassRow(span.name))
        row.count += 1
        row.total_seconds += span.duration
        row.self_seconds += selfs[span.uid]
    return sorted(rows.values(), key=lambda r: r.self_seconds, reverse=True)


def unit_table(spans: Sequence[Span]) -> List[UnitRow]:
    """Per-unit (function/checker) self-time totals, hottest first.

    Self times are additive, so a function traced by nested passes
    (``prepare.fn`` containing ``pta.run``) is charged exactly once.
    """
    selfs = self_times(spans)
    rows: Dict[str, UnitRow] = {}
    for span in spans:
        if not span.unit:
            continue
        row = rows.setdefault(span.unit, UnitRow(span.unit))
        row.self_seconds += selfs[span.uid]
        row.passes[span.name] = row.passes.get(span.name, 0.0) + selfs[span.uid]
        queries = span.args.get("smt_queries")
        if queries:
            row.smt_queries += int(queries)
    return sorted(rows.values(), key=lambda r: r.self_seconds, reverse=True)


def profile_dict(
    tracer: Tracer,
    registry: MetricsRegistry,
    measurement: Optional[Measurement] = None,
    source_label: str = "",
    top: int = 10,
) -> dict:
    """The machine-readable twin of :func:`render_profile`.

    Same per-pass / per-function top-N content as the printed tables
    (``repro profile --json`` emits this, and history records attach it),
    with seconds kept as floats instead of formatted strings.
    """
    spans = list(tracer.spans)
    total = sum(s.duration for s in spans if s.parent is None)
    document: dict = {
        "label": source_label,
        "spans": len(spans),
        "traced_seconds": round(total, 6),
        "passes": [
            {
                "name": row.name,
                "calls": row.count,
                "total_seconds": round(row.total_seconds, 6),
                "self_seconds": round(row.self_seconds, 6),
            }
            for row in pass_table(spans)[:top]
        ],
        "functions": [
            {
                "unit": row.unit,
                "self_seconds": round(row.self_seconds, 6),
                "smt_queries": row.smt_queries,
                "hottest_pass": row.hottest_pass,
            }
            for row in unit_table(spans)[:top]
        ],
    }
    if measurement is not None:
        document["wall_seconds"] = round(measurement.seconds, 6)
        document["peak_mb"] = round(measurement.peak_mb, 3)
    smt_queries = registry.get("smt.queries")
    smt_hist = registry.get("smt.solve_seconds")
    smt: dict = {}
    if smt_queries is not None and smt_queries.total():
        smt["queries"] = int(smt_queries.total())
    if isinstance(smt_hist, Histogram) and smt_hist.total_count():
        smt["solve_seconds"] = {
            key: round(value, 6)
            for key, value in smt_hist.merged_quantiles().items()
        }
    if smt:
        document["smt"] = smt
    return document


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.2f}ms"


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def render_profile(
    tracer: Tracer,
    registry: MetricsRegistry,
    measurement: Optional[Measurement] = None,
    source_label: str = "",
    top: int = 10,
) -> str:
    """The human-readable ``repro profile`` report."""
    spans = list(tracer.spans)
    total = sum(s.duration for s in spans if s.parent is None)
    lines: List[str] = []
    title = f"repro profile — {source_label}" if source_label else "repro profile"
    lines.append(title)
    lines.append("=" * len(title))

    summary_bits = [f"{len(spans)} spans", f"{_fmt_seconds(total)} traced"]
    if measurement is not None:
        summary_bits.append(f"{measurement.seconds:.2f}s wall")
        summary_bits.append(f"{measurement.peak_mb:.1f} MB peak")
    smt_hist = registry.get("smt.solve_seconds")
    smt_queries = registry.get("smt.queries")
    if smt_queries is not None and smt_queries.total():
        summary_bits.append(f"{int(smt_queries.total())} SMT queries")
    if isinstance(smt_hist, Histogram) and smt_hist.count():
        summary_bits.append(f"SMT p95 {_fmt_seconds(smt_hist.quantile(0.95))}")
    lines.append(", ".join(summary_bits))
    lines.append("")

    lines.append(f"hottest passes (top {top}, by self time)")
    denominator = total or 1.0
    rows = [
        [
            row.name,
            str(row.count),
            _fmt_seconds(row.total_seconds),
            _fmt_seconds(row.self_seconds),
            f"{100 * row.self_seconds / denominator:.1f}%",
        ]
        for row in pass_table(spans)[:top]
    ]
    lines.append(_table(["pass", "calls", "total", "self", "%run"], rows))
    lines.append("")

    lines.append(f"hottest functions (top {top}, by self time)")
    rows = [
        [
            row.unit,
            _fmt_seconds(row.self_seconds),
            str(row.smt_queries),
            row.hottest_pass,
        ]
        for row in unit_table(spans)[:top]
    ]
    lines.append(_table(["function", "self", "smt queries", "hottest pass"], rows))
    return "\n".join(lines)
