"""Run-history telemetry store and perf-regression detection.

Every ``repro check`` / ``selfcheck`` / bench run can persist a compact,
schema-versioned **run record** — source fingerprint, config, per-stage
timings, peak memory, cache traffic, scheduler wave counts, degradation
diagnostics, a findings digest, and key histogram quantiles — into an
append-only store under ``--history-dir`` / ``$REPRO_HISTORY_DIR``:

``runs.jsonl``
    One JSON object per line, append-only; the full record.
``index.json``
    A small atomic-rewritten summary (one entry per run) so ``repro
    history list``/``trend`` never parse the whole log.

On top of the store, :func:`compute_trend` answers the question CI
actually asks: *did this run regress against its own history?*  The
baseline is the **median of the prior N runs with the same source
fingerprint and command** — medians shrug off one noisy run, and the
fingerprint guard keeps a changed benchmark from masquerading as a
slowdown.  Wall-time and memory regress only past a ratio threshold
*and* an absolute floor (a 2ms run doubling to 4ms is noise, not news);
finding counts regress on any drift from the baseline median, since
findings are deterministic.

:func:`write_bench_file` renders the same store as a repo-root
``BENCH_pinpoint.json`` trajectory for dashboards.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.export import append_line, atomic_write, ensure_parent_dir
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Bump when a record field changes meaning; readers skip newer schemas.
SCHEMA_VERSION = 1

#: Environment fallback for ``--history-dir``.
HISTORY_DIR_ENV = "REPRO_HISTORY_DIR"

RUNS_FILE = "runs.jsonl"
INDEX_FILE = "index.json"

#: Histograms summarized (p50/p95/p99) into every run record.  The
#: daemon's request-latency histogram rides along so ``repro daemon`` /
#: ``repro loadgen`` runs carry their service quantiles into history,
#: where the trend gate below can watch them.
RECORD_HISTOGRAMS = ("smt.solve_seconds", "service.request_seconds")

#: The record-quantile key the service-latency trend gate watches.
SERVICE_HISTOGRAM = "service.request_seconds"

#: Default regression thresholds (see :class:`TrendThresholds`).
DEFAULT_WALL_RATIO = 1.50
DEFAULT_MEM_RATIO = 1.50
DEFAULT_WALL_FLOOR_SECONDS = 0.05
DEFAULT_MEM_FLOOR_MB = 8.0
DEFAULT_SERVICE_P95_RATIO = 1.50
DEFAULT_SERVICE_P95_FLOOR_SECONDS = 0.010
DEFAULT_OVERHEAD_RATIO = 1.50
DEFAULT_OVERHEAD_FLOOR = 0.10
DEFAULT_BASELINE_RUNS = 5
DEFAULT_MIN_RUNS = 1


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def fingerprint_paths(paths: Sequence[str]) -> str:
    """Content hash of the analyzed sources (order-independent).

    Trend baselines are only comparable between runs over identical
    input, so the fingerprint hashes file *contents*, not paths or
    mtimes.  Unreadable files hash their path plus the error, keeping
    the fingerprint total rather than raising mid-record."""
    digests = []
    for path in paths:
        h = hashlib.sha256()
        try:
            with open(path, "rb") as handle:
                for chunk in iter(lambda: handle.read(65536), b""):
                    h.update(chunk)
        except OSError as error:
            h.update(f"{path}:{type(error).__name__}".encode("utf-8"))
        digests.append(h.hexdigest())
    outer = hashlib.sha256()
    for digest in sorted(digests):
        outer.update(digest.encode("ascii"))
    return outer.hexdigest()[:16]


def fingerprint_text(text: str) -> str:
    """Fingerprint for in-memory sources (selfcheck, tests)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def findings_digest(keys: Sequence[Sequence[Any]]) -> str:
    """Order-independent digest over report dedup keys, so two runs
    finding the same bugs match even if checker order changes."""
    h = hashlib.sha256()
    for key in sorted(str(k) for k in keys):
        h.update(key.encode("utf-8"))
    return h.hexdigest()[:16]


# ----------------------------------------------------------------------
# Record collection
# ----------------------------------------------------------------------
def _counter_total(registry: MetricsRegistry, name: str, **labels) -> float:
    metric = registry.get(name)
    if not isinstance(metric, Counter):
        return 0.0
    if labels:
        return sum(
            value
            for sample_labels, value in metric.items()
            if all(sample_labels.get(k) == v for k, v in labels.items())
        )
    return metric.total()


def _gauge_value(registry: MetricsRegistry, name: str) -> float:
    metric = registry.get(name)
    if not isinstance(metric, Gauge):
        return 0.0
    items = metric.items()
    return items[-1][1] if items else 0.0


def collect_run_record(
    registry: MetricsRegistry,
    *,
    command: str,
    label: str,
    fingerprint: str,
    config: Optional[Dict[str, Any]] = None,
    wall_seconds: float = 0.0,
    peak_mb: float = 0.0,
    exit_code: int = 0,
    findings: int = 0,
    findings_by_checker: Optional[Dict[str, int]] = None,
    digest: str = "",
    diagnostics: Optional[Sequence[Dict[str, Any]]] = None,
    profile: Optional[Dict[str, Any]] = None,
    clock=time.time,
) -> Dict[str, Any]:
    """Assemble one run record from the metrics registry plus the
    run-level figures only the CLI knows (wall time, exit code, ...)."""
    stages: Dict[str, float] = {}
    engine_seconds = registry.get("engine.seconds")
    if isinstance(engine_seconds, Counter):
        for labels, value in engine_seconds.items():
            phase = labels.get("phase", "")
            if phase:
                stages[phase] = round(stages.get(phase, 0.0) + value, 6)

    quantiles: Dict[str, Dict[str, float]] = {}
    for name in RECORD_HISTOGRAMS:
        metric = registry.get(name)
        if isinstance(metric, Histogram) and metric.total_count():
            quantiles[name] = {
                key: round(value, 6)
                for key, value in metric.merged_quantiles().items()
            }

    ts = clock()
    record: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "ts": round(ts, 3),
        "ts_iso": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts)),
        "command": command,
        "label": label,
        "fingerprint": fingerprint,
        "config": dict(config or {}),
        "exit_code": exit_code,
        "wall_seconds": round(wall_seconds, 6),
        "peak_mb": round(peak_mb, 3),
        "stages": stages,
        "cache": {
            "hits": int(_counter_total(registry, "cache.hits")),
            "misses": int(_counter_total(registry, "cache.misses")),
            "writes": int(_counter_total(registry, "cache.writes")),
        },
        "sched": {
            "jobs": int(_gauge_value(registry, "sched.jobs")),
            "waves": int(_gauge_value(registry, "sched.waves")),
            "tasks": int(_counter_total(registry, "sched.tasks")),
            # Crash-durability annotations: did this run resume from a
            # write-ahead journal, how much did the journal save, and
            # how hard did the supervision policy have to work?
            "resumed": bool(_gauge_value(registry, "sched.resumed")),
            "resume_wave": int(_gauge_value(registry, "sched.resume_wave")),
            "journal_skips": int(_counter_total(registry, "journal.skips")),
            "retries": int(_counter_total(registry, "sched.retries")),
            # Cost attribution (repro.obs.attr): the scheduler's own
            # answer to "where did the time go", regression-gated by
            # the overhead-ratio trend check below.
            "critical_path_seconds": round(
                _gauge_value(registry, "attr.critical_path_seconds"), 6
            ),
            "overhead_ratio": round(
                _gauge_value(registry, "attr.overhead_ratio"), 4
            ),
            "utilization": round(_gauge_value(registry, "attr.utilization"), 4),
            "dispatch": {
                "serialize_seconds": round(
                    _counter_total(registry, "sched.dispatch.serialize_seconds"), 6
                ),
                "serialize_bytes": int(
                    _counter_total(registry, "sched.dispatch.serialize_bytes")
                ),
                "deserialize_seconds": round(
                    _counter_total(registry, "sched.dispatch.deserialize_seconds"),
                    6,
                ),
                "result_bytes": int(
                    _counter_total(registry, "sched.dispatch.result_bytes")
                ),
                "queue_seconds": round(
                    _counter_total(registry, "sched.dispatch.queue_seconds"), 6
                ),
                "warmup_seconds": round(
                    _counter_total(registry, "sched.dispatch.warmup_seconds"), 6
                ),
            },
        },
        "robust": {
            "degradations": int(_counter_total(registry, "robust.degradations")),
            "quarantined": int(_counter_total(registry, "engine.quarantined_units")),
            "diagnostics": [dict(d) for d in (diagnostics or [])][:50],
        },
        "findings": {
            "total": int(findings),
            "by_checker": dict(findings_by_checker or {}),
            "digest": digest,
        },
        "pta": {
            # Tier from the run config (the CLI records the resolved
            # tier there); counters from the per-function analyses.
            "tier": str((config or {}).get("pta", "") or "fi"),
            "strong_updates": int(
                _counter_total(registry, "pta.strong_updates")
            ),
            "weak_updates": int(_counter_total(registry, "pta.weak_updates")),
            "escalations": int(_counter_total(registry, "pta.escalations")),
        },
        "quantiles": quantiles,
    }
    if profile:
        record["profile"] = profile
    return record


def _index_entry(run_id: str, record: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "run_id": run_id,
        "ts": record.get("ts", 0.0),
        "ts_iso": record.get("ts_iso", ""),
        "command": record.get("command", ""),
        "label": record.get("label", ""),
        "fingerprint": record.get("fingerprint", ""),
        "exit_code": record.get("exit_code", 0),
        "wall_seconds": record.get("wall_seconds", 0.0),
        "peak_mb": record.get("peak_mb", 0.0),
        "findings": record.get("findings", {}).get("total", 0),
        "degradations": record.get("robust", {}).get("degradations", 0),
    }


class HistoryStore:
    """The on-disk run-history store (one directory)."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.runs_path = os.path.join(directory, RUNS_FILE)
        self.index_path = os.path.join(directory, INDEX_FILE)

    # -- writing -------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> str:
        """Append one record; returns its assigned ``run_id``.

        The JSONL append is a single ``write(2)`` on an ``O_APPEND``
        descriptor (:func:`repro.obs.export.append_line`), which is what
        makes *concurrent* appenders safe: POSIX appends each record's
        one write at the current end of file, so parallel CI jobs or a
        daemon recording next to a one-shot run can share a history dir
        without ever interleaving bytes mid-line.  The index is
        rewritten atomically afterwards, so a crash between the two at
        worst loses the index entry — :meth:`reindex` rebuilds it."""
        index = self.index()
        run_id = f"r{len(index) + 1:05d}"
        record = dict(record)
        record["run_id"] = run_id
        ensure_parent_dir(self.runs_path)
        append_line(self.runs_path, json.dumps(record, sort_keys=True))
        index.append(_index_entry(run_id, record))
        atomic_write(
            self.index_path,
            json.dumps({"schema": SCHEMA_VERSION, "runs": index}, indent=2) + "\n",
        )
        return run_id

    def reindex(self) -> int:
        """Rebuild ``index.json`` from the JSONL log; returns run count."""
        records = self.records()
        index = [_index_entry(r.get("run_id", f"r{i + 1:05d}"), r)
                 for i, r in enumerate(records)]
        atomic_write(
            self.index_path,
            json.dumps({"schema": SCHEMA_VERSION, "runs": index}, indent=2) + "\n",
        )
        return len(index)

    # -- reading -------------------------------------------------------
    def index(self) -> List[Dict[str, Any]]:
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return []
        if not isinstance(data, dict) or data.get("schema", 0) > SCHEMA_VERSION:
            return []
        runs = data.get("runs", [])
        return runs if isinstance(runs, list) else []

    def records(self) -> List[Dict[str, Any]]:
        """Every full record, oldest first (tolerates torn final line)."""
        records: List[Dict[str, Any]] = []
        try:
            with open(self.runs_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a crashed append
                    if isinstance(record, dict) and record.get(
                        "schema", 0
                    ) <= SCHEMA_VERSION:
                        records.append(record)
        except OSError:
            return []
        return records

    def get(self, run_id: str) -> Optional[Dict[str, Any]]:
        for record in self.records():
            if record.get("run_id") == run_id:
                return record
        return None

    def latest(self) -> Optional[Dict[str, Any]]:
        records = self.records()
        return records[-1] if records else None


def resolve_history_dir(explicit: Optional[str] = None) -> Optional[str]:
    """``--history-dir`` flag, else ``$REPRO_HISTORY_DIR``, else None
    (history recording off)."""
    if explicit:
        return explicit
    return os.environ.get(HISTORY_DIR_ENV) or None


# ----------------------------------------------------------------------
# Trend / regression detection
# ----------------------------------------------------------------------
@dataclass
class TrendThresholds:
    """When is "slower than baseline" a regression?

    A metric regresses only when it exceeds baseline × ``*_ratio`` AND
    the absolute increase clears the floor — tiny runs jitter by whole
    multiples, so a pure ratio test would cry wolf constantly."""

    wall_ratio: float = DEFAULT_WALL_RATIO
    mem_ratio: float = DEFAULT_MEM_RATIO
    wall_floor_seconds: float = DEFAULT_WALL_FLOOR_SECONDS
    mem_floor_mb: float = DEFAULT_MEM_FLOOR_MB
    # Service request-latency gate (daemon / loadgen runs): the p95 of
    # ``service.request_seconds`` regresses under the same ratio+floor
    # rule as wall time.  Runs without the histogram are unaffected.
    service_p95_ratio: float = DEFAULT_SERVICE_P95_RATIO
    service_p95_floor_seconds: float = DEFAULT_SERVICE_P95_FLOOR_SECONDS
    # Dispatch-overhead gate (parallel runs): the share of wave wall
    # not explained by straggler compute (``sched.overhead_ratio``)
    # regresses when it grows past baseline × ratio and by more than
    # the absolute floor — so "parallelism got even less worth it"
    # fails CI just like a wall-time regression would.
    overhead_ratio: float = DEFAULT_OVERHEAD_RATIO
    overhead_floor: float = DEFAULT_OVERHEAD_FLOOR
    baseline_runs: int = DEFAULT_BASELINE_RUNS
    min_runs: int = DEFAULT_MIN_RUNS


@dataclass
class TrendReport:
    """Outcome of one regression check."""

    ok: bool
    reason: str
    latest: Optional[Dict[str, Any]] = None
    baseline: Dict[str, Any] = field(default_factory=dict)
    baseline_count: int = 0
    regressions: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "reason": self.reason,
            "latest_run_id": (self.latest or {}).get("run_id"),
            "baseline": self.baseline,
            "baseline_count": self.baseline_count,
            "regressions": self.regressions,
        }


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    middle = n // 2
    if n % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def compute_trend(
    records: Sequence[Dict[str, Any]],
    thresholds: Optional[TrendThresholds] = None,
) -> TrendReport:
    """Compare the latest record against the rolling baseline.

    Baseline = median of up to ``baseline_runs`` *prior* runs sharing
    the latest run's source fingerprint and command.  Fewer than
    ``min_runs`` comparable prior runs → ``ok`` (a first run has nothing
    to regress against; failing it would make every fresh checkout red).
    """
    thresholds = thresholds or TrendThresholds()
    if not records:
        return TrendReport(ok=True, reason="no runs recorded")
    latest = records[-1]
    prior = [
        r
        for r in records[:-1]
        if r.get("fingerprint") == latest.get("fingerprint")
        and r.get("command") == latest.get("command")
    ][-thresholds.baseline_runs:]
    if len(prior) < thresholds.min_runs:
        return TrendReport(
            ok=True,
            reason=(
                f"insufficient history ({len(prior)} comparable prior runs, "
                f"need {thresholds.min_runs})"
            ),
            latest=latest,
            baseline_count=len(prior),
        )

    baseline = {
        "wall_seconds": round(_median([r.get("wall_seconds", 0.0) for r in prior]), 6),
        "peak_mb": round(_median([r.get("peak_mb", 0.0) for r in prior]), 3),
        "findings": int(
            _median([r.get("findings", {}).get("total", 0) for r in prior])
        ),
    }
    regressions: List[Dict[str, Any]] = []

    wall = latest.get("wall_seconds", 0.0)
    base_wall = baseline["wall_seconds"]
    if (
        wall > base_wall * thresholds.wall_ratio
        and wall - base_wall > thresholds.wall_floor_seconds
    ):
        regressions.append(
            {
                "metric": "wall_seconds",
                "latest": wall,
                "baseline": base_wall,
                "ratio": round(wall / base_wall, 3) if base_wall else None,
                "threshold_ratio": thresholds.wall_ratio,
            }
        )

    peak = latest.get("peak_mb", 0.0)
    base_peak = baseline["peak_mb"]
    if (
        peak > base_peak * thresholds.mem_ratio
        and peak - base_peak > thresholds.mem_floor_mb
    ):
        regressions.append(
            {
                "metric": "peak_mb",
                "latest": peak,
                "baseline": base_peak,
                "ratio": round(peak / base_peak, 3) if base_peak else None,
                "threshold_ratio": thresholds.mem_ratio,
            }
        )

    def _service_p95(record: Dict[str, Any]) -> Optional[float]:
        value = (
            record.get("quantiles", {}).get(SERVICE_HISTOGRAM, {}).get("p95")
        )
        return float(value) if isinstance(value, (int, float)) else None

    latest_p95 = _service_p95(latest)
    prior_p95 = [v for v in (_service_p95(r) for r in prior) if v is not None]
    if latest_p95 is not None and prior_p95:
        base_p95 = round(_median(prior_p95), 6)
        baseline["service_p95_seconds"] = base_p95
        if (
            latest_p95 > base_p95 * thresholds.service_p95_ratio
            and latest_p95 - base_p95 > thresholds.service_p95_floor_seconds
        ):
            regressions.append(
                {
                    "metric": "service_p95_seconds",
                    "latest": latest_p95,
                    "baseline": base_p95,
                    "ratio": round(latest_p95 / base_p95, 3) if base_p95 else None,
                    "threshold_ratio": thresholds.service_p95_ratio,
                }
            )

    def _overhead(record: Dict[str, Any]) -> Optional[float]:
        sched = record.get("sched", {})
        if int(sched.get("jobs", 0) or 0) <= 1:
            return None  # serial runs have no dispatch overhead to gate
        value = sched.get("overhead_ratio")
        return float(value) if isinstance(value, (int, float)) else None

    latest_overhead = _overhead(latest)
    prior_overhead = [v for v in (_overhead(r) for r in prior) if v is not None]
    if latest_overhead is not None and prior_overhead:
        base_overhead = round(_median(prior_overhead), 4)
        baseline["overhead_ratio"] = base_overhead
        if (
            latest_overhead > base_overhead * thresholds.overhead_ratio
            and latest_overhead - base_overhead > thresholds.overhead_floor
        ):
            regressions.append(
                {
                    "metric": "overhead_ratio",
                    "latest": latest_overhead,
                    "baseline": base_overhead,
                    "ratio": round(latest_overhead / base_overhead, 3)
                    if base_overhead
                    else None,
                    "threshold_ratio": thresholds.overhead_ratio,
                }
            )

    found = latest.get("findings", {}).get("total", 0)
    if found != baseline["findings"]:
        regressions.append(
            {
                "metric": "findings",
                "latest": found,
                "baseline": baseline["findings"],
            }
        )

    if regressions:
        names = ", ".join(r["metric"] for r in regressions)
        return TrendReport(
            ok=False,
            reason=f"regression in {names} vs median of {len(prior)} prior runs",
            latest=latest,
            baseline=baseline,
            baseline_count=len(prior),
            regressions=regressions,
        )
    return TrendReport(
        ok=True,
        reason=f"within thresholds vs median of {len(prior)} prior runs",
        latest=latest,
        baseline=baseline,
        baseline_count=len(prior),
    )


# ----------------------------------------------------------------------
# Trajectory file
# ----------------------------------------------------------------------
BENCH_FILE = "BENCH_pinpoint.json"


def write_bench_file(
    path: str,
    records: Sequence[Dict[str, Any]],
    trend: Optional[TrendReport] = None,
) -> Dict[str, Any]:
    """Render the history as the ``BENCH_pinpoint.json`` trajectory —
    one point per run, newest last, plus the latest trend verdict."""
    points = [
        {
            "run_id": r.get("run_id", ""),
            "ts": r.get("ts", 0.0),
            "ts_iso": r.get("ts_iso", ""),
            "command": r.get("command", ""),
            "label": r.get("label", ""),
            "fingerprint": r.get("fingerprint", ""),
            "wall_seconds": r.get("wall_seconds", 0.0),
            "peak_mb": r.get("peak_mb", 0.0),
            "findings": r.get("findings", {}).get("total", 0),
            "exit_code": r.get("exit_code", 0),
        }
        for r in records
    ]
    document = {
        "benchmark": "pinpoint",
        "schema": SCHEMA_VERSION,
        "runs": points,
    }
    if trend is not None:
        document["trend"] = trend.as_dict()
    atomic_write(path, json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document
