"""repro.obs — the unified instrumentation layer.

One package threads observability through the whole pipeline (parser →
lowering/SSA → points-to → SEG build → summaries/engine → checkers →
SMT):

- **span tracing** (:mod:`repro.obs.trace`): ``with trace("seg.build",
  unit=fn): ...`` — hierarchical, thread-safe, near-zero overhead while
  disabled, exported as Chrome ``trace_event`` JSON (``--trace``);
- **metrics registry** (:mod:`repro.obs.metrics`): counters, gauges and
  fixed-bucket histograms incremented at their source sites and exported
  as JSON or Prometheus text (``--metrics-out``);
- **structured logging** (:mod:`repro.obs.log`): ``--log-level`` /
  ``--log-json`` over stdlib logging;
- **measurement** (:mod:`repro.obs.measure`): nesting-safe wall-time /
  peak-memory capture shared with the benchmark harness;
- **profiling** (:mod:`repro.obs.profiling`): the ``repro profile``
  per-pass / per-function report.

Everything takes an injectable clock (:mod:`repro.obs.clock`) so tests
and golden files are deterministic.  See ``docs/observability.md`` for
naming conventions and wiring recipes.
"""

from repro.obs.clock import DEFAULT_CLOCK, ManualClock
from repro.obs.log import StructuredLogger, configure as configure_logging, get_logger
from repro.obs.measure import Measurement, measure, time_only
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    SIZE_BUCKETS,
    get_registry,
    set_registry,
)
from repro.obs.profiling import pass_table, render_profile, unit_table
from repro.obs.trace import (
    Span,
    Tracer,
    enable_tracing,
    get_tracer,
    set_tracer,
    trace,
    traced,
)

__all__ = [
    "DEFAULT_CLOCK",
    "ManualClock",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "Measurement",
    "measure",
    "time_only",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "pass_table",
    "render_profile",
    "unit_table",
    "Span",
    "Tracer",
    "enable_tracing",
    "get_tracer",
    "set_tracer",
    "trace",
    "traced",
]
