"""repro.obs — the unified instrumentation layer.

One package threads observability through the whole pipeline (parser →
lowering/SSA → points-to → SEG build → summaries/engine → checkers →
SMT):

- **span tracing** (:mod:`repro.obs.trace`): ``with trace("seg.build",
  unit=fn): ...`` — hierarchical, thread-safe, near-zero overhead while
  disabled, exported as Chrome ``trace_event`` JSON (``--trace``);
- **metrics registry** (:mod:`repro.obs.metrics`): counters, gauges and
  fixed-bucket histograms incremented at their source sites and exported
  as JSON or Prometheus text (``--metrics-out``);
- **structured logging** (:mod:`repro.obs.log`): ``--log-level`` /
  ``--log-json`` over stdlib logging;
- **measurement** (:mod:`repro.obs.measure`): nesting-safe wall-time /
  peak-memory capture shared with the benchmark harness;
- **profiling** (:mod:`repro.obs.profiling`): the ``repro profile``
  per-pass / per-function report (``--json`` for the machine twin);
- **cost attribution** (:mod:`repro.obs.attr`): critical-path analysis
  over the cross-process span tree plus the compute-vs-dispatch
  overhead split behind ``repro why-slow``;
- **run history** (:mod:`repro.obs.history`): schema-versioned run
  records in an append-only store (``--history-dir`` /
  ``$REPRO_HISTORY_DIR``) with rolling-baseline regression detection
  (``repro history trend --check``);
- **live monitor** (:mod:`repro.obs.progress` +
  :mod:`repro.obs.monitor`): progress events from stage/wave boundaries
  served over HTTP (``/healthz`` ``/metrics`` ``/status`` ``/events``)
  by ``repro serve`` / ``--monitor-port``;
- **atomic exports** (:mod:`repro.obs.export`): temp-file+rename writes
  shared by every artifact above.

Everything takes an injectable clock (:mod:`repro.obs.clock`) so tests
and golden files are deterministic.  See ``docs/observability.md`` for
naming conventions and wiring recipes.
"""

from repro.obs.attr import cost_breakdown, critical_path, render_why_slow
from repro.obs.clock import DEFAULT_CLOCK, ManualClock
from repro.obs.export import atomic_write, ensure_parent_dir
from repro.obs.history import (
    HistoryStore,
    TrendReport,
    TrendThresholds,
    collect_run_record,
    compute_trend,
    write_bench_file,
)
from repro.obs.log import StructuredLogger, configure as configure_logging, get_logger
from repro.obs.measure import Measurement, measure, time_only
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    SIZE_BUCKETS,
    SUMMARY_QUANTILES,
    get_registry,
    set_registry,
)
from repro.obs.monitor import MonitorServer, get_active_monitor
from repro.obs.profiling import pass_table, profile_dict, render_profile, unit_table
from repro.obs.progress import ProgressTracker, get_progress, set_progress
from repro.obs.trace import (
    Span,
    Tracer,
    enable_tracing,
    get_tracer,
    set_tracer,
    trace,
    traced,
)

__all__ = [
    "cost_breakdown",
    "critical_path",
    "render_why_slow",
    "DEFAULT_CLOCK",
    "ManualClock",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "Measurement",
    "measure",
    "time_only",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "SUMMARY_QUANTILES",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "atomic_write",
    "ensure_parent_dir",
    "HistoryStore",
    "TrendReport",
    "TrendThresholds",
    "collect_run_record",
    "compute_trend",
    "write_bench_file",
    "MonitorServer",
    "get_active_monitor",
    "ProgressTracker",
    "get_progress",
    "set_progress",
    "pass_table",
    "profile_dict",
    "render_profile",
    "unit_table",
    "Span",
    "Tracer",
    "enable_tracing",
    "get_tracer",
    "set_tracer",
    "trace",
    "traced",
]
