"""Structured logging over stdlib :mod:`logging`.

All repro code logs through :func:`get_logger`, which returns a
:class:`StructuredLogger` accepting keyword *fields*::

    log = get_logger("pipeline")
    log.info("module prepared", functions=12, quarantined=1)

Fields ride on the stdlib record (``record.fields``), so third-party
handlers still work.  :func:`configure` installs the repro handler once:
human-readable lines by default, one-JSON-object-per-line with
``json_mode=True`` (for log shippers).  Nothing in ``src/repro`` may use
bare ``print`` for diagnostics — the CLI's *output* (reports, tables,
dot dumps) is product, everything else goes through here.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, Optional

ROOT_NAME = "repro"

LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class _JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        entry: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            entry.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            entry["exc_type"] = record.exc_info[0].__name__
        return json.dumps(entry, default=str, sort_keys=True)


class _TextFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        text = (
            f"{stamp} {record.levelname.lower():<7} "
            f"[{record.name}] {record.getMessage()}"
        )
        fields = getattr(record, "fields", None)
        if fields:
            rendered = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
            text += f" ({rendered})"
        return text


class StructuredLogger:
    """Thin wrapper turning keyword arguments into structured fields."""

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def _log(self, level: int, message: str, fields: Dict[str, Any]) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, message, extra={"fields": fields})

    def debug(self, message: str, **fields) -> None:
        self._log(logging.DEBUG, message, fields)

    def info(self, message: str, **fields) -> None:
        self._log(logging.INFO, message, fields)

    def warning(self, message: str, **fields) -> None:
        self._log(logging.WARNING, message, fields)

    def error(self, message: str, **fields) -> None:
        self._log(logging.ERROR, message, fields)

    def isEnabledFor(self, level: int) -> bool:  # noqa: N802 (stdlib name)
        return self._logger.isEnabledFor(level)


def get_logger(name: str = "") -> StructuredLogger:
    """Logger under the ``repro`` hierarchy (``get_logger("smt")`` ->
    ``repro.smt``)."""
    full = f"{ROOT_NAME}.{name}" if name else ROOT_NAME
    return StructuredLogger(logging.getLogger(full))


def configure(
    level: str = "warning",
    json_mode: bool = False,
    stream=None,
) -> logging.Logger:
    """Install (or reconfigure) the repro log handler.

    Idempotent: repeated calls replace the previous repro handler rather
    than stacking duplicates.  Returns the configured root logger.
    """
    if level not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r} (choose from {sorted(LEVELS)})"
        )
    root = logging.getLogger(ROOT_NAME)
    root.setLevel(LEVELS[level])
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, "_repro_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(_JsonFormatter() if json_mode else _TextFormatter())
    root.addHandler(handler)
    return root
