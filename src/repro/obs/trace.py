"""Hierarchical span tracing with Chrome ``trace_event`` export.

A *span* is one timed region of the pipeline — ``parse``, ``seg.build``
for one function, one SMT query.  Spans nest: a per-thread stack links
each span to its parent, so the profiler can compute self-time and the
Chrome trace viewer (``chrome://tracing`` / Perfetto) renders the flame
graph directly.

Usage::

    from repro.obs import trace

    with trace("seg.build", unit=function.name):
        ...                       # timed region

    with trace("smt.check") as span:
        answer = solve(term)
        span.set(result=answer.value)   # attach attributes at exit

    @traced("pipeline.prepare")
    def prepare(...): ...               # decorator form

Overhead discipline: tracing is **disabled by default**.  When disabled,
``trace(...)`` returns a shared no-op handle — the cost is one attribute
load and one truth test, so instrumented hot paths stay hot.  The
collector is thread-safe (one lock around id allocation and the append;
the clock is read outside the lock).
"""

from __future__ import annotations

import functools
import json
import threading
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.clock import DEFAULT_CLOCK, Clock


@dataclass
class Span:
    """One completed timed region."""

    uid: int  # allocated at span entry; parents have smaller uids
    name: str  # dotted pass name, e.g. "seg.build"
    start: float  # seconds, tracer-clock origin
    duration: float
    unit: str = ""  # function/checker the span is about, if any
    thread_id: int = 0
    parent: Optional[int] = None  # uid of the enclosing span, same thread
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()

    uid: Optional[int] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager recording one span into a tracer."""

    __slots__ = ("_tracer", "name", "unit", "args", "_start", "_parent", "_uid")

    def __init__(self, tracer: "Tracer", name: str, unit: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.unit = unit
        self.args = args

    def set(self, **args) -> None:
        """Attach attributes to the span (visible in export/profile)."""
        self.args.update(args)

    @property
    def uid(self) -> Optional[int]:
        """This span's uid, once entered (``None`` before ``__enter__``).

        Exposed so dispatch code can hand the uid across a process
        boundary as the ``parent_span_id`` of a trace context.
        """
        return getattr(self, "_uid", None)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent = stack[-1] if stack else None
        self._uid = tracer._next_uid()
        stack.append(self._uid)
        self._start = tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer.clock()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] == self._uid:
            stack.pop()
        self._tracer._record(
            Span(
                uid=self._uid,
                name=self.name,
                start=self._start,
                duration=end - self._start,
                unit=self.unit,
                thread_id=threading.get_ident(),
                parent=self._parent,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Thread-safe in-process span collector.

    Spans land in :attr:`spans` in *completion* order (inner spans close
    before the pass that contains them); sort by ``start`` or follow
    ``parent`` uids to recover the hierarchy.
    """

    def __init__(
        self,
        clock: Clock = DEFAULT_CLOCK,
        enabled: bool = False,
        trace_id: str = "",
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._uid = 0
        self._trace_id = trace_id

    @property
    def trace_id(self) -> str:
        """Stable id naming this run's trace, allocated on first use.

        Propagated to workers and daemon jobs so all spans of one run —
        across processes — share a single trace identity.
        """
        if not self._trace_id:
            self._trace_id = uuid.uuid4().hex[:16]
        return self._trace_id

    # ------------------------------------------------------------------
    def span(self, name: str, unit: str = "", **args):
        """Start a span (context manager); no-op while disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name, unit, args)

    def clear(self) -> None:
        with self._lock:
            self.spans = []

    def absorb(self, spans: List[Span], parent: Optional[int] = None) -> None:
        """Adopt spans recorded by another tracer (a worker process).

        Uids are remapped onto this tracer's sequence — preserving
        parent links within the absorbed batch — so absorbed spans can
        never collide with locally recorded ones.  Batch *roots* (spans
        whose parent is unset or not part of the batch) re-parent under
        ``parent`` — the local uid of the span that dispatched the
        remote work — so a worker's task span nests under the wave that
        submitted it instead of floating free.  Start offsets are kept
        as-is: worker clocks share the parent's origin under ``fork``,
        and Chrome trace rendering tolerates small skews.
        """
        if not spans:
            return
        with self._lock:
            remap: Dict[int, int] = {}
            for span in spans:
                self._uid += 1
                remap[span.uid] = self._uid
            for span in spans:
                adopted = remap.get(span.parent) if span.parent else None
                if adopted is None:
                    adopted = parent
                self.spans.append(
                    Span(
                        uid=remap[span.uid],
                        name=span.name,
                        start=span.start,
                        duration=span.duration,
                        unit=span.unit,
                        thread_id=span.thread_id,
                        parent=adopted,
                        args=dict(span.args),
                    )
                )

    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_uid(self) -> int:
        with self._lock:
            self._uid += 1
            return self._uid

    def _record(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    # ------------------------------------------------------------------
    def to_chrome_trace(self, process_name: str = "repro") -> Dict[str, Any]:
        """Render collected spans as a Chrome ``trace_event`` object.

        Complete ("X") events with microsecond timestamps, one row per
        thread, loadable in ``chrome://tracing`` and Perfetto.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        with self._lock:
            spans = sorted(self.spans, key=lambda s: (s.start, s.uid))
        for span in spans:
            args: Dict[str, Any] = dict(span.args)
            if span.unit:
                args["unit"] = span.unit
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": 1,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(self, process_name: str = "repro", indent: int = 2) -> str:
        return json.dumps(self.to_chrome_trace(process_name), indent=indent)

    def write_chrome_trace(self, path: str, process_name: str = "repro") -> None:
        """Atomic export (temp file + rename, parent dirs created), so a
        viewer reloading the path never sees a half-written JSON."""
        from repro.obs.export import atomic_write

        atomic_write(path, self.to_chrome_json(process_name))

    def summary(self) -> Dict[str, Any]:
        """Small machine-readable digest (for JSON/SARIF payloads)."""
        with self._lock:
            spans = list(self.spans)
        by_name: Dict[str, Dict[str, float]] = {}
        for span in spans:
            entry = by_name.setdefault(span.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += span.duration
        return {
            "spans": len(spans),
            "passes": {
                name: {"count": int(entry["count"]), "seconds": round(entry["seconds"], 6)}
                for name, entry in sorted(by_name.items())
            },
        }


# ----------------------------------------------------------------------
# Global tracer
# ----------------------------------------------------------------------
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer (tests; CLI with injected clock)."""
    global _TRACER
    _TRACER = tracer
    return tracer


def enable_tracing(enabled: bool = True) -> Tracer:
    _TRACER.enabled = enabled
    return _TRACER


def trace(name: str, unit: str = "", **args):
    """Start a span on the global tracer; shared no-op when disabled."""
    tracer = _TRACER
    if not tracer.enabled:
        return NULL_SPAN
    return _SpanHandle(tracer, name, unit, args)


def traced(name: str, unit: str = ""):
    """Decorator form of :func:`trace`.

    Enablement is checked per call, so decorating a function costs
    nothing until tracing is switched on.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*fargs, **fkwargs):
            with trace(name, unit=unit):
                return fn(*fargs, **fkwargs)

        return wrapper

    return decorate
