"""Metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per process (swap it per run/test with
:func:`set_registry`).  Instruments register themselves by dotted name —
``smt.queries``, ``seg.nodes``, ``robust.degradations`` — and are
incremented at the *source site* (the SMT solver counts its own queries,
the SEG builder its own nodes), so every consumer (``--stats``, the JSON
payload, SARIF invocation properties, Prometheus scrape files, the
profiler) reads the same numbers instead of keeping private copies.

Exports:

- :meth:`MetricsRegistry.as_dict` — JSON-friendly nested dict;
- :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP``/``# TYPE`` + samples, label values escaped per the
  spec: ``\\``, ``"`` and newlines).

Histograms use *fixed* upper-bound buckets chosen at registration
(cumulative, ``le``-inclusive like Prometheus), so exposition is cheap
and deterministic; quantiles are estimated by linear interpolation
within the winning bucket.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

LabelSet = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds): micro to tens-of-seconds, log-ish.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default size buckets (counts of things: nodes, facts, ...).
SIZE_BUCKETS = (1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000)

#: The quantiles run records and ``--stats`` summarize histograms at.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def _quantile_key(q: float) -> str:
    """0.5 -> 'p50', 0.95 -> 'p95', 0.99 -> 'p99'."""
    return "p" + format(q * 100, "g")


def _labelset(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def sanitize_metric_name(name: str) -> str:
    """Dotted internal name -> Prometheus-legal name (``smt.queries`` ->
    ``smt_queries``)."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch in "_:") else "_")
    text = "".join(out)
    if not text or not (text[0].isalpha() or text[0] in "_:"):
        text = "_" + text
    return text


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _render_labels(labels: LabelSet, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + body + "}"


class Metric:
    """Base: a named family of samples keyed by label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    # Subclasses: samples() -> iterable of (suffix, labelset, extra, value)
    def samples(self) -> Iterable[Tuple[str, LabelSet, Sequence[Tuple[str, str]], float]]:
        raise NotImplementedError

    def as_dict(self) -> dict:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count (events, items produced)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelSet, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_labelset(labels), 0)

    def total(self) -> float:
        return sum(self._values.values())

    def items(self) -> List[Tuple[Dict[str, str], float]]:
        """``(labels, value)`` pairs, sorted by label set."""
        return [
            (dict(labels), value) for labels, value in sorted(self._values.items())
        ]

    def samples(self):
        for labels, value in sorted(self._values.items()):
            yield "", labels, (), value

    def as_dict(self) -> dict:
        if list(self._values) == [()]:
            return {"type": self.kind, "value": self._values[()]}
        return {
            "type": self.kind,
            "values": [
                {"labels": dict(labels), "value": value}
                for labels, value in sorted(self._values.items())
            ],
        }


class Gauge(Metric):
    """A value that goes up and down (current sizes, last-run figures)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelSet, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_labelset(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(_labelset(labels), 0)

    def items(self) -> List[Tuple[Dict[str, str], float]]:
        """``(labels, value)`` pairs, sorted by label set."""
        return [
            (dict(labels), value) for labels, value in sorted(self._values.items())
        ]

    def samples(self):
        for labels, value in sorted(self._values.items()):
            yield "", labels, (), value

    def as_dict(self) -> dict:
        if list(self._values) == [()]:
            return {"type": self.kind, "value": self._values[()]}
        return {
            "type": self.kind,
            "values": [
                {"labels": dict(labels), "value": value}
                for labels, value in sorted(self._values.items())
            ],
        }


class _HistogramState:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets  # non-cumulative, per bucket
        self.count = 0
        self.sum = 0.0


class Histogram(Metric):
    """Fixed-bucket distribution (latencies, sizes).

    ``buckets`` are finite upper bounds, strictly increasing; an implicit
    ``+Inf`` bucket catches the rest.  An observation equal to a bound
    lands in that bound's bucket (``le`` semantics).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} buckets must strictly increase")
        if any(math.isinf(b) for b in bounds):
            raise ValueError(f"histogram {name}: +Inf bucket is implicit")
        self.buckets = bounds
        self._states: Dict[LabelSet, _HistogramState] = {}

    def _state(self, labels: Dict[str, str]) -> _HistogramState:
        key = _labelset(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.buckets) + 1)
        return state

    def observe(self, value: float, **labels) -> None:
        state = self._state(labels)
        state.count += 1
        state.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state.bucket_counts[index] += 1
                return
        state.bucket_counts[-1] += 1

    def count(self, **labels) -> int:
        state = self._states.get(_labelset(labels))
        return state.count if state else 0

    def sum(self, **labels) -> float:
        state = self._states.get(_labelset(labels))
        return state.sum if state else 0.0

    def quantile(self, q: float, **labels) -> float:
        """Estimated q-quantile (0..1) by interpolating in the winning
        bucket; the +Inf bucket reports the last finite bound."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        state = self._states.get(_labelset(labels))
        if state is None:
            return 0.0
        return self._quantile_of(state, q)

    def _quantile_of(self, state: "_HistogramState", q: float) -> float:
        if state.count == 0:
            return 0.0
        rank = q * state.count
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.buckets):
            in_bucket = state.bucket_counts[index]
            if cumulative + in_bucket >= rank and in_bucket > 0:
                fraction = (rank - cumulative) / in_bucket
                return lower + (bound - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += in_bucket
            lower = bound
        return self.buckets[-1]

    def quantiles(
        self, qs: Sequence[float] = SUMMARY_QUANTILES, **labels
    ) -> Dict[str, float]:
        """p50/p95/p99-style summary of one label set: ``{"p50": ...,
        "p95": ..., "p99": ...}`` (keys derived from ``qs``)."""
        return {
            _quantile_key(q): self.quantile(q, **labels) for q in qs
        }

    def merged_quantiles(
        self, qs: Sequence[float] = SUMMARY_QUANTILES
    ) -> Dict[str, float]:
        """Summary quantiles over *all* label sets folded together —
        what a run record wants from a labeled latency histogram."""
        merged = _HistogramState(len(self.buckets) + 1)
        for state in self._states.values():
            merged.count += state.count
            merged.sum += state.sum
            for index, count in enumerate(state.bucket_counts):
                merged.bucket_counts[index] += count
        return {_quantile_key(q): self._quantile_of(merged, q) for q in qs}

    def total_count(self) -> int:
        """Observations across every label set."""
        return sum(state.count for state in self._states.values())

    def samples(self):
        for labels, state in sorted(self._states.items()):
            cumulative = 0
            for index, bound in enumerate(self.buckets):
                cumulative += state.bucket_counts[index]
                yield "_bucket", labels, (("le", _format_value(bound)),), cumulative
            yield "_bucket", labels, (("le", "+Inf"),), state.count
            yield "_sum", labels, (), state.sum
            yield "_count", labels, (), state.count

    def as_dict(self) -> dict:
        def one(state: _HistogramState) -> dict:
            return {
                "count": state.count,
                "sum": state.sum,
                "buckets": [
                    {"le": bound, "count": count}
                    for bound, count in zip(
                        list(self.buckets) + [math.inf], state.bucket_counts
                    )
                ],
            }

        if list(self._states) == [()]:
            return {"type": self.kind, **one(self._states[()])}
        return {
            "type": self.kind,
            "values": [
                {"labels": dict(labels), **one(state)}
                for labels, state in sorted(self._states.items())
            ],
        }


class MetricsRegistry:
    """Holds every metric of a run; the single source for all exports."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def _register(self, name: str, factory, kind) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(name, lambda: Gauge(name, help), Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, help, buckets), Histogram
        )

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's samples into this one.

        This is how worker processes report: each task runs under a
        fresh registry, ships it back pickled, and the parent merges —
        counters add per label set, gauges take the incoming value
        (last-writer-wins), histograms add bucket counts (the bucket
        bounds must match or the merge raises).  Returns ``self`` so
        merges chain.
        """
        for name in sorted(other._metrics):
            incoming = other._metrics[name]
            if isinstance(incoming, Counter):
                mine = self.counter(name, incoming.help)
                for labels, value in incoming._values.items():
                    mine._values[labels] = mine._values.get(labels, 0) + value
            elif isinstance(incoming, Gauge):
                mine = self.gauge(name, incoming.help)
                for labels, value in incoming._values.items():
                    mine._values[labels] = value
            elif isinstance(incoming, Histogram):
                mine = self.histogram(name, incoming.help, incoming.buckets)
                if mine.buckets != incoming.buckets:
                    raise ValueError(
                        f"histogram {name!r}: bucket bounds differ, cannot merge"
                    )
                for labels, state in incoming._states.items():
                    target = mine._state(dict(labels))
                    target.count += state.count
                    target.sum += state.sum
                    for index, count in enumerate(state.bucket_counts):
                        target.bucket_counts[index] += count
            else:  # pragma: no cover - no other metric kinds exist
                raise ValueError(f"metric {name!r}: unknown kind {incoming.kind}")
        return self

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            name: metric.as_dict()
            for name, metric in sorted(self._metrics.items())
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format, one family per metric."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            prom = f"{self.namespace}_{sanitize_metric_name(name)}"
            if isinstance(metric, Counter):
                prom += "_total"
            if metric.help:
                lines.append(f"# HELP {prom} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {prom} {metric.kind}")
            for suffix, labels, extra, value in metric.samples():
                lines.append(
                    f"{prom}{suffix}{_render_labels(labels, extra)} "
                    f"{_format_value(float(value))}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> None:
        """Write metrics to ``path``: JSON when it ends in ``.json``,
        Prometheus text format otherwise.

        The write is atomic (temp file + rename, parent directories
        created on demand), so a scraper polling the path never reads a
        torn file."""
        import json

        from repro.obs.export import atomic_write

        if path.endswith(".json"):
            atomic_write(path, json.dumps(self.as_dict(), indent=2) + "\n")
        else:
            atomic_write(path, self.to_prometheus())


# ----------------------------------------------------------------------
# Global registry
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry (fresh one per CLI run/test)."""
    global _REGISTRY
    _REGISTRY = registry
    return registry
