"""Mod/Ref analysis and the connector transformation (paper §3.1.2).

The connector model exposes a function's side effects on non-local memory
through its interface: Aux formal parameters carry the incoming values of
referenced locations ``*(p, k)``, Aux return values carry the outgoing
values of modified ones (Definition 3.1, Fig. 3).  Call sites are
transformed to feed and collect these connectors.
"""

from repro.transform.modref import ModRefSummary, compute_modref
from repro.transform.connectors import (
    ConnectorSignature,
    transform_function_interface,
    transform_call_sites,
)

__all__ = [
    "ConnectorSignature",
    "ModRefSummary",
    "compute_modref",
    "transform_call_sites",
    "transform_function_interface",
]
