"""The connector transformation (paper Fig. 3).

Two semantics-preserving rewrites on the *pre-SSA* CFG:

- :func:`transform_function_interface` (Fig. 3(a)): for each referenced
  location ``*(p, k)`` insert ``*(p, k) <- F$p$k`` at the entry and add
  ``F$p$k`` as an Aux formal parameter; for each modified location insert
  ``R$p$k <- *(p, k)`` before the return and add ``R$p$k`` as an Aux
  return value.

- :func:`transform_call_sites` (Fig. 3(b)): at every call to a
  transformed callee, load the actual values ``A <- *(u_j, k)`` of the
  callee's Aux formal parameters and pass them as extra arguments;
  receive the callee's Aux return values into fresh receivers ``C`` and
  store them back, ``*(u_q, r) <- C``.

The functions named here (``F``/``A``/``C``/``R``) are the connectors of
Fig. 2: ``K``/``L`` at the call site, ``X``/``Y`` in the callee.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ir import cfg
from repro.pta.memory import aux_param_name, aux_return_name
from repro.transform.modref import ModRefSummary

_CONNECTOR_ID = itertools.count(1)


@dataclass
class ConnectorSignature:
    """A transformed function's extended interface, as callers see it.

    ``params`` are the original formal parameter base names in order;
    ``aux_params``/``aux_returns`` are ``(param, depth)`` pairs in the
    interface order used both by the callee and by call sites.
    """

    function: str
    params: List[str] = field(default_factory=list)
    aux_params: List[Tuple[str, int]] = field(default_factory=list)
    aux_returns: List[Tuple[str, int]] = field(default_factory=list)


def transform_function_interface(
    function: cfg.Function, summary: ModRefSummary
) -> ConnectorSignature:
    """Apply Fig. 3(a) to ``function`` (pre-SSA, in place)."""
    if function.is_ssa:
        raise ValueError("interface transformation must run before SSA")
    signature = ConnectorSignature(function.name, list(function.params))
    signature.aux_params = summary.ordered_ref()
    signature.aux_returns = summary.ordered_mod()

    # Entry stores.  The (param, depth) interface order also ascends in
    # depth within each parameter, so deeper locations resolve through the
    # already-stored shallower values.
    entry = function.blocks[function.entry]
    stores: List[cfg.Instr] = []
    for param, depth in signature.aux_params:
        name = aux_param_name(param, depth)
        function.aux_params.append(name)
        store = cfg.Store(cfg.Var(param), depth, cfg.Var(name))
        store.block = entry.label
        store.synthetic = True
        stores.append(store)
    entry.instrs[:0] = stores

    # Exit loads before each return (lowering guarantees exactly one).
    for block in function.blocks.values():
        terminator = block.terminator
        if not isinstance(terminator, cfg.Ret):
            continue
        for param, depth in signature.aux_returns:
            name = aux_return_name(param, depth)
            load = cfg.Load(name, cfg.Var(param), depth)
            load.block = block.label
            load.synthetic = True
            block.instrs.append(load)
            terminator.extra_values.append(cfg.Var(name))
    function.aux_returns = [
        aux_return_name(p, k) for p, k in signature.aux_returns
    ]
    return signature


def transform_call_sites(
    function: cfg.Function, signatures: Dict[str, ConnectorSignature]
) -> None:
    """Apply Fig. 3(b) to every call in ``function`` (pre-SSA, in place)."""
    if function.is_ssa:
        raise ValueError("call-site transformation must run before SSA")
    for block in function.blocks.values():
        new_instrs: List[cfg.Instr] = []
        for instr in block.instrs:
            if not isinstance(instr, cfg.Call) or instr.callee not in signatures:
                new_instrs.append(instr)
                continue
            signature = signatures[instr.callee]
            if not signature.aux_params and not signature.aux_returns:
                new_instrs.append(instr)
                continue
            param_index = {name: i for i, name in enumerate(signature.params)}
            site = next(_CONNECTOR_ID)

            # A_i <- *(u_j, k): actual values for the callee's aux params.
            for param, depth in signature.aux_params:
                actual = _actual_for(instr, param_index, param)
                arg_name = f"A${site}${param}${depth}"
                if isinstance(actual, cfg.Var):
                    load = cfg.Load(arg_name, actual, depth, line=instr.line)
                    load.block = block.label
                    load.synthetic = True
                    new_instrs.append(load)
                    instr.args.append(cfg.Var(arg_name))
                else:
                    # Constant (e.g. null) actual: nothing to load; pass
                    # an undefined placeholder value.
                    instr.args.append(cfg.Const(0))
            new_instrs.append(instr)

            # {u0, C1, ...} <- call; *(u_q, r) <- C_p.
            for param, depth in signature.aux_returns:
                receiver = f"C${site}${param}${depth}"
                instr.extra_receivers.append(receiver)
                actual = _actual_for(instr, param_index, param)
                if isinstance(actual, cfg.Var):
                    store = cfg.Store(actual, depth, cfg.Var(receiver), line=instr.line)
                    store.block = block.label
                    store.synthetic = True
                    new_instrs.append(store)
        block.instrs = new_instrs


def _actual_for(call: cfg.Call, param_index: Dict[str, int], param: str) -> cfg.Operand:
    index = param_index.get(param)
    if index is None or index >= len(call.args):
        return cfg.Const(0)
    return call.args[index]
