"""Mod/Ref analysis: which non-local locations a function reads/writes.

This is the first box of the paper's architecture (Fig. 6).  It runs the
local points-to analysis on a throwaway SSA copy of the function (with
call sites already connector-transformed, so callee side effects appear
as explicit loads/stores) and collects:

- ``ref``: locations ``*(p, k)`` whose *incoming* value may be read —
  each needs an Aux formal parameter;
- ``mod``: locations that may be written — each needs an Aux return
  value.

Two closure rules keep the connector insertion well-formed:

1. A modified location whose initial value may survive to the return
   (not strongly updated on every path) is also ``ref``: the surviving
   value must flow in through an Aux formal parameter to flow back out
   through the Aux return value (the ``X``/``Y`` pair of Fig. 2's bar).
2. Accessing ``*(p, k)`` requires resolving ``*(p, j)`` for every
   ``j < k``, so ``ref``/``mod`` at depth ``k`` imply ``ref`` at all
   shallower depths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from repro.ir import cfg
from repro.ir.ssa import base_name
from repro.pta.intraproc import PointsToAnalysis
from repro.pta.memory import AuxObject, aux_param_name
from repro.smt.linear_solver import LinearSolver


@dataclass
class ModRefSummary:
    function: str
    ref: Set[Tuple[str, int]] = field(default_factory=set)
    mod: Set[Tuple[str, int]] = field(default_factory=set)

    def ordered_ref(self):
        """Deterministic interface order: by parameter name, then depth."""
        return sorted(self.ref)

    def ordered_mod(self):
        return sorted(self.mod)

    def is_pure(self) -> bool:
        return not self.ref and not self.mod


def compute_modref(
    ssa_function: cfg.Function, linear: Optional[LinearSolver] = None
) -> ModRefSummary:
    """Compute the Mod/Ref summary from a (throwaway) SSA function whose
    call sites have already been connector-transformed."""
    analysis = PointsToAnalysis(ssa_function, linear=linear)
    result = analysis.run()
    ref = set(result.ref)
    mod = set(result.mod)

    # Rule 1: initial value survival.  Inspect the heap at the return
    # block: a modified aux location whose content may still be the
    # phantom initial value (or that has no entry at all there) needs the
    # incoming value, hence ref.
    ret_blocks = [
        block
        for block in ssa_function.blocks.values()
        if isinstance(block.terminator, cfg.Ret)
    ]
    exit_heap = {}
    if ret_blocks:
        exit_heap = analysis.heap_out.get(ret_blocks[0].label, {})
    for param, depth in mod:
        obj = AuxObject(ssa_function.name, param, depth)
        entries = exit_heap.get(obj)
        phantom = cfg.Var(aux_param_name(param, depth))
        if not entries or any(value == phantom for value, _ in entries):
            ref.add((param, depth))

    # Rule 2: downward depth closure.
    for param, depth in list(ref) + list(mod):
        for shallower in range(1, depth):
            ref.add((param, shallower))

    # Only parameters of this function can carry connectors.
    param_bases = {base_name(p) for p in ssa_function.params}
    ref = {(p, k) for p, k in ref if p in param_bases}
    mod = {(p, k) for p, k in mod if p in param_bases}
    return ModRefSummary(ssa_function.name, ref, mod)
