"""repro — a reproduction of Pinpoint (PLDI 2018).

Pinpoint: Fast and Precise Sparse Value Flow Analysis for Million Lines
of Code, by Qingkai Shi, Xiao Xiao, Rongxin Wu, Jinguo Zhou, Gang Fan and
Charles Zhang.

Quickstart::

    from repro import Pinpoint, UseAfterFreeChecker

    SOURCE = '''
    fn main() {
        p = malloc();
        free(p);
        x = *p;        // use after free
        return x;
    }
    '''

    engine = Pinpoint.from_source(SOURCE)
    result = engine.check(UseAfterFreeChecker())
    for report in result:
        print(report)
"""

import sys as _sys

# The DD/CD condition builders and term constructors recurse along
# def-use chains; a function with a few hundred straight-line statements
# exceeds CPython's default limit of 1000 frames.  Raise it once here
# (never lower it) — 30k frames covers multi-thousand-statement chains
# while staying far from C-stack exhaustion on default thread stacks.
if _sys.getrecursionlimit() < 30000:
    _sys.setrecursionlimit(30000)

from repro.core.incremental import IncrementalAnalyzer
from repro.core.query import ValueFlowQuery
from repro.core import (
    BugReport,
    CheckResult,
    EngineConfig,
    EngineStats,
    Location,
    Pinpoint,
    prepare_source,
)
from repro.core.checkers import (
    Checker,
    DataTransmissionChecker,
    DoubleFreeChecker,
    MemoryLeakChecker,
    NullDereferenceChecker,
    PathTraversalChecker,
    ResourceLeakChecker,
    TaintChecker,
    UseAfterFreeChecker,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    enable_tracing,
    get_registry,
    get_tracer,
    trace,
    traced,
)
from repro.robust import Diagnostic, DiagnosticLog, ResourceBudget

__version__ = "1.0.0"

__all__ = [
    "BugReport",
    "CheckResult",
    "Checker",
    "DataTransmissionChecker",
    "Diagnostic",
    "DiagnosticLog",
    "DoubleFreeChecker",
    "EngineConfig",
    "EngineStats",
    "MetricsRegistry",
    "ResourceBudget",
    "IncrementalAnalyzer",
    "Location",
    "MemoryLeakChecker",
    "NullDereferenceChecker",
    "PathTraversalChecker",
    "Pinpoint",
    "ResourceLeakChecker",
    "TaintChecker",
    "Tracer",
    "UseAfterFreeChecker",
    "ValueFlowQuery",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "prepare_source",
    "trace",
    "traced",
    "__version__",
]
