"""Synthetic workload generation.

The paper evaluates on real C/C++ codebases (SPEC INT 2000 plus eighteen
open-source systems up to 8 MLoC) and on the Juliet Test Suite.  Neither
is analyzable from pure Python offline, so this package generates
programs in the analyzed language that reproduce the *structural*
features driving the paper's results:

- :mod:`repro.synth.generator` — parameterized program generator (size,
  call depth, pointer density) with seeded true bugs and false-positive
  traps, and ground truth for precision/recall measurement;
- :mod:`repro.synth.projects` — the catalog of the paper's 30 subjects
  (name, KLoC) and a scaled-down synthesizer per subject;
- :mod:`repro.synth.juliet` — a Juliet-like suite: 51 structural flaw
  variants of use-after-free/double-free with ground truth;
- :mod:`repro.synth.precision` — a hand-audited corpus measuring the
  false-positive delta between the ``fi`` and ``fs`` points-to tiers.
"""

from repro.synth.generator import GeneratorConfig, GroundTruth, SyntheticProgram, generate_program
from repro.synth.projects import PAPER_SUBJECTS, Subject, synthesize_subject
from repro.synth.juliet import JulietCase, generate_juliet_suite
from repro.synth.precision import PrecisionCase, generate_precision_suite

__all__ = [
    "GeneratorConfig",
    "GroundTruth",
    "JulietCase",
    "PAPER_SUBJECTS",
    "PrecisionCase",
    "Subject",
    "SyntheticProgram",
    "generate_juliet_suite",
    "generate_precision_suite",
    "generate_program",
    "synthesize_subject",
]
