"""A curated precision corpus with per-case ground truth (paper §5.2).

The paper's central precision claim is that sparse flow-sensitive
points-to with strong updates removes false positives that the cheap
flow-insensitive tier reports, without losing any true positive.  This
module provides a small, hand-audited suite for measuring exactly that
delta between ``--pta=fi`` and ``--pta=fs``:

- ``fs_removes=True`` cases are false positives under ``fi``: a kill
  store through a maybe-null (or copied, or nested-branch) pointer
  overwrites the stale freed value before the use, but the
  flow-insensitive tier cannot apply the strong update and reports a
  use-after-free anyway.  The flow-sensitive tier proves the store's
  pointer must-aliases a singleton object and kills the stale value.
- ``is_bug=True`` cases are genuine defects that must be reported under
  *both* tiers (zero true-positive loss is a hard gate).
- ``fp_loop_alloc_kept`` is a false positive that ``fs`` deliberately
  keeps: the would-be-killed cell is allocated on a CFG cycle, so the
  singleton must-alias proof is refused (one abstract object stands for
  many concrete ones) and the weak update soundly preserves the stale
  value.

Every case is a single self-contained function whose name equals the
case name, so reports attribute cleanly via source/sink function names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set


@dataclass(frozen=True)
class PrecisionCase:
    name: str
    source: str
    is_bug: bool  # ground truth: a concrete execution trips the defect
    fs_removes: bool  # the fs tier is expected to suppress the fi report
    description: str


def _case(name: str, body: List[str], *, is_bug: bool, fs_removes: bool,
          description: str) -> PrecisionCase:
    lines = [f"fn {name}(c) {{"] + [f"    {line}" for line in body] + ["}"]
    return PrecisionCase(
        name=name,
        source="\n".join(lines) + "\n",
        is_bug=is_bug,
        fs_removes=fs_removes,
        description=description,
    )


# The canonical kill shape: ``*s`` holds a freed object, a maybe-null
# pointer that must-aliases ``s`` overwrites it, then ``*s`` is read.
# fi cannot strong-update through the phi(s, null) pointer and reports
# the stale freed value; fs proves the singleton must-alias and kills it.
_KILL_PREFIX = [
    "s = malloc();",
    "t = malloc();",
    "*s = t;",
    "free(t);",
]
_KILL_SUFFIX = [
    "u = malloc();",
    "*p = u;",
    "q = *s;",
    "r = *q;",
    "return r;",
]


def generate_precision_suite() -> List[PrecisionCase]:
    """The curated corpus, in a fixed deterministic order."""
    cases: List[PrecisionCase] = []

    # ---- false positives that fs removes -----------------------------
    cases.append(_case(
        "fp_null_branch",
        _KILL_PREFIX
        + ["if (c > 0) { p = s; } else { p = 0; }"]
        + _KILL_SUFFIX,
        is_bug=False,
        fs_removes=True,
        description="kill store through phi(s, null); null is not a "
                    "memory object so the must-alias set stays singleton",
    ))
    cases.append(_case(
        "fp_copy_kill",
        _KILL_PREFIX
        + [
            "w = s;",
            "if (c > 0) { p = w; } else { p = 0; }",
        ]
        + _KILL_SUFFIX,
        is_bug=False,
        fs_removes=True,
        description="same kill, pointer routed through a copy before "
                    "the maybe-null branch",
    ))
    cases.append(_case(
        "fp_nested_guard",
        _KILL_PREFIX
        + [
            "if (c > 0) {",
            "    if (c < 10) { p = s; } else { p = 0; }",
            "} else {",
            "    p = 0;",
            "}",
        ]
        + _KILL_SUFFIX,
        is_bug=False,
        fs_removes=True,
        description="kill pointer flows through two nested phis, each "
                    "mixing in null constants only",
    ))
    cases.append(_case(
        "fp_kill_then_branch",
        _KILL_PREFIX
        + [
            "if (c > 0) { p = s; } else { p = 0; }",
            "u = malloc();",
            "*p = u;",
            "if (c > 5) { q = *s; } else { q = u; }",
            "r = *q;",
            "return r;",
        ],
        is_bug=False,
        fs_removes=True,
        description="the strong update happens before a branch; both "
                    "arms of the later phi read the fresh value",
    ))

    # ---- false positive that fs must keep ----------------------------
    cases.append(_case(
        "fp_loop_alloc_kept",
        [
            "t = malloc();",
            "s = 0;",
            "i = 0;",
            "while (i < c) {",
            "    s = malloc();",
            "    i = i + 1;",
            "}",
            "*s = t;",
            "free(t);",
            "if (c > 0) { p = s; } else { p = 0; }",
        ]
        + _KILL_SUFFIX,
        is_bug=False,
        fs_removes=False,
        description="the killed cell's allocation site sits on a CFG "
                    "cycle: one abstract object stands for many concrete "
                    "cells, so the singleton proof is refused and the "
                    "weak update keeps the stale value (sound, imprecise)",
    ))

    # ---- genuine bugs: must survive both tiers -----------------------
    cases.append(_case(
        "bug_direct_uaf",
        [
            "p = malloc();",
            "*p = c;",
            "free(p);",
            "x = *p;",
            "return x;",
        ],
        is_bug=True,
        fs_removes=False,
        description="textbook use-after-free, no kill anywhere",
    ))
    cases.append(_case(
        "bug_use_before_kill",
        _KILL_PREFIX
        + [
            "q = *s;",
            "r = *q;",
            "if (c > 0) { p = s; } else { p = 0; }",
            "u = malloc();",
            "*p = u;",
            "return r;",
        ],
        is_bug=True,
        fs_removes=False,
        description="the stale read precedes the strong update; the kill "
                    "must not retroactively hide it",
    ))
    cases.append(_case(
        "bug_phi_two_objects",
        [
            "s1 = malloc();",
            "s2 = malloc();",
            "t = malloc();",
            "*s1 = t;",
            "*s2 = t;",
            "free(t);",
            "if (c > 0) { p = s1; } else { p = s2; }",
            "u = malloc();",
            "*p = u;",
            "q = *s1;",
            "r = *q;",
            "return r;",
        ],
        is_bug=True,
        fs_removes=False,
        description="the kill pointer may alias two distinct objects "
                    "(must-alias joins to top); on the else path *s1 "
                    "still holds the freed value at the read",
    ))
    cases.append(_case(
        "bug_guarded_uaf",
        [
            "p = malloc();",
            "*p = c;",
            "free(p);",
            "if (c > 1) {",
            "    x = *p;",
            "    return x;",
            "}",
            "return 0;",
        ],
        is_bug=True,
        fs_removes=False,
        description="use-after-free behind a satisfiable guard",
    ))

    return cases


def suite_source(cases: Iterable[PrecisionCase]) -> str:
    """All cases concatenated into one program."""
    return "\n".join(case.source for case in cases)


def flagged_cases(cases: Iterable[PrecisionCase], reports) -> Set[str]:
    """Case names touched by any report (source, sink, or path)."""
    names = {case.name for case in cases}
    hit: Set[str] = set()
    for report in reports:
        touched = [report.source.function, report.sink.function] + [
            loc.function for loc in report.path
        ]
        hit.update(name for name in touched if name in names)
    return hit


def score_tier(cases: List[PrecisionCase], reports) -> Dict[str, object]:
    """Per-tier scoring against ground truth: which cases were flagged,
    how many were true positives, and how many false positives."""
    hit = flagged_cases(cases, reports)
    true_pos = sorted(c.name for c in cases if c.is_bug and c.name in hit)
    false_pos = sorted(c.name for c in cases if not c.is_bug and c.name in hit)
    missed = sorted(c.name for c in cases if c.is_bug and c.name not in hit)
    return {
        "flagged": sorted(hit),
        "true_positives": true_pos,
        "false_positives": false_pos,
        "missed_bugs": missed,
    }


__all__ = [
    "PrecisionCase",
    "flagged_cases",
    "generate_precision_suite",
    "score_tier",
    "suite_source",
]
