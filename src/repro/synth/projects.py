"""Catalog of the paper's 30 evaluation subjects (Table 1).

Names and sizes (KLoC) are taken from Table 1.  For the benches, each
subject is synthesized at a configurable scale: ``lines_per_kloc``
generated source lines per paper-KLoC, so the *relative* sizes (and
therefore the scaling shapes of Figs. 7-10) are preserved while staying
runnable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.synth.generator import (
    GeneratorConfig,
    SyntheticProgram,
    generate_program,
)


@dataclass(frozen=True)
class Subject:
    name: str
    kloc: int
    origin: str  # 'spec' | 'open-source'


# Table 1 of the paper, ordered by size within each group.
PAPER_SUBJECTS: List[Subject] = [
    Subject("mcf", 2, "spec"),
    Subject("bzip2", 3, "spec"),
    Subject("gzip", 6, "spec"),
    Subject("parser", 8, "spec"),
    Subject("vpr", 11, "spec"),
    Subject("crafty", 13, "spec"),
    Subject("twolf", 18, "spec"),
    Subject("eon", 22, "spec"),
    Subject("gap", 36, "spec"),
    Subject("vortex", 49, "spec"),
    Subject("perkbmk", 73, "spec"),
    Subject("gcc", 135, "spec"),
    Subject("webassembly", 23, "open-source"),
    Subject("darknet", 24, "open-source"),
    Subject("html5-parser", 31, "open-source"),
    Subject("tmux", 40, "open-source"),
    Subject("libssh", 44, "open-source"),
    Subject("goacess", 48, "open-source"),
    Subject("shadowsocks", 53, "open-source"),
    Subject("swoole", 54, "open-source"),
    Subject("libuv", 62, "open-source"),
    Subject("transmission", 88, "open-source"),
    Subject("git", 185, "open-source"),
    Subject("vim", 333, "open-source"),
    Subject("wrk", 340, "open-source"),
    Subject("libicu", 537, "open-source"),
    Subject("php", 863, "open-source"),
    Subject("ffmpeg", 967, "open-source"),
    Subject("mysql", 2030, "open-source"),
    Subject("firefox", 7998, "open-source"),
]


def subject(name: str) -> Subject:
    for entry in PAPER_SUBJECTS:
        if entry.name == name:
            return entry
    raise KeyError(name)


def subjects_ordered_by_size() -> List[Subject]:
    return sorted(PAPER_SUBJECTS, key=lambda s: s.kloc)


def synthesize_subject(
    entry: Subject,
    lines_per_kloc: float = 2.0,
    min_lines: int = 60,
    max_lines: int = 20000,
    taint: bool = False,
) -> SyntheticProgram:
    """Generate a scaled-down stand-in for a paper subject.

    With the default 2 lines/KLoC, mysql (2 MLoC) becomes ~4k generated
    lines and firefox ~16k — large enough to show scaling shape, small
    enough for pure Python.  The seed derives from the subject name so
    every run sees the same program.
    """
    import zlib

    target = max(min_lines, min(max_lines, int(entry.kloc * lines_per_kloc)))
    config = GeneratorConfig(
        # crc32 rather than hash(): stable across processes and runs.
        seed=zlib.crc32(entry.name.encode()) % (2**31),
        target_lines=target,
        taint_period=7 if taint else 0,
    )
    return generate_program(config)
