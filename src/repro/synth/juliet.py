"""A Juliet-like recall suite (paper Section 5.1.2).

The paper measures recall on the NSA Juliet Test Suite: 1421 seeded
use-after-free and double-free vulnerabilities across 51 structural flaw
types, all of which Pinpoint detects.  This module generates an analogous
suite: 51 structural variants built from the cross product of

- *value routes* (how the freed pointer reaches the use): direct, one or
  two copies, through a heap cell, through an identity helper, freed by a
  callee, returned freed, through double indirection, through a phi;
- *control shapes* around the use: straight-line, guarded by a
  satisfiable condition, in an else branch, nested conditions, after a
  loop;
- *bug kinds*: use-after-free (dereference sink) or double-free (second
  ``free`` sink).

Each case carries a "bad" function (one seeded defect) and a "good" twin
(the use happens before the free), so both recall and false positives on
the suite can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

ROUTES = (
    "direct",
    "copy",
    "copy2",
    "heap",
    "identity",
    "callee-free",
    "return-freed",
    "double-indirect",
    "phi",
)
CONTROLS = ("straight", "guarded", "else", "nested", "after-loop")
BUG_KINDS = ("uaf", "df")

NUM_VARIANTS = 51


@dataclass(frozen=True)
class JulietCase:
    ident: int
    bug_kind: str  # 'uaf' | 'df'
    route: str
    control: str
    source: str  # program text: helpers + bad + good functions
    bad_function: str
    good_function: str


def _variant_space() -> List[Tuple[str, str, str]]:
    combos = []
    for bug in BUG_KINDS:
        for route in ROUTES:
            for control in CONTROLS:
                combos.append((bug, route, control))
    return combos


def generate_juliet_suite(
    count: int = NUM_VARIANTS, instances_per_variant: int = 1
) -> List[JulietCase]:
    """The first ``count`` variants of the structured space (51 default,
    matching the paper's 51 flaw types).

    ``instances_per_variant`` clones each flaw type with distinct
    function names (as Juliet instantiates each CWE variant many times);
    the paper's suite has 1421 seeded defects over the 51 types, which
    ``instances_per_variant=28`` approximates (51 * 28 = 1428).
    """
    cases = []
    ident = 0
    for bug, route, control in _variant_space()[:count]:
        for _ in range(instances_per_variant):
            ident += 1
            cases.append(_build_case(ident, bug, route, control))
    return cases


def generate_full_scale_suite() -> List[JulietCase]:
    """Approximately the paper's 1421-defect suite: 51 flaw types x 28
    instances = 1428 seeded use-after-free/double-free defects."""
    return generate_juliet_suite(NUM_VARIANTS, instances_per_variant=28)


def suite_source(cases: List[JulietCase]) -> str:
    """All cases concatenated into one program."""
    return "\n".join(case.source for case in cases)


# ----------------------------------------------------------------------
def _build_case(ident: int, bug: str, route: str, control: str) -> JulietCase:
    base = f"cwe{415 if bug == 'df' else 416}_v{ident}"
    bad_name = f"{base}_bad"
    good_name = f"{base}_good"
    helpers, setup, freed_var = _route_lines(base, route)
    sink_bad = _sink(bug, freed_var)
    sink_good = _good_sink(freed_var)

    bad_body = list(setup) + _wrap_control(control, sink_bad)
    # Good twin: use first, then free once (still exercising the route's
    # shape where possible).
    good_body = (
        ["    p = malloc();", "    *p = a;", f"    x = {'*p' if bug == 'uaf' else '0'};", "    free(p);"]
        if route != "callee-free"
        else ["    p = malloc();", "    x = *p;", f"    {base}_release(p);"]
    )

    lines = []
    lines.extend(helpers)
    lines.append(f"fn {bad_name}(a) {{")
    lines.extend(bad_body)
    lines.append("    return 0;")
    lines.append("}")
    lines.append(f"fn {good_name}(a) {{")
    lines.extend(good_body)
    lines.append("    return x;" if any("x =" in l for l in good_body) else "    return 0;")
    lines.append("}")
    return JulietCase(
        ident=ident,
        bug_kind=bug,
        route=route,
        control=control,
        source="\n".join(lines) + "\n",
        bad_function=bad_name,
        good_function=good_name,
    )


def _route_lines(base: str, route: str):
    """Returns (helper function lines, setup lines inside bad(), the
    variable holding the dangling pointer at the sink)."""
    helpers: List[str] = []
    setup = ["    p = malloc();", "    *p = a;"]
    if route == "direct":
        setup.append("    free(p);")
        return helpers, setup, "p"
    if route == "copy":
        setup.append("    q = p;")
        setup.append("    free(p);")
        return helpers, setup, "q"
    if route == "copy2":
        setup.append("    q = p;")
        setup.append("    r = q;")
        setup.append("    free(p);")
        return helpers, setup, "r"
    if route == "heap":
        setup = [
            "    holder = malloc();",
            "    p = malloc();",
            "    *holder = p;",
            "    free(p);",
            "    q = *holder;",
        ]
        return helpers, setup, "q"
    if route == "identity":
        helpers = [f"fn {base}_id(v) {{ return v; }}"]
        setup.append(f"    q = {base}_id(p);")
        setup.append("    free(p);")
        return helpers, setup, "q"
    if route == "callee-free":
        helpers = [f"fn {base}_release(v) {{ free(v); return 0; }}"]
        setup.append(f"    {base}_release(p);")
        return helpers, setup, "p"
    if route == "return-freed":
        helpers = [
            f"fn {base}_make() {{",
            "    v = malloc();",
            "    free(v);",
            "    return v;",
            "}",
        ]
        setup = [f"    p = {base}_make();"]
        return helpers, setup, "p"
    if route == "double-indirect":
        setup = [
            "    outer = malloc();",
            "    inner = malloc();",
            "    p = malloc();",
            "    *outer = inner;",
            "    *inner = p;",
            "    free(p);",
            "    q = **outer;",
        ]
        return helpers, setup, "q"
    # phi: the pointer survives a join with itself.
    setup.append("    if (a > 3) { q = p; } else { q = p; }")
    setup.append("    free(q);")
    return helpers, setup, "p"


def _sink(bug: str, var: str) -> str:
    if bug == "uaf":
        return f"x = *{var};"
    return f"free({var});"


def _good_sink(var: str) -> str:
    return f"x = *{var};"


def _wrap_control(control: str, sink: str) -> List[str]:
    if control == "straight":
        return [f"    {sink}"]
    if control == "guarded":
        return ["    if (a > 1) {", f"        {sink}", "    }"]
    if control == "else":
        return [
            "    if (a > 1) {",
            "        y = a + 1;",
            "    } else {",
            f"        {sink}",
            "    }",
        ]
    if control == "nested":
        return [
            "    if (a > 1) {",
            "        if (a < 100) {",
            f"            {sink}",
            "        }",
            "    }",
        ]
    # after-loop
    return [
        "    i = 0;",
        "    while (i < a) {",
        "        i = i + 1;",
        "    }",
        f"    {sink}",
    ]
