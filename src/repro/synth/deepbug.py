"""Deep-bug builder (paper §5.2).

The paper's flagship finding is a use-after-free in MySQL whose control
flow "spans across 36 functions over 11 compiling units" — deep enough
that the developers initially denied the report twice.  This module
builds such a defect to order: a use-after-free whose value flow crosses
a configurable number of functions, mixing the propagation shapes the
engine must chain:

- pass-through calls (VF1 hops),
- flows out through return values (VF2 hops),
- frees behind parameter passing (VF3 at the bottom),
- dereferences behind parameter passing (VF4 at the top),
- hops through heap cells via connector side effects,
- conditional guards that keep the path feasible but non-trivial.

The builder returns the program plus the list of functions on the bug
path, so tests can assert the engine reconstructs the full chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class DeepBug:
    source: str
    functions_on_path: List[str]
    free_function: str
    deref_function: str


def build_deep_bug(depth: int = 36, guard_every: int = 5) -> DeepBug:
    """A use-after-free spanning ``depth`` functions.

    Layout: ``driver`` allocates and calls ``down1``; each ``downN``
    passes the pointer deeper (every ``guard_every``-th hop behind a
    satisfiable guard); the deepest function frees it; control returns to
    ``driver``, which then calls ``use1`` -> ... -> ``useM`` where the
    deepest use function dereferences.  Half the depth goes to the free
    chain, half to the use chain.
    """
    if depth < 4:
        raise ValueError("depth must be at least 4")
    down_count = (depth - 2) // 2
    use_count = depth - 2 - down_count
    lines: List[str] = []
    path: List[str] = []

    # Free chain, bottom-up.
    lines.append(f"fn down{down_count}(p, flag) {{")
    lines.append("    free(p);")
    lines.append("    return 0;")
    lines.append("}")
    free_function = f"down{down_count}"
    for level in range(down_count - 1, 0, -1):
        lines.append(f"fn down{level}(p, flag) {{")
        if level % guard_every == 0:
            lines.append(f"    if (flag > {level}) {{")
            lines.append(f"        down{level + 1}(p, flag);")
            lines.append("    }")
        else:
            lines.append(f"    down{level + 1}(p, flag);")
        lines.append("    return 0;")
        lines.append("}")

    # Use chain: the pointer travels through returns and a heap hop.
    lines.append(f"fn use{use_count}(p) {{")
    lines.append("    x = *p;")
    lines.append("    return x;")
    lines.append("}")
    deref_function = f"use{use_count}"
    for level in range(use_count - 1, 0, -1):
        lines.append(f"fn use{level}(p) {{")
        if level % 3 == 0:
            # Heap hop: stash and reload through a local cell.
            lines.append("    cell = malloc();")
            lines.append("    *cell = p;")
            lines.append("    q = *cell;")
            lines.append(f"    r = use{level + 1}(q);")
        else:
            lines.append(f"    r = use{level + 1}(p);")
        lines.append("    return r;")
        lines.append("}")

    lines.append("fn driver(flag) {")
    lines.append("    p = malloc();")
    lines.append("    *p = flag;")
    lines.append("    down1(p, flag);")
    lines.append("    y = use1(p);")
    lines.append("    return y;")
    lines.append("}")

    path = (
        ["driver"]
        + [f"down{i}" for i in range(1, down_count + 1)]
        + [f"use{i}" for i in range(1, use_count + 1)]
    )
    return DeepBug(
        source="\n".join(lines) + "\n",
        functions_on_path=path,
        free_function=free_function,
        deref_function=deref_function,
    )
