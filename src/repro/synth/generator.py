"""Parameterized synthetic program generator.

Generates deterministic (seeded) programs in the analyzed language whose
structure mirrors what makes real code hard for value-flow analyses:

- deep call chains with pointer parameters and side effects through them
  (exercising the connector model),
- values flowing through heap cells written on different branches
  (exercising conditional points-to),
- many irrelevant pointer operations (the sparseness payoff),
- *seeded defects* with ground truth:

  - ``true-local`` — free then deref in one function;
  - ``true-cross`` — a helper frees its parameter, the caller derefs;
  - ``true-return`` — a helper returns a freed pointer;
  - ``true-memory`` — the freed pointer travels through a heap cell;
  - ``fp-trap`` — free and deref on contradictory branches of one
    condition: a *safe* pattern that path-insensitive tools report;
  - ``svf-trap`` — a heap cell written with two pointers on
    complementary branches; only the unfreed one can reach the deref:
    safe, but flow-insensitive points-to conflates the two.

Reports are matched to ground truth by source/sink function names, which
are unique per seeded defect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

TRUE_KINDS = ("true-local", "true-cross", "true-return", "true-memory")
# Safe patterns imprecise tools report.  "fp-trap" and "svf-trap" yield
# syntactic (a & !a) contradictions the linear solver catches;
# "range-trap" needs arithmetic reasoning (the SMT theory).  Weights
# approximate the paper's observation that >90% of unsatisfiable path
# conditions are the easy syntactic kind.
TRAP_KINDS = ("fp-trap", "svf-trap", "range-trap")
TRAP_WEIGHTS = (7, 5, 1)
# Safe patterns *Pinpoint itself* reports, due to its soundy unroll-once
# loop treatment (paper §4.2): these account for the paper's nonzero
# false-positive rates (14.3% UAF, 23.6% taint).
LOOP_FP_KINDS = ("uaf-loop-fp",)


@dataclass(frozen=True)
class GroundTruth:
    """One seeded defect (or trap) and the functions implementing it."""

    kind: str
    functions: Tuple[str, ...]

    @property
    def is_true_bug(self) -> bool:
        return self.kind in TRUE_KINDS

    @property
    def is_loop_fp(self) -> bool:
        """An expected (soundiness-induced) Pinpoint false positive."""
        return self.kind in LOOP_FP_KINDS or self.kind == "taint-loop-fp"


@dataclass
class GeneratorConfig:
    """Knobs for program shape.

    ``target_lines`` is approximate (the generator stops adding filler
    once reached).  ``bug_period`` seeds one defect cluster every that
    many filler clusters; ``trap_period`` likewise for traps.
    """

    seed: int = 1
    target_lines: int = 500
    functions_per_cluster: int = 3
    statements_per_function: int = 12
    call_depth: int = 4
    pointer_density: float = 0.4
    bug_period: int = 5
    trap_period: int = 4
    # One soundiness-induced FP seed roughly per six true bugs keeps the
    # overall UAF FP rate near the paper's 14.3%.
    loop_fp_period: int = 33
    taint_period: int = 0  # 0 disables taint seeding


@dataclass
class SyntheticProgram:
    source: str
    ground_truth: List[GroundTruth] = field(default_factory=list)
    line_count: int = 0

    def true_bugs(self) -> List[GroundTruth]:
        return [g for g in self.ground_truth if g.is_true_bug]

    def traps(self) -> List[GroundTruth]:
        return [g for g in self.ground_truth if not g.is_true_bug]


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, text: str) -> None:
        self.lines.append(text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"

    def count(self) -> int:
        return len(self.lines)


def generate_program(config: Optional[GeneratorConfig] = None) -> SyntheticProgram:
    config = config or GeneratorConfig()
    rng = random.Random(config.seed)
    emitter = _Emitter()
    truths: List[GroundTruth] = []
    _emit_shared_registry(emitter)
    cluster = 0
    while emitter.count() < config.target_lines:
        cluster += 1
        if config.loop_fp_period and cluster % config.loop_fp_period == 0:
            truths.append(_emit_loop_fp(emitter, cluster, config, rng))
        elif config.bug_period and cluster % config.bug_period == 0:
            kind = rng.choice(TRUE_KINDS)
            truths.append(_emit_bug(emitter, cluster, kind, rng))
        elif config.trap_period and cluster % config.trap_period == 0:
            kind = rng.choices(TRAP_KINDS, weights=TRAP_WEIGHTS, k=1)[0]
            truths.append(_emit_trap(emitter, cluster, kind, rng))
        elif config.taint_period and cluster % config.taint_period == 0:
            truths.append(_emit_taint(emitter, cluster, rng))
        else:
            _emit_filler_cluster(emitter, cluster, config, rng)
    program = SyntheticProgram(emitter.source(), truths, emitter.count())
    return program


def _emit_shared_registry(emitter: _Emitter) -> None:
    """Shared accessors every cluster routes its slot through.

    This is the structural feature that breaks whole-program
    flow/context-insensitive analyses: an Andersen-style analysis merges
    every caller's slot into one points-to set inside these helpers, so
    every store via ``s`` feeds every load via ``s`` — the quadratic
    SVFG blow-up ("pointer trap").  Pinpoint's local analysis keeps each
    caller's slot separate through the connector model.
    """
    emitter.emit("fn shared_put(s, v) {")
    emitter.emit("    *s = v;")
    emitter.emit("    return 0;")
    emitter.emit("}")
    emitter.emit("fn shared_get(s) {")
    emitter.emit("    v = *s;")
    emitter.emit("    return v;")
    emitter.emit("}")


# ----------------------------------------------------------------------
# Filler code: realistic-looking safe clusters
# ----------------------------------------------------------------------
def _emit_filler_cluster(emitter: _Emitter, cluster: int, config: GeneratorConfig, rng) -> None:
    """A call chain of helper functions with pointer traffic, all safe."""
    depth = rng.randint(2, max(2, config.call_depth))
    base = f"u{cluster}"
    # Leaf: arithmetic worker, sometimes loop-shaped (real code iterates).
    emitter.emit(f"fn {base}_leaf(a, b) {{")
    if rng.random() < 0.3:
        emitter.emit("    i = 0;")
        emitter.emit("    acc = a;")
        emitter.emit(f"    while (i < {rng.randint(3, 12)}) {{")
        emitter.emit("        acc = acc + b;")
        emitter.emit("        i = i + 1;")
        emitter.emit("    }")
        emitter.emit(f"    if (acc > {rng.randint(1, 50)}) {{ return acc; }}")
        emitter.emit("    return b;")
        emitter.emit("}")
        acc = "acc"
    else:
        acc = "a"
        for i in range(rng.randint(2, config.statements_per_function // 2)):
            op = rng.choice(["+", "-", "*"])
            emitter.emit(f"    v{i} = {acc} {op} b;")
            acc = f"v{i}"
        emitter.emit(f"    if ({acc} > {rng.randint(1, 50)}) {{ return {acc}; }}")
        emitter.emit("    return b;")
        emitter.emit("}")

    # Middle layers: pointer plumbing through parameters.
    previous = f"{base}_leaf"
    for level in range(1, depth):
        name = f"{base}_m{level}"
        if rng.random() < config.pointer_density:
            emitter.emit(f"fn {name}(p, a) {{")
            emitter.emit("    v = *p;")
            emitter.emit(f"    w = {previous}(v, a);")
            emitter.emit("    *p = w;")
            emitter.emit("    return w;")
            emitter.emit("}")
        else:
            emitter.emit(f"fn {name}(p, a) {{")
            emitter.emit(f"    w = {previous}(a, a);")
            emitter.emit(f"    if (a > {rng.randint(1, 30)}) {{ w = w + 1; }}")
            emitter.emit("    return w;")
            emitter.emit("}")
        previous = name

    # Root: allocates, routes through the shared registry, uses, frees
    # correctly.
    emitter.emit(f"fn {base}_root(a) {{")
    emitter.emit("    p = malloc();")
    emitter.emit("    *p = a;")
    emitter.emit(f"    r = {previous}(p, a);")
    emitter.emit("    slot = malloc();")
    emitter.emit("    slot2 = malloc();")
    emitter.emit("    shared_put(slot, p);")
    emitter.emit("    p2 = shared_get(slot);")
    emitter.emit("    shared_put(slot2, p2);")
    emitter.emit("    p3 = shared_get(slot2);")
    emitter.emit("    x = *p3;")
    emitter.emit("    free(p);")
    emitter.emit("    return x + r;")
    emitter.emit("}")


# ----------------------------------------------------------------------
# Seeded true bugs
# ----------------------------------------------------------------------
def _emit_bug(emitter: _Emitter, cluster: int, kind: str, rng) -> GroundTruth:
    base = f"bug{cluster}"
    if kind == "true-local":
        emitter.emit(f"fn {base}_main(a) {{")
        emitter.emit("    p = malloc();")
        emitter.emit("    *p = a;")
        emitter.emit(f"    if (a > {rng.randint(1, 20)}) {{ q = p; }} else {{ q = p; }}")
        emitter.emit("    free(q);")
        emitter.emit("    x = *p;")
        emitter.emit("    return x;")
        emitter.emit("}")
        return GroundTruth(kind, (f"{base}_main",))
    if kind == "true-cross":
        emitter.emit(f"fn {base}_release(p) {{ free(p); return 0; }}")
        emitter.emit(f"fn {base}_main(a) {{")
        emitter.emit("    p = malloc();")
        emitter.emit("    *p = a;")
        emitter.emit(f"    {base}_release(p);")
        emitter.emit("    x = *p;")
        emitter.emit("    return x;")
        emitter.emit("}")
        return GroundTruth(kind, (f"{base}_release", f"{base}_main"))
    if kind == "true-return":
        emitter.emit(f"fn {base}_make() {{")
        emitter.emit("    p = malloc();")
        emitter.emit("    free(p);")
        emitter.emit("    return p;")
        emitter.emit("}")
        emitter.emit(f"fn {base}_main() {{")
        emitter.emit(f"    q = {base}_make();")
        emitter.emit("    x = *q;")
        emitter.emit("    return x;")
        emitter.emit("}")
        return GroundTruth(kind, (f"{base}_make", f"{base}_main"))
    # true-memory: freed pointer travels through a heap cell.
    emitter.emit(f"fn {base}_main(a) {{")
    emitter.emit("    holder = malloc();")
    emitter.emit("    p = malloc();")
    emitter.emit("    *holder = p;")
    emitter.emit("    free(p);")
    emitter.emit("    q = *holder;")
    emitter.emit("    x = *q;")
    emitter.emit("    return x;")
    emitter.emit("}")
    return GroundTruth("true-memory", (f"{base}_main",))


# ----------------------------------------------------------------------
# Seeded safe traps (false positives for imprecise tools)
# ----------------------------------------------------------------------
def _emit_trap(emitter: _Emitter, cluster: int, kind: str, rng) -> GroundTruth:
    base = f"trap{cluster}"
    if kind == "fp-trap":
        emitter.emit(f"fn {base}_main(c) {{")
        emitter.emit("    p = malloc();")
        emitter.emit(f"    t = c > {rng.randint(1, 20)};")
        emitter.emit("    if (t) { free(p); }")
        emitter.emit("    if (!t) { x = *p; return x; }")
        emitter.emit("    return 0;")
        emitter.emit("}")
        return GroundTruth(kind, (f"{base}_main",))
    if kind == "svf-trap":
        # Flow-insensitive points-to conflates the two cell values.
        emitter.emit(f"fn {base}_main(c) {{")
        emitter.emit("    slot = malloc();")
        emitter.emit("    p = malloc();")
        emitter.emit("    q = malloc();")
        emitter.emit(f"    t = c > {rng.randint(1, 20)};")
        emitter.emit("    if (t) { *slot = p; } else { *slot = q; }")
        emitter.emit("    if (t) { free(p); }")
        emitter.emit("    r = *slot;")
        emitter.emit("    if (!t) { x = *r; return x; }")
        emitter.emit("    return 0;")
        emitter.emit("}")
        return GroundTruth("svf-trap", (f"{base}_main",))
    # range-trap: the contradiction is arithmetic (c > K and c < K-2),
    # invisible to the linear solver; only the SMT theory prunes it.
    bound = rng.randint(10, 30)
    emitter.emit(f"fn {base}_main(c) {{")
    emitter.emit("    p = malloc();")
    emitter.emit(f"    if (c > {bound}) {{ free(p); }}")
    emitter.emit(f"    u = c < {bound - 2};")
    emitter.emit("    if (u) { x = *p; return x; }")
    emitter.emit("    return 0;")
    emitter.emit("}")
    return GroundTruth("range-trap", (f"{base}_main",))


# ----------------------------------------------------------------------
# Soundiness-induced false positives (loops unrolled once, §4.2)
# ----------------------------------------------------------------------
def _emit_loop_fp(emitter: _Emitter, cluster: int, config: GeneratorConfig, rng) -> GroundTruth:
    """Safe code Pinpoint reports because loop iteration counts are not
    modeled: on the ``n < 0`` path the loop body never runs, so ``q``
    never aliases ``p`` — but with back edges cut and the loop-carried
    phi unconstrained, the engine cannot rule the flow out.  These seeds
    reproduce the nonzero FP rates the paper measures (Table 1/2)."""
    base = f"loopfp{cluster}"
    ordinal = cluster // max(config.loop_fp_period, 1)
    if config.taint_period and ordinal % 2 == 1:
        emitter.emit(f"fn {base}_main(n) {{")
        emitter.emit("    data = fgetc();")
        emitter.emit("    path = 0;")
        emitter.emit("    i = 0;")
        emitter.emit("    while (i < n) {")
        emitter.emit("        path = data;")
        emitter.emit("        i = i + 1;")
        emitter.emit("    }")
        emitter.emit("    if (n < 0) { f = fopen(path); return f; }")
        emitter.emit("    return 0;")
        emitter.emit("}")
        return GroundTruth("taint-loop-fp", (f"{base}_main",))
    emitter.emit(f"fn {base}_main(n, a) {{")
    emitter.emit("    p = malloc();")
    emitter.emit("    *p = a;")
    emitter.emit("    q = null;")
    emitter.emit("    i = 0;")
    emitter.emit("    while (i < n) {")
    emitter.emit("        q = p;")
    emitter.emit("        i = i + 1;")
    emitter.emit("    }")
    emitter.emit("    free(p);")
    emitter.emit("    if (n < 0) { x = *q; return x; }")
    emitter.emit("    return 0;")
    emitter.emit("}")
    return GroundTruth("uaf-loop-fp", (f"{base}_main",))


# ----------------------------------------------------------------------
# Seeded taint flows (for the Table 2 benches)
# ----------------------------------------------------------------------
def _emit_taint(emitter: _Emitter, cluster: int, rng) -> GroundTruth:
    base = f"taint{cluster}"
    which = rng.choice(("path", "data"))
    if which == "path":
        emitter.emit(f"fn {base}_read() {{")
        emitter.emit("    c = fgetc();")
        emitter.emit("    return c;")
        emitter.emit("}")
        emitter.emit(f"fn {base}_main(n) {{")
        emitter.emit(f"    path = {base}_read();")
        emitter.emit("    path = path + n;")
        emitter.emit("    f = fopen(path);")
        emitter.emit("    return f;")
        emitter.emit("}")
        return GroundTruth("taint-path", (f"{base}_read", f"{base}_main"))
    emitter.emit(f"fn {base}_main(n) {{")
    emitter.emit("    secret = getpass();")
    emitter.emit("    buf = secret;")
    emitter.emit("    sendto(buf);")
    emitter.emit("    return 0;")
    emitter.emit("}")
    return GroundTruth("taint-data", (f"{base}_main",))


# ----------------------------------------------------------------------
# Report matching against ground truth
# ----------------------------------------------------------------------
def classify_reports(reports, truths: List[GroundTruth]):
    """Split reports into (true positives, false positives) and compute
    which seeded bugs were found, by matching function names."""
    bug_functions = {}
    for truth in truths:
        if truth.is_true_bug:
            for name in truth.functions:
                bug_functions[name] = truth
    found = set()
    true_positives = []
    false_positives = []
    for report in reports:
        truth = bug_functions.get(report.source.function) or bug_functions.get(
            report.sink.function
        )
        if truth is not None:
            found.add(truth)
            true_positives.append(report)
        else:
            false_positives.append(report)
    missed = [t for t in truths if t.is_true_bug and t not in found]
    return true_positives, false_positives, missed


def split_false_positives(false_positives, truths: List[GroundTruth]):
    """Split false positives into (soundiness-expected, unexpected).

    Reports matching a seeded loop-imprecision pattern are the FPs the
    paper's own tool exhibits (its 14.3%/23.6% rates); anything else is
    an unexpected precision regression.
    """
    loop_fp_functions = {
        name
        for truth in truths
        if truth.is_loop_fp
        for name in truth.functions
    }
    expected = []
    unexpected = []
    for report in false_positives:
        if (
            report.source.function in loop_fp_functions
            or report.sink.function in loop_fp_functions
        ):
            expected.append(report)
        else:
            unexpected.append(report)
    return expected, unexpected
