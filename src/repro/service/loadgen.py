"""Load generator for the analysis daemon.

Drives a running daemon with N concurrent clients over a mixed
cold/warm/edit workload and reports client-visible latency quantiles
per request kind.  This is the measurement half of the service story:
the daemon's reason to exist is that a warm *edit* re-check is
milliseconds while a cold check is the full pipeline, and this module
produces the numbers that prove (or regress) that.

Each client owns one session and walks the realistic loop:

1. **cold** — first full check of its (synthetic, seeded) program;
2. **warm** — re-check of the identical program (everything reused);
3. **edit** x K — ``/v1/edit`` body tweaks of a dedicated knob
   function, the daemon's single-function delta path.

A 429 is obeyed, not counted as failure: the client sleeps the
``Retry-After`` the daemon suggested and retries — rejections are
tallied separately so overload shows up in the summary.

Used by ``repro loadgen``, ``benchmarks/bench_service_latency.py`` and
the CI service job.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.service.client import ServiceClient, ServiceError

#: Give up on one request after this many 429-backoff rounds.
MAX_RETRIES = 50


@dataclass
class LoadConfig:
    clients: int = 4
    edits_per_client: int = 8
    target_lines: int = 250
    seed: int = 7
    checkers: Any = "all"
    #: Cap one backoff sleep (Retry-After can be large under deep queues).
    max_backoff_seconds: float = 2.0
    session_prefix: str = "load"


@dataclass
class LoadReport:
    """Everything one run of the generator measured."""

    samples: List[Dict[str, Any]] = field(default_factory=list)
    rejected: int = 0
    errors: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    def latencies(self, kind: str) -> List[float]:
        return sorted(
            s["seconds"] for s in self.samples if s["kind"] == kind
        )

    def summary(self) -> Dict[str, Any]:
        kinds: Dict[str, Any] = {}
        for kind in ("cold", "warm", "edit"):
            values = self.latencies(kind)
            if not values:
                continue
            kinds[kind] = {
                "count": len(values),
                "p50": percentile(values, 0.50),
                "p95": percentile(values, 0.95),
                "p99": percentile(values, 0.99),
                "mean": sum(values) / len(values),
                "max": values[-1],
            }
        return {
            "kinds": kinds,
            "requests": len(self.samples),
            "rejected": self.rejected,
            "errors": len(self.errors),
            "wall_seconds": round(self.wall_seconds, 3),
        }


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


def _knob_text(index: int, value: int) -> str:
    return f"fn loadgen_knob_{index}() {{ return {value}; }}"


def client_source(config: LoadConfig, index: int) -> str:
    """The synthetic program client ``index`` checks: a seeded generator
    program plus a knob function whose body the edit phase tweaks."""
    from repro.synth.generator import GeneratorConfig, generate_program

    program = generate_program(
        GeneratorConfig(
            seed=config.seed + index, target_lines=config.target_lines
        )
    )
    return program.source + "\n" + _knob_text(index, 0) + "\n"


def run_load(
    port: int,
    config: Optional[LoadConfig] = None,
    host: str = "127.0.0.1",
    on_sample: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> LoadReport:
    """Run the mixed workload against ``host:port``; returns the report."""
    config = config or LoadConfig()
    report = LoadReport()
    lock = threading.Lock()
    start = time.perf_counter()

    def record(kind: str, seconds: float, document: Dict[str, Any]) -> None:
        timings = document.get("timings", {})
        sample = {
            "kind": kind,
            "seconds": seconds,
            "t": round(time.perf_counter() - start, 6),
            "queue_seconds": timings.get("queue_seconds", 0.0),
            "run_seconds": timings.get("run_seconds", 0.0),
            "exit_code": document.get("exit_code"),
            "findings": document.get("findings"),
            "fingerprint": document.get("fingerprint", ""),
        }
        with lock:
            report.samples.append(sample)
        if on_sample is not None:
            on_sample(sample)

    def with_backoff(call: Callable[[], Dict[str, Any]]) -> Dict[str, Any]:
        for _ in range(MAX_RETRIES):
            started = time.perf_counter()
            try:
                document = call()
            except ServiceError as exc:
                if not exc.overloaded:
                    raise
                with lock:
                    report.rejected += 1
                time.sleep(
                    min(max(exc.retry_after, 1), config.max_backoff_seconds)
                )
                continue
            document["_seconds"] = time.perf_counter() - started
            return document
        raise ServiceError(429, {"error": "gave up after repeated 429s"})

    def client_loop(index: int) -> None:
        client = ServiceClient(port, host=host)
        session = f"{config.session_prefix}-{index}"
        source = client_source(config, index)
        try:
            for kind in ("cold", "warm"):
                document = with_backoff(
                    lambda: client.check(
                        source, checkers=config.checkers, session=session
                    )
                )
                record(kind, document.pop("_seconds"), document)
            for value in range(1, config.edits_per_client + 1):
                text = _knob_text(index, value)
                document = with_backoff(
                    lambda t=text: client.edit(
                        session, t, checkers=config.checkers
                    )
                )
                record("edit", document.pop("_seconds"), document)
        except Exception as exc:  # one client's failure must not hang others
            with lock:
                report.errors.append(f"client {index}: {exc}")

    threads = [
        threading.Thread(
            target=client_loop, args=(i,), name=f"loadgen-client-{i}"
        )
        for i in range(config.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - start
    return report
