"""Job bookkeeping and admission control for the analysis daemon.

The daemon accepts more work than it can run at once; these two classes
keep that honest:

:class:`JobTable`
    Thread-safe registry of every accepted job — queued, running, and a
    bounded tail of finished ones (``/v1/jobs/<id>`` and
    ``/v1/results/<id>`` read from here).  Completed jobs beyond the
    retention cap are pruned oldest-first so a long-lived daemon's
    memory stays flat.

:class:`AdmissionQueue`
    A bounded FIFO in front of the worker pool.  ``submit`` either
    enqueues or refuses *immediately* — the daemon's overload contract
    is 429 + ``Retry-After``, never an unbounded backlog or a partial
    result.  The suggested retry delay is an EWMA of recent service
    times scaled by the current backlog, so clients back off harder the
    deeper the queue is.

Metrics (process registry): ``service.queue_depth`` gauge,
``service.rejected`` counter.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import get_registry

#: Finished jobs kept for ``/v1/results`` replay before pruning.
RETAINED_JOBS = 512

STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_ABORTED = "aborted"

#: Terminal states (the job's ``done`` event is set).
FINISHED = (STATUS_DONE, STATUS_FAILED, STATUS_ABORTED)


@dataclass
class Job:
    """One accepted analysis request."""

    job_id: str
    kind: str  # cold | warm | edit (cold/warm resolved at run time)
    session: str
    checkers: List[str]
    payload: Dict[str, Any] = field(default_factory=dict)
    # Trace context carried from the submitting client (the request
    # payload's "trace" object), else minted at accept time: the job's
    # ``service.job`` span joins this trace id and parents under the
    # client's span, so a daemon-side run slots into the same distributed
    # trace as the caller's — the same contract the scheduler's wave →
    # worker dispatch keeps.
    trace_id: str = ""
    parent_span_id: Optional[int] = None
    status: str = STATUS_QUEUED
    enqueued_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    result: Optional[Dict[str, Any]] = None
    error: str = ""
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def queue_seconds(self) -> float:
        if not self.started_at:
            return 0.0
        return max(0.0, self.started_at - self.enqueued_at)

    @property
    def run_seconds(self) -> float:
        if not (self.started_at and self.finished_at):
            return 0.0
        return max(0.0, self.finished_at - self.started_at)

    @property
    def service_seconds(self) -> float:
        """What the client experienced: queue wait plus run time."""
        if not self.finished_at:
            return 0.0
        return max(0.0, self.finished_at - self.enqueued_at)

    def as_dict(self) -> Dict[str, Any]:
        """The ``/v1/jobs/<id>`` document (no result payload)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "session": self.session,
            "checkers": list(self.checkers),
            "trace_id": self.trace_id,
            "status": self.status,
            "enqueued_at": round(self.enqueued_at, 6),
            "queue_seconds": round(self.queue_seconds, 6),
            "run_seconds": round(self.run_seconds, 6),
            "service_seconds": round(self.service_seconds, 6),
            "error": self.error,
        }


class JobTable:
    """Thread-safe job registry with bounded retention of finished jobs."""

    def __init__(self, retained: int = RETAINED_JOBS, clock=time.monotonic) -> None:
        self.retained = retained
        self.clock = clock
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._ids = itertools.count(1)

    def create(self, kind: str, session: str, checkers, payload) -> Job:
        payload = dict(payload)
        # Adopt the client's trace context when the request carries one
        # (a {"trace": {"trace_id", "parent_span_id"}} payload object);
        # mint a fresh trace id otherwise so every job is traceable.
        trace_id = ""
        parent_span: Optional[int] = None
        context = payload.get("trace")
        if isinstance(context, dict):
            trace_id = str(context.get("trace_id", "") or "")
            raw_parent = context.get("parent_span_id")
            if isinstance(raw_parent, int) and not isinstance(raw_parent, bool):
                parent_span = raw_parent
        if not trace_id:
            trace_id = uuid.uuid4().hex[:16]
        with self._lock:
            job = Job(
                job_id=f"j{next(self._ids):06d}",
                kind=kind,
                session=session,
                checkers=list(checkers),
                payload=payload,
                trace_id=trace_id,
                parent_span_id=parent_span,
                enqueued_at=self.clock(),
            )
            self._jobs[job.job_id] = job
            self._prune_locked()
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def start(self, job: Job) -> None:
        with self._lock:
            job.status = STATUS_RUNNING
            job.started_at = self.clock()

    def finish(
        self,
        job: Job,
        status: str,
        result: Optional[Dict[str, Any]] = None,
        error: str = "",
    ) -> None:
        with self._lock:
            job.status = status
            job.finished_at = self.clock()
            job.result = result
            job.error = error
            if result is not None:
                # Attach timings before ``done`` fires: a handler blocked
                # in ``wait`` serializes the result the moment it wakes.
                result["timings"] = {
                    "queue_seconds": round(job.queue_seconds, 6),
                    "run_seconds": round(job.run_seconds, 6),
                    "service_seconds": round(job.service_seconds, 6),
                }
        job.done.set()

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for job in self._jobs.values():
                out[job.status] = out.get(job.status, 0) + 1
            return out

    def _prune_locked(self) -> None:
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.status in FINISHED
        ]
        excess = len(finished) - self.retained
        # Insertion order is creation order, so the oldest finished jobs
        # come first — prune those.
        for job_id in finished[:excess]:
            del self._jobs[job_id]


class AdmissionQueue:
    """Bounded job queue with an overload verdict at submit time."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"queue maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(maxsize=maxsize)
        self._lock = threading.Lock()
        # EWMA of recent service times, seeding the Retry-After estimate.
        self._avg_service_seconds = 0.5

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> bool:
        """Enqueue, or refuse immediately when the queue is full."""
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            get_registry().counter(
                "service.rejected",
                "Requests refused by admission control (HTTP 429)",
            ).inc(reason="queue-full")
            return False
        self._publish_depth()
        return True

    def pop(self, timeout: float = 0.5) -> Optional[Job]:
        """Next job for a worker (None on timeout or shutdown sentinel)."""
        try:
            job = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        self._publish_depth()
        return job

    def push_sentinel(self) -> None:
        """Unblock one worker for shutdown (bypasses admission)."""
        self._queue.put(None)

    def depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------
    def observe_service_seconds(self, seconds: float) -> None:
        with self._lock:
            self._avg_service_seconds = (
                0.8 * self._avg_service_seconds + 0.2 * max(seconds, 0.001)
            )

    def retry_after_seconds(self) -> int:
        """Suggested client backoff: expected time to drain the backlog,
        floored at one second (the HTTP header wants whole seconds)."""
        with self._lock:
            avg = self._avg_service_seconds
        estimate = avg * (self.depth() + 1)
        return max(1, int(estimate + 0.999))

    def _publish_depth(self) -> None:
        get_registry().gauge(
            "service.queue_depth", "Jobs waiting for a daemon worker"
        ).set(self.depth())
