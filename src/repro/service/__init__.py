"""Analysis-as-a-service: the persistent ``repro daemon``.

The package splits along the request's path through the daemon:

- :mod:`repro.service.jobs` — job table and admission control (the
  429 + Retry-After overload contract);
- :mod:`repro.service.session` — warm per-program analysis sessions
  over :class:`~repro.core.incremental.IncrementalAnalyzer`;
- :mod:`repro.service.server` — the HTTP surface and worker pool;
- :mod:`repro.service.client` — stdlib client used by the CLI/tests/CI;
- :mod:`repro.service.loadgen` — concurrent mixed-workload latency
  measurement.

See ``docs/service.md`` for the API and the byte-identity/overload
contracts.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import AdmissionQueue, Job, JobTable
from repro.service.loadgen import LoadConfig, LoadReport, run_load
from repro.service.server import ServiceConfig, ServiceServer
from repro.service.session import Session, SessionCache

__all__ = [
    "AdmissionQueue",
    "Job",
    "JobTable",
    "LoadConfig",
    "LoadReport",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "Session",
    "SessionCache",
    "run_load",
]
