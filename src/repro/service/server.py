"""The analysis daemon: a persistent HTTP service over the engine.

``repro daemon`` keeps one process resident so repeated checks pay the
interpreter/warm-up and preparation cost once.  The HTTP surface is
stdlib-only (:class:`ThreadingHTTPServer`), bound to ``127.0.0.1``:

``POST /v1/check``
    Full-program analysis.  Body: ``{"source": ..., "checkers":
    ["use-after-free", ...] | "all", "session": "name", "wait": true}``.
    Naming a session makes later requests *warm*: unchanged functions
    are served from the session's in-memory artifact cache.
``POST /v1/edit``
    Single-function delta re-check against a warm session.  Body:
    ``{"session": ..., "text": "<one function definition>"}``.  The
    daemon splices the re-parsed function over the session's current
    program and re-analyzes — the AST x interface fingerprints confine
    re-preparation to what the edit invalidated.
``GET /v1/jobs/<id>`` / ``GET /v1/results/<id>``
    Job status / full result document.
``GET /v1/sessions``
    Resident warm sessions.
``GET /healthz`` / ``/metrics`` / ``/status`` / ``/events``
    The monitor surface, inherited from :mod:`repro.obs.monitor`
    (healthz is extended with port, queue depth and job counts).

Contracts:

- **Byte-identity** — a daemon result's ``reports`` and ``diagnostics``
  are exactly what one-shot ``repro check --json`` emits for the same
  program and checkers (both build on
  :func:`repro.core.report.report_as_dict` and the same dedup/exit-code
  logic; the incremental preparation path is report-identical by the
  canonical-key construction, see ``docs/determinism.md``).
- **Overload degrades, never crashes** — admission control refuses
  excess work with ``429`` + ``Retry-After`` before it costs anything;
  accepted jobs always reach a terminal state, and worker crashes fail
  the one job, not the daemon.
- **Budgets are per request** — each job runs under its own
  :class:`~repro.robust.ResourceBudget` derived from daemon defaults
  (optionally tightened, never widened, by the request's ``budget``).
"""

from __future__ import annotations

import json
import threading
import time
import traceback
from dataclasses import dataclass, field
from http.server import ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from repro.core.engine import EngineConfig
from repro.core.incremental import apply_function_edit
from repro.core.report import report_as_dict
from repro.lang.parser import ParseError, parse_program
from repro.obs.metrics import get_registry
from repro.obs.monitor import STREAM_POLL_SECONDS, _MonitorHandler
from repro.obs.trace import trace
from repro.robust import ResourceBudget
from repro.robust.diagnostics import STAGE_VERIFY
from repro.service.jobs import (
    STATUS_ABORTED,
    STATUS_DONE,
    STATUS_FAILED,
    AdmissionQueue,
    Job,
    JobTable,
)
from repro.service.session import Session, SessionCache, parse_single_function

#: Request bodies past this are refused with 413 before being parsed.
MAX_BODY_BYTES = 10 * 1024 * 1024

#: Default seconds a ``wait: true`` request blocks before falling back
#: to a 202 + job id (the client can keep polling ``/v1/results``).
DEFAULT_WAIT_SECONDS = 300.0


@dataclass
class ServiceConfig:
    """Daemon-level knobs (engine defaults + capacity limits)."""

    workers: int = 2
    queue_max: int = 16
    max_sessions: int = 32
    # Engine defaults, mirroring the `repro check` flags.
    depth: int = 6
    no_smt: bool = False
    verify: str = ""  # "" | off | fast | full (as `repro check --verify`)
    pta: str = ""
    # Per-request budget defaults (0 = unlimited, as on the CLI).
    deadline: float = 0.0
    smt_deadline: float = 0.0
    max_steps: int = 0
    # Persistence.
    cache_dir: str = ""
    history_dir: str = ""
    max_body_bytes: int = MAX_BODY_BYTES
    # Test hook: artificial seconds each worker sleeps per job, so
    # overload tests can fill the queue with deterministically slow work.
    worker_delay_seconds: float = 0.0

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            max_call_depth=self.depth,
            use_smt=not self.no_smt,
            verify=self.verify,
            pta_tier=self.pta,
        )


@dataclass
class _BudgetSpec:
    wall_seconds: float = 0.0
    smt_seconds: float = 0.0
    max_steps: int = 0

    @classmethod
    def from_payload(cls, raw: Any) -> "_BudgetSpec":
        if not isinstance(raw, dict):
            return cls()
        return cls(
            wall_seconds=float(raw.get("deadline", 0) or 0),
            smt_seconds=float(raw.get("smt_deadline", 0) or 0),
            max_steps=int(raw.get("max_steps", 0) or 0),
        )


def _tightest(request: float, default: float) -> Optional[float]:
    """Combine a request-supplied limit with the daemon default: the
    request can tighten the budget but never widen past the default."""
    values = [v for v in (request, default) if v and v > 0]
    return min(values) if values else None


class ServiceServer:
    """The daemon: HTTP front end, admission queue, worker pool."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        store = None
        if self.config.cache_dir:
            from repro.cache import open_store

            store = open_store(self.config.cache_dir)
        self.sessions = SessionCache(
            self.config.engine_config(),
            store=store,
            max_sessions=self.config.max_sessions,
        )
        self.jobs = JobTable()
        self.queue = AdmissionQueue(self.config.queue_max)
        self.running = False
        self.started_at = 0.0
        self.port = 0
        self.host = "127.0.0.1"
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._anon = 0
        self._anon_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def start(self, port: int = 0) -> int:
        """Bind (port 0 = ephemeral), start workers; returns the port."""
        httpd = ThreadingHTTPServer((self.host, port), _ServiceHandler)
        httpd.daemon_threads = True
        httpd.service = self  # type: ignore[attr-defined]
        # The inherited /events SSE loop polls ``server.monitor.running``.
        httpd.monitor = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self.running = True
        self.started_at = time.monotonic()
        self._serve_thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": STREAM_POLL_SECONDS},
            name="repro-service-http",
            daemon=True,
        )
        self._serve_thread.start()
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        return self.port

    def stop(self) -> None:
        """Graceful shutdown: finish running jobs, abort queued ones."""
        if not self.running:
            return
        self.running = False
        for _ in self._workers:
            self.queue.push_sentinel()
        for worker in self._workers:
            worker.join(timeout=30.0)
        self._workers = []
        # Anything still queued never ran; give it a terminal state so
        # waiting clients unblock with a definite answer.
        while True:
            job = self.queue.pop(timeout=0.0)
            if job is None:
                break
            self.jobs.finish(job, STATUS_ABORTED, error="daemon shutting down")
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- submission (called from handler threads) ----------------------
    def submit_check(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            return {"http": 400, "error": "missing 'source'"}
        checkers = self._resolve_checkers(payload.get("checkers", "all"))
        if checkers is None:
            return {"http": 400, "error": "unknown checker in 'checkers'"}
        session = payload.get("session") or self._anon_session()
        if not isinstance(session, str):
            return {"http": 400, "error": "'session' must be a string"}
        job = self.jobs.create(
            kind="check",
            session=session,
            checkers=checkers,
            payload={
                "source": source,
                "budget": _BudgetSpec.from_payload(payload.get("budget")),
                "trace": payload.get("trace"),
            },
        )
        return self._admit(job)

    def submit_edit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        session_name = payload.get("session")
        if not isinstance(session_name, str) or not session_name:
            return {"http": 400, "error": "missing 'session'"}
        text = payload.get("text")
        if not isinstance(text, str) or not text.strip():
            return {"http": 400, "error": "missing 'text'"}
        session = self.sessions.peek(session_name)
        if session is None or session.program is None:
            return {
                "http": 404,
                "error": f"no warm session {session_name!r} "
                "(run /v1/check with this session name first)",
            }
        try:
            func = parse_single_function(text)
        except (ParseError, ValueError) as exc:
            return {"http": 400, "error": f"bad edit payload: {exc}"}
        wanted = payload.get("function")
        if wanted and wanted != func.name:
            return {
                "http": 400,
                "error": f"edit names function {wanted!r} but text "
                f"defines {func.name!r}",
            }
        if not any(f.name == func.name for f in session.program.functions):
            return {
                "http": 404,
                "error": f"session {session_name!r} has no function "
                f"{func.name!r} (use /v1/check to add functions)",
            }
        checkers = self._resolve_checkers(payload.get("checkers", "all"))
        if checkers is None:
            return {"http": 400, "error": "unknown checker in 'checkers'"}
        job = self.jobs.create(
            kind="edit",
            session=session_name,
            checkers=checkers,
            payload={
                "func": func,
                "budget": _BudgetSpec.from_payload(payload.get("budget")),
                "trace": payload.get("trace"),
            },
        )
        return self._admit(job)

    def _admit(self, job: Job) -> Dict[str, Any]:
        if not self.running:
            self.jobs.finish(job, STATUS_ABORTED, error="daemon shutting down")
            return {"http": 503, "error": "daemon shutting down"}
        if not self.queue.submit(job):
            retry_after = self.queue.retry_after_seconds()
            self.jobs.finish(job, STATUS_ABORTED, error="queue full")
            return {
                "http": 429,
                "error": "queue full",
                "retry_after": retry_after,
                "queue_depth": self.queue.depth(),
            }
        return {"http": 202, "job": job}

    def _anon_session(self) -> str:
        with self._anon_lock:
            self._anon += 1
            return f"anon-{self._anon}"

    @staticmethod
    def _resolve_checkers(raw: Any) -> Optional[List[str]]:
        from repro.cli import CHECKERS

        if raw in ("all", None, ""):
            return list(CHECKERS)
        if isinstance(raw, str):
            raw = [raw]
        if not isinstance(raw, list) or not all(
            isinstance(name, str) and name in CHECKERS for name in raw
        ):
            return None
        # Canonical CHECKERS order, deduplicated — the same order
        # ``repro check --all`` runs in, which byte-identity relies on.
        wanted = set(raw)
        return [name for name in CHECKERS if name in wanted]

    # -- worker pool ---------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.pop(timeout=STREAM_POLL_SECONDS)
            if job is None:
                if not self.running:
                    return
                continue
            try:
                self._run_job(job)
            except Exception:
                # A crash fails the one job, never the worker.
                self.jobs.finish(
                    job, STATUS_FAILED, error=traceback.format_exc(limit=8)
                )
            finally:
                self._observe(job)

    def _run_job(self, job: Job) -> None:
        self.jobs.start(job)
        if self.config.worker_delay_seconds:
            time.sleep(self.config.worker_delay_seconds)
        session = self.sessions.acquire(job.session)
        # The job joins the distributed trace of whoever submitted it:
        # trace_id/parent_span_id come from the request payload (or were
        # minted at accept time), so a client-side trace export shows the
        # daemon's work parented under the client's request span.
        with trace(
            "service.job",
            unit=job.kind,
            job_id=job.job_id,
            session=job.session,
            trace_id=job.trace_id,
            parent_span=job.parent_span_id,
        ):
            with session.lock:
                kind = self._resolve_kind(job, session)
                try:
                    program = self._job_program(job, session)
                except ParseError as exc:
                    self.jobs.finish(
                        job, STATUS_FAILED, error=f"parse error: {exc}"
                    )
                    return
                except KeyError as exc:
                    self.jobs.finish(
                        job,
                        STATUS_FAILED,
                        error=f"session has no function {exc.args[0]!r}",
                    )
                    return
                result = self._analyze(job, session, program, kind)
        self.jobs.finish(job, STATUS_DONE, result=result)

    @staticmethod
    def _resolve_kind(job: Job, session: Session) -> str:
        """cold | warm | edit, decided when the job actually runs (a
        queued-behind-first-check job on the same session is warm)."""
        if job.kind == "edit":
            return "edit"
        return "warm" if session.warm else "cold"

    @staticmethod
    def _job_program(job: Job, session: Session):
        if job.kind == "edit":
            if session.program is None:
                raise KeyError(job.payload["func"].name)
            return apply_function_edit(session.program, job.payload["func"])
        return parse_program(job.payload["source"])

    def _analyze(self, job: Job, session, program, kind: str) -> Dict[str, Any]:
        from repro.cli import CHECKERS

        spec: _BudgetSpec = job.payload.get("budget") or _BudgetSpec()
        budget = ResourceBudget(
            wall_seconds=_tightest(spec.wall_seconds, self.config.deadline),
            max_steps=int(
                _tightest(spec.max_steps, self.config.max_steps) or 0
            )
            or None,
            smt_seconds=_tightest(spec.smt_seconds, self.config.smt_deadline),
        )
        engine = session.analyzer.analyze_program(program, budget=budget)
        stats = session.analyzer.last_stats
        results = [engine.check(CHECKERS[name]()) for name in job.checkers]
        session.adopt(program)

        # Exactly the cmd_check aggregation: dedup diagnostics across
        # checkers, findings < degraded < verify-failure for exit_code.
        reports: List[Dict[str, Any]] = []
        diagnostics: List[Dict[str, Any]] = []
        diag_seen = set()
        findings = 0
        for result in results:
            for diag in result.diagnostics:
                key = (diag.stage, diag.unit, diag.reason, diag.line, diag.detail)
                if key not in diag_seen:
                    diag_seen.add(key)
                    diagnostics.append(diag.as_dict())
            findings += len(result.reports)
            reports.extend(report_as_dict(r) for r in result)
        exit_code = 1 if findings else 0
        if diagnostics:
            exit_code = 3
        if any(d.get("stage") == STAGE_VERIFY for d in diagnostics):
            exit_code = 4
        return {
            "job_id": job.job_id,
            "kind": kind,
            "session": job.session,
            "status": STATUS_DONE,
            "exit_code": exit_code,
            "findings": findings,
            "checkers": list(job.checkers),
            "reports": reports,
            "diagnostics": diagnostics,
            "fingerprint": session.fingerprint,
            "incremental": {
                "analyzed": stats.analyzed,
                "reused": stats.reused,
                "functions": stats.total,
            },
            "findings_by_checker": {
                result.checker: len(result.reports) for result in results
            },
        }

    def _observe(self, job: Job) -> None:
        registry = get_registry()
        kind = job.result["kind"] if job.result else job.kind
        registry.counter(
            "service.requests", "Jobs finished by the daemon"
        ).inc(kind=kind, status=job.status)
        seconds = job.service_seconds
        if seconds:
            registry.histogram(
                "service.request_seconds",
                "Client-visible job latency (queue wait + analysis)",
            ).observe(seconds, kind=kind)
            self.queue.observe_service_seconds(seconds)

    # -- read side -----------------------------------------------------
    def health_doc(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "service": "repro-daemon",
            "port": self.port,
            "running": self.running,
            "workers": self.config.workers,
            "queue_depth": self.queue.depth(),
            "queue_max": self.config.queue_max,
            "sessions": len(self.sessions),
            "jobs": self.jobs.counts(),
            "uptime_seconds": round(
                max(0.0, time.monotonic() - self.started_at), 3
            ),
        }


class _ServiceHandler(_MonitorHandler):
    """Monitor surface plus the ``/v1`` job API."""

    server_version = "repro-service/1"

    @property
    def _service(self) -> ServiceServer:
        return self.server.service  # type: ignore[attr-defined]

    # -- GET -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        try:
            if path.startswith("/v1/jobs/"):
                self._get_job(path[len("/v1/jobs/"):])
            elif path.startswith("/v1/results/"):
                self._get_result(path[len("/v1/results/"):])
            elif path == "/v1/sessions":
                self._send_json({"sessions": self._service.sessions.snapshot()})
            else:
                super().do_GET()
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _healthz(self) -> None:
        self._send_json(self._service.health_doc())

    def _get_job(self, job_id: str) -> None:
        job = self._service.jobs.get(job_id)
        if job is None:
            self._send_json({"error": "no such job", "job_id": job_id}, 404)
            return
        self._send_json(job.as_dict())

    def _get_result(self, job_id: str) -> None:
        job = self._service.jobs.get(job_id)
        if job is None:
            self._send_json({"error": "no such job", "job_id": job_id}, 404)
            return
        self._respond_for(job, waited=job.done.is_set())

    # -- POST ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            payload = self._read_body()
            if payload is None:
                return  # error response already sent
            if self.path == "/v1/check":
                verdict = self._service.submit_check(payload)
            elif self.path == "/v1/edit":
                verdict = self._service.submit_edit(payload)
            else:
                self._send_json({"error": "not found", "path": self.path}, 404)
                return
            self._finish_submit(payload, verdict)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _read_body(self) -> Optional[Dict[str, Any]]:
        limit = self._service.config.max_body_bytes
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            self._send_json({"error": "bad Content-Length"}, 400)
            return None
        if length > limit:
            self._send_json(
                {"error": f"body exceeds {limit} bytes", "limit": limit}, 413
            )
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json({"error": f"bad JSON body: {exc}"}, 400)
            return None
        if not isinstance(payload, dict):
            self._send_json({"error": "body must be a JSON object"}, 400)
            return None
        return payload

    def _finish_submit(self, payload: Dict[str, Any], verdict: Dict[str, Any]) -> None:
        status = verdict.pop("http")
        job = verdict.pop("job", None)
        if job is None:
            if status == 429:
                self.send_response(429)
                body = (json.dumps(verdict, sort_keys=True) + "\n").encode("utf-8")
                self.send_header("Retry-After", str(verdict["retry_after"]))
                self.send_header("Content-Type", "application/json; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._send_json(verdict, status)
            return
        wait = payload.get("wait", True)
        if wait:
            timeout = float(payload.get("wait_seconds", DEFAULT_WAIT_SECONDS))
            waited = job.done.wait(timeout=timeout)
        else:
            waited = False
        self._respond_for(job, waited=waited)

    def _respond_for(self, job: Job, waited: bool) -> None:
        """202+job doc while pending, result doc when done, job doc with
        the error when failed/aborted."""
        if not waited and not job.done.is_set():
            self._send_json(job.as_dict(), 202)
            return
        if job.status == STATUS_DONE and job.result is not None:
            self._send_json(job.result)
        else:
            self._send_json(job.as_dict())
