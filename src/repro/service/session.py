"""Warm in-process session store for the analysis daemon.

A **session** is the daemon-resident analysis state for one program: the
parsed AST of its last accepted version plus an
:class:`~repro.core.incremental.IncrementalAnalyzer` holding every
prepared per-function artifact (transformed SSA, points-to results,
SEG, connector signature).  Artifacts are keyed by the existing
AST x callee-interface fingerprints (:mod:`repro.cache.keys`), so a
re-check after an edit re-prepares exactly the functions the edit
invalidated; everything else is served from memory.  When the daemon
runs with ``--cache-dir``, the analyzer falls through to the on-disk
:class:`~repro.cache.SummaryStore` on an in-memory miss, so even a
freshly created session warm-starts from artifacts a previous process
(or a ``repro cache warm``) persisted.

Sessions are single-writer: each carries a lock the worker holds for
the duration of one job, so two jobs naming the same session serialize
while jobs on different sessions run concurrently.  The cache is LRU:
past ``max_sessions``, the least recently used *idle* session is
evicted (a locked session is never evicted mid-job).

Metric: ``service.sessions`` gauge (resident sessions).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.core.engine import EngineConfig
from repro.core.incremental import IncrementalAnalyzer
from repro.lang import ast
from repro.lang.parser import ParseError, parse_program
from repro.lang.pretty import pretty_program
from repro.obs.history import fingerprint_text
from repro.obs.metrics import get_registry


class Session:
    """One program's warm analysis state inside the daemon."""

    def __init__(self, name: str, config: EngineConfig, store=None) -> None:
        self.name = name
        self.lock = threading.Lock()
        self.analyzer = IncrementalAnalyzer(config, store=store)
        self.program: Optional[ast.Program] = None
        self.fingerprint = ""
        self.checks = 0
        self.last_used = time.monotonic()

    @property
    def warm(self) -> bool:
        return self.analyzer.warm and self.program is not None

    def adopt(self, program: ast.Program) -> None:
        """Record ``program`` as the session's current version.

        Called only after a successful analysis, so a failed request
        (parse error, crash) leaves the session at its last good state."""
        self.program = program
        self.fingerprint = fingerprint_text(pretty_program(program))
        self.checks += 1

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "warm": self.warm,
            "functions": len(self.program.functions) if self.program else 0,
            "cached_functions": self.analyzer.cached_functions,
            "fingerprint": self.fingerprint,
            "checks": self.checks,
        }


class SessionCache:
    """Thread-safe LRU map of session name -> :class:`Session`."""

    def __init__(
        self, config: EngineConfig, store=None, max_sessions: int = 32
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.config = config
        self.store = store
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}

    def acquire(self, name: str) -> Session:
        """The named session, created on first use.  The caller must
        take ``session.lock`` before analyzing with it."""
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                session = Session(name, self.config, store=self.store)
                self._sessions[name] = session
                self._evict_locked()
            session.last_used = time.monotonic()
            self._publish_locked()
            return session

    def peek(self, name: str) -> Optional[Session]:
        """The named session if resident (no creation, no LRU touch)."""
        with self._lock:
            return self._sessions.get(name)

    def snapshot(self) -> list:
        with self._lock:
            ordered = sorted(
                self._sessions.values(), key=lambda s: -s.last_used
            )
            return [session.as_dict() for session in ordered]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    def _evict_locked(self) -> None:
        while len(self._sessions) > self.max_sessions:
            idle = [
                (session.last_used, name)
                for name, session in self._sessions.items()
                if not session.lock.locked()
            ]
            if not idle:
                return  # every session mid-job; retry on the next acquire
            _, victim = min(idle)
            del self._sessions[victim]

    def _publish_locked(self) -> None:
        get_registry().gauge(
            "service.sessions", "Warm analysis sessions resident in the daemon"
        ).set(len(self._sessions))


def parse_single_function(text: str) -> ast.FuncDef:
    """Parse the text of exactly one function definition (the ``/v1/edit``
    payload).  Raises :class:`ParseError` on malformed input and
    ``ValueError`` when the text holds zero or several functions."""
    program = parse_program(text)
    if len(program.functions) != 1:
        raise ValueError(
            f"edit payload must contain exactly one function, "
            f"got {len(program.functions)}"
        )
    return program.functions[0]
