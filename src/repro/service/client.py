"""Stdlib HTTP client for the analysis daemon.

Used by the ``repro client`` CLI subcommand, the load generator, tests
and CI — anything that talks to a running ``repro daemon``.  One class,
no dependencies beyond :mod:`http.client`.

``ServiceError`` carries the HTTP status and the server's JSON error
document; a 429 additionally exposes ``retry_after`` so callers can
implement the backoff the daemon asked for.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import get_tracer


def _trace_context() -> Optional[Dict[str, Any]]:
    """The caller's trace context, when tracing is on.

    Attached to ``check``/``edit`` payloads so the daemon's
    ``service.job`` span joins the client's trace — the job's worker-side
    spans then parent under whatever span was open when the request was
    made (cross-process critical paths read end to end).
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    context: Dict[str, Any] = {"trace_id": tracer.trace_id}
    stack = tracer._stack()
    if stack:
        context["parent_span_id"] = stack[-1]
    return context


class ServiceError(Exception):
    """A non-2xx daemon response."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        self.status = status
        self.payload = payload
        self.retry_after = int(payload.get("retry_after", 0) or 0)
        super().__init__(
            f"HTTP {status}: {payload.get('error', 'request failed')}"
        )

    @property
    def overloaded(self) -> bool:
        return self.status == 429


class ServiceClient:
    """Talks to one daemon at ``host:port`` (a new connection per
    request — the daemon is HTTP/1.0, no keep-alive)."""

    def __init__(
        self, port: int, host: str = "127.0.0.1", timeout: float = 600.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- raw transport -------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read().decode("utf-8", "replace")
            try:
                document = json.loads(raw) if raw.strip() else {}
            except json.JSONDecodeError:
                document = {"error": raw.strip()}
            if response.status == 429 and "retry_after" not in document:
                document["retry_after"] = response.getheader("Retry-After", "1")
            return response.status, document
        finally:
            conn.close()

    def _checked(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        status, document = self.request(method, path, payload)
        if status >= 400:
            raise ServiceError(status, document)
        return document

    # -- API surface ---------------------------------------------------
    def check(
        self,
        source: str,
        checkers: Any = "all",
        session: str = "",
        wait: bool = True,
        budget: Optional[Dict[str, Any]] = None,
        wait_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "source": source,
            "checkers": checkers,
            "wait": wait,
        }
        if session:
            payload["session"] = session
        if budget:
            payload["budget"] = budget
        if wait_seconds is not None:
            payload["wait_seconds"] = wait_seconds
        context = _trace_context()
        if context:
            payload["trace"] = context
        return self._checked("POST", "/v1/check", payload)

    def edit(
        self,
        session: str,
        text: str,
        checkers: Any = "all",
        function: str = "",
        wait: bool = True,
        budget: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "session": session,
            "text": text,
            "checkers": checkers,
            "wait": wait,
        }
        if function:
            payload["function"] = function
        if budget:
            payload["budget"] = budget
        context = _trace_context()
        if context:
            payload["trace"] = context
        return self._checked("POST", "/v1/edit", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/v1/results/{job_id}")

    def wait_result(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``/v1/results`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status, document = self.request("GET", f"/v1/results/{job_id}")
            if status == 200:
                return document
            if status not in (202,):
                raise ServiceError(status, document)
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still pending after {timeout}s")
            time.sleep(poll)

    def health(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def sessions(self) -> List[Dict[str, Any]]:
        return self._checked("GET", "/v1/sessions").get("sessions", [])

    def metrics_text(self) -> str:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            return response.read().decode("utf-8", "replace")
        finally:
            conn.close()
