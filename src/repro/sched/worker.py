"""Worker-process side of the parallel scheduler.

Each task prepares exactly one function (stage 1-3: connector
transformation, intraprocedural points-to, SEG build) from a pickled
``(name, FuncDef AST, usable callee signatures, wave index, pta tier)``
payload
and ships back a pickled outcome tuple:

- ``("ok", name, PreparedFunction, SEG | None, seg_error, registry,
  spans)`` — the function prepared; ``seg_error`` is set (and the SEG
  ``None``) when SEG construction failed, in which case the parent
  rebuilds it under its own quarantine so serial semantics hold;
- ``("error", name, exc_type, message, line, registry, spans)`` — the
  preparation itself raised; the parent converts this into the same
  ``prepare`` quarantine diagnostic a serial run records.

Python exceptions therefore *never* cross the process boundary as
exceptions — only process death (segfault, ``os._exit``, OOM-kill) is
left for the parent's broken-pool protocol to detect.

Each task runs under a fresh metrics registry and tracer; both are
returned in the outcome so the parent can merge worker-side counters
(``pta.*``, ``seg.*``) and spans (``prepare.fn``, ``seg.build``) into
the run's own registry — the per-process globals of ``repro.obs`` are
never shared between processes.

The ``sched`` fault site (``--fault sched:<fn>`` / ``REPRO_FAULTS``)
kills the worker process outright via ``os._exit`` — deliberately not a
Python exception — so tests and CI can prove the parent's crash
quarantine path fires on real process death.  ``kill-worker:<wave>``
does the same keyed by the call-graph wave index the payload carries,
so crash/resume tests can take down every worker of one specific wave
and prove the run journal left a consistent prefix behind.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Tuple

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Tracer, set_tracer, trace
from repro.robust.faults import active_plan, fault_point, install_faults
from repro.robust.quarantine import FATAL
from repro.smt.linear_solver import LinearSolver

#: Worker-process tracing switch, set by :func:`init_worker`.
_TRACE_ENABLED = False


def init_worker(fault_spec: str, trace_enabled: bool) -> None:
    """Pool initializer: arm fault injection and tracing in this worker.

    With the ``fork`` start method the worker inherits the parent's
    globals anyway; with ``spawn`` (macOS/Windows default) this is what
    re-installs them."""
    global _TRACE_ENABLED
    _TRACE_ENABLED = bool(trace_enabled)
    if fault_spec:
        install_faults(fault_spec)


def prepare_task(payload: bytes) -> bytes:
    """Prepare one function; see the module docstring for the protocol."""
    from repro.core.pipeline import prepare_function
    from repro.seg.builder import build_seg

    name, func_ast, usable, wave_index, pta_tier = pickle.loads(payload)

    # Simulated hard crash: die like a segfaulting worker would, without
    # unwinding — the parent must survive via the broken-pool protocol.
    # ``sched`` is keyed by function name, ``kill-worker`` by wave index.
    plan = active_plan()
    if plan is not None and (
        plan.should_fire("sched", name)
        or plan.should_fire("kill-worker", str(wave_index))
    ):
        os._exit(3)

    registry = set_registry(MetricsRegistry())
    set_tracer(Tracer(enabled=_TRACE_ENABLED))
    outcome: Tuple[Any, ...]
    try:
        with trace("sched.worker", unit=name, pid=os.getpid()):
            fault_point("prepare", name)
            with trace("prepare.fn", unit=name):
                prepared = prepare_function(
                    func_ast, usable, LinearSolver(), pta_tier=pta_tier
                )
            seg = None
            seg_error = ""
            try:
                seg = build_seg(prepared)
            except FATAL:
                raise
            except Exception as error:
                seg_error = f"{type(error).__name__}: {error}"
        outcome = ("ok", name, prepared, seg, seg_error, registry, _spans())
    except FATAL:
        raise
    except Exception as error:
        outcome = (
            "error",
            name,
            type(error).__name__,
            str(error),
            getattr(error, "line", 0) or 0,
            registry,
            _spans(),
        )
    try:
        return pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:  # unpicklable artifact: degrade to error
        fallback = (
            "error",
            name,
            type(error).__name__,
            f"result not picklable: {error}",
            0,
            MetricsRegistry(),
            [],
        )
        return pickle.dumps(fallback, protocol=pickle.HIGHEST_PROTOCOL)


def _spans():
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    return list(tracer.spans) if tracer.enabled else []
