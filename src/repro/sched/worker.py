"""Worker-process side of the parallel scheduler.

Each task prepares exactly one function (stage 1-3: connector
transformation, intraprocedural points-to, SEG build) from a pickled
``(name, FuncDef AST, usable callee signatures, wave index, pta tier,
trace context)`` payload — the trace context is a ``(trace_id,
parent_span_id, dispatched_at)`` triple (or ``None``) naming the wave
span that submitted the task — and ships back a pickled outcome tuple:

- ``("ok", name, PreparedFunction, SEG | None, seg_error, registry,
  spans, timings)`` — the function prepared; ``seg_error`` is set (and
  the SEG ``None``) when SEG construction failed, in which case the
  parent rebuilds it under its own quarantine so serial semantics hold;
- ``("error", name, exc_type, message, line, registry, spans,
  timings)`` — the preparation itself raised; the parent converts this
  into the same ``prepare`` quarantine diagnostic a serial run records.

``timings`` attributes the dispatch overhead the parent cannot see:
``queue_seconds`` (submission to pickup, measured against
``dispatched_at`` — valid under ``fork``, where parent and child share
the ``perf_counter`` origin), ``deserialize_seconds`` (payload
unpickling), ``warmup_seconds`` (first-task import cost in this worker
process), and ``task_seconds`` (the actual compute).  The same values
land as ``sched.dispatch.*`` counters in the returned registry so the
parent's plain ``merge`` aggregates them across workers.

Python exceptions therefore *never* cross the process boundary as
exceptions — only process death (segfault, ``os._exit``, OOM-kill) is
left for the parent's broken-pool protocol to detect.

Each task runs under a fresh metrics registry and tracer; both are
returned in the outcome so the parent can merge worker-side counters
(``pta.*``, ``seg.*``) and spans (``prepare.fn``, ``seg.build``) into
the run's own registry — the per-process globals of ``repro.obs`` are
never shared between processes.

The ``sched`` fault site (``--fault sched:<fn>`` / ``REPRO_FAULTS``)
kills the worker process outright via ``os._exit`` — deliberately not a
Python exception — so tests and CI can prove the parent's crash
quarantine path fires on real process death.  ``kill-worker:<wave>``
does the same keyed by the call-graph wave index the payload carries,
so crash/resume tests can take down every worker of one specific wave
and prove the run journal left a consistent prefix behind.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any, Dict, Tuple

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Tracer, set_tracer, trace
from repro.robust.faults import active_plan, fault_point, install_faults
from repro.robust.quarantine import FATAL
from repro.smt.linear_solver import LinearSolver

#: Worker-process tracing switch, set by :func:`init_worker`.
_TRACE_ENABLED = False

#: Set once the heavy pipeline imports have been paid in this process;
#: the first task reports that cost as ``warmup_seconds``.
_WARMED = False


def init_worker(fault_spec: str, trace_enabled: bool) -> None:
    """Pool initializer: arm fault injection and tracing in this worker.

    With the ``fork`` start method the worker inherits the parent's
    globals anyway; with ``spawn`` (macOS/Windows default) this is what
    re-installs them."""
    global _TRACE_ENABLED
    _TRACE_ENABLED = bool(trace_enabled)
    if fault_spec:
        install_faults(fault_spec)


def prepare_task(payload: bytes) -> bytes:
    """Prepare one function; see the module docstring for the protocol."""
    global _WARMED

    picked_up = time.perf_counter()
    warmup_seconds = 0.0
    if not _WARMED:
        warm_start = time.perf_counter()
        from repro.core import pipeline as _pipeline  # noqa: F401
        from repro.seg import builder as _builder  # noqa: F401

        warmup_seconds = time.perf_counter() - warm_start
        _WARMED = True
    from repro.core.pipeline import prepare_function
    from repro.seg.builder import build_seg

    deser_start = time.perf_counter()
    task = pickle.loads(payload)
    deserialize_seconds = time.perf_counter() - deser_start
    if len(task) >= 6:
        name, func_ast, usable, wave_index, pta_tier, ctx = task[:6]
    else:  # pre-attribution payload (e.g. a resumed older journal)
        name, func_ast, usable, wave_index, pta_tier = task
        ctx = None
    trace_id, parent_span_id, dispatched_at = ctx if ctx else ("", None, 0.0)
    queue_seconds = 0.0
    if dispatched_at:
        # Only meaningful when parent and worker share a clock origin
        # (``fork``); under ``spawn`` the delta can go negative — drop it.
        queue_seconds = max(0.0, picked_up - dispatched_at)

    # Simulated hard crash: die like a segfaulting worker would, without
    # unwinding — the parent must survive via the broken-pool protocol.
    # ``sched`` is keyed by function name, ``kill-worker`` by wave index.
    plan = active_plan()
    if plan is not None and (
        plan.should_fire("sched", name)
        or plan.should_fire("kill-worker", str(wave_index))
    ):
        os._exit(3)

    registry = set_registry(MetricsRegistry())
    set_tracer(Tracer(enabled=_TRACE_ENABLED, trace_id=trace_id))
    outcome: Tuple[Any, ...]
    task_start = time.perf_counter()
    try:
        with trace(
            "sched.worker",
            unit=name,
            pid=os.getpid(),
            trace_id=trace_id,
            parent_span=parent_span_id,
        ) as span:
            fault_point("prepare", name)
            with trace("prepare.fn", unit=name):
                prepared = prepare_function(
                    func_ast, usable, LinearSolver(), pta_tier=pta_tier
                )
            seg = None
            seg_error = ""
            try:
                seg = build_seg(prepared)
            except FATAL:
                raise
            except Exception as error:
                seg_error = f"{type(error).__name__}: {error}"
            span.set(queue_seconds=round(queue_seconds, 6))
        timings = _timings(
            registry,
            task_seconds=time.perf_counter() - task_start,
            queue_seconds=queue_seconds,
            warmup_seconds=warmup_seconds,
            deserialize_seconds=deserialize_seconds,
        )
        outcome = ("ok", name, prepared, seg, seg_error, registry, _spans(), timings)
    except FATAL:
        raise
    except Exception as error:
        timings = _timings(
            registry,
            task_seconds=time.perf_counter() - task_start,
            queue_seconds=queue_seconds,
            warmup_seconds=warmup_seconds,
            deserialize_seconds=deserialize_seconds,
        )
        outcome = (
            "error",
            name,
            type(error).__name__,
            str(error),
            getattr(error, "line", 0) or 0,
            registry,
            _spans(),
            timings,
        )
    try:
        return pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:  # unpicklable artifact: degrade to error
        fallback = (
            "error",
            name,
            type(error).__name__,
            f"result not picklable: {error}",
            0,
            MetricsRegistry(),
            [],
            dict(timings),
        )
        return pickle.dumps(fallback, protocol=pickle.HIGHEST_PROTOCOL)


def _timings(
    registry: MetricsRegistry,
    *,
    task_seconds: float,
    queue_seconds: float,
    warmup_seconds: float,
    deserialize_seconds: float,
) -> Dict[str, float]:
    """Assemble the per-task timing dict and mirror it into counters.

    The counters ride the registry the parent already merges, so the
    run-wide ``sched.dispatch.*`` totals aggregate across workers with
    no extra protocol.
    """
    timings = {
        "task_seconds": task_seconds,
        "queue_seconds": queue_seconds,
        "warmup_seconds": warmup_seconds,
        "deserialize_seconds": deserialize_seconds,
    }
    registry.counter(
        "sched.dispatch.queue_seconds", "Task wait between submission and pickup"
    ).inc(queue_seconds)
    registry.counter(
        "sched.dispatch.warmup_seconds", "First-task import cost per worker process"
    ).inc(warmup_seconds)
    registry.counter(
        "sched.dispatch.deserialize_seconds", "Worker-side payload unpickling"
    ).inc(deserialize_seconds)
    return timings


def _spans():
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    return list(tracer.spans) if tracer.enabled else []
