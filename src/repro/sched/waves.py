"""Call-graph condensation into parallel waves.

The bottom-up phase is embarrassingly parallel *across* call-graph SCCs
at the same depth: a function's stage 1-3 artifacts depend only on its
own AST plus the connector signatures of its (non-recursive) callees,
so once every callee SCC is prepared, all SCCs whose dependencies are
satisfied can be prepared concurrently.

``scc_waves`` condenses the call graph (Tarjan SCCs, already computed
bottom-up by :class:`~repro.ir.callgraph.CallGraph`) and assigns each
SCC a *wave*: ``wave(S) = 1 + max(wave(T) for callee SCCs T)``, leaves
at wave 0.  Every function in wave *k* can be prepared as soon as waves
``< k`` are merged — that is the scheduler's barrier.

Determinism: SCCs within a wave keep their bottom-up (Tarjan) order and
members within an SCC are sorted, so flattening the waves visits
functions in a reproducible order.  Note this *wave order* is only used
for dispatch; the merged module always presents functions in the exact
serial ``bottom_up_order`` so downstream passes (and reports) are
byte-identical to a ``--jobs 1`` run.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.callgraph import CallGraph


def scc_waves(callgraph: CallGraph) -> List[List[List[str]]]:
    """Waves of SCCs: ``waves[k]`` lists the SCCs whose callee SCCs all
    live in waves ``< k``.  Each SCC is a sorted list of member names."""
    sccs = callgraph.sccs()  # bottom-up: callees before callers
    scc_of: Dict[str, int] = {}
    for index, scc in enumerate(sccs):
        for member in scc:
            scc_of[member] = index

    level: Dict[int, int] = {}
    for index, scc in enumerate(sccs):
        depth = 0
        for member in scc:
            for callee in callgraph.callees.get(member, ()):
                target = scc_of.get(callee)
                if target is None or target == index:
                    continue  # external or same-SCC (recursion)
                # Bottom-up order guarantees callee SCCs come earlier.
                depth = max(depth, level[target] + 1)
        level[index] = depth

    if not sccs:
        return []
    waves: List[List[List[str]]] = [[] for _ in range(max(level.values()) + 1)]
    for index, scc in enumerate(sccs):
        waves[level[index]].append(sorted(scc))
    return waves


def wave_sizes(waves: List[List[List[str]]]) -> List[int]:
    """Functions per wave (for metrics and the docs' examples)."""
    return [sum(len(scc) for scc in wave) for wave in waves]
