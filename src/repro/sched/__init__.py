"""repro.sched — parallel bottom-up scheduler.

Pinpoint's compositional design (paper §3.3) makes the expensive half of
the run embarrassingly parallel: a function's stage 1-3 artifacts —
transformed SSA, intraprocedural points-to, connector signature, SEG —
depend only on its own AST and its non-recursive callees' connector
signatures.  This package condenses the call graph into SCC *waves*
(:mod:`repro.sched.waves`), prepares each wave's functions on a process
pool (:mod:`repro.sched.pool` / :mod:`repro.sched.worker`), and merges
the results deterministically (:mod:`repro.sched.scheduler`): a
``--jobs N`` run emits byte-identical reports to ``--jobs 1``.

The interprocedural summary/checker pass stays serial — it is cheap
relative to preparation and its context numbering is inherently
sequential — which is precisely what makes parallel preparation safe.

``--jobs`` on the CLI, or the ``REPRO_JOBS`` environment variable;
see :func:`resolve_jobs` and ``docs/parallelism.md``.
"""

from __future__ import annotations

import os

from repro.sched.pool import WorkerCrash, WorkerPool
from repro.sched.scheduler import prepare_program
from repro.sched.waves import scc_waves, wave_sizes

#: Environment fallback for ``--jobs``.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(explicit=None) -> int:
    """Effective worker count: CLI flag > ``REPRO_JOBS`` env var > 1.

    Unparseable or non-positive values degrade to 1 (serial) rather
    than failing the run."""
    if explicit:
        try:
            return max(1, int(explicit))
        except (TypeError, ValueError):
            return 1
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            return 1
    return 1


__all__ = [
    "JOBS_ENV",
    "WorkerCrash",
    "WorkerPool",
    "prepare_program",
    "resolve_jobs",
    "scc_waves",
    "wave_sizes",
]
