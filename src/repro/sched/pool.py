"""Crash-contained process pool for the wave scheduler.

``ProcessPoolExecutor`` (not ``multiprocessing.Pool``): when a worker
process dies — segfault, OOM-kill, an injected ``sched``/``kill-worker``
fault calling ``os._exit`` — the executor breaks *promptly* with
``BrokenProcessPool`` instead of hanging on a lost result.

Failure handling runs on the unified supervision policy of
:mod:`repro.robust.retry` (capped exponential backoff, deterministic
jitter, per-function budgets) instead of the ad-hoc immediate
rebuild-and-resubmit this module used to hard-code.  The escalation
ladder per task:

1. **retry** — the task goes back into a (rebuilt) shared pool after a
   deterministic backoff; a task that merely shared a broken pool with
   a killer, or hit a transient stall, succeeds here;
2. **isolate** — the task runs in a fresh **single-worker** executor,
   so a deterministic killer takes down only its own pool;
3. **quarantine** — the task is reported as a :class:`WorkerCrash` for
   the scheduler's ``sched``-stage quarantine.

When the pool breaks, only the task whose future raised is charged a
failure; tasks that were merely queued behind it are resubmitted
uncharged, so an innocent can never exhaust its budget on someone
else's crashes.  A per-task ``timeout`` (seconds) walks the same
ladder; the pool is rebuilt first because the hung process still
occupies a slot.  The abandoned worker keeps running until it finishes
or the parent exits — Python offers no portable way to kill a pool
worker mid-task — so timeouts trade a leaked process for forward
progress.

Every retry and isolation shows up in the ``sched.retries`` counter
(labelled ``site=pool``, ``kind=crash|timeout``) alongside the existing
``sched.pool_rebuilds`` / ``sched.worker_crashes`` /
``sched.worker_timeouts`` counters, so supervised recovery is visible
in ``--stats`` and Prometheus output.

Results travel as opaque ``bytes`` (the worker pickles its own outcome)
so a result the pool cannot unpickle can never poison the parent; the
scheduler decodes them.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.robust.faults import active_plan
from repro.robust.retry import (
    ACTION_ISOLATE,
    ACTION_RETRY,
    RetryPolicy,
    RetrySupervisor,
)
from repro.sched import worker as _worker

_log = get_logger("sched.pool")

#: Executor exceptions that mean "the pool itself is dead".
_POOL_DEAD = (BrokenProcessPool, concurrent.futures.BrokenExecutor, OSError)


class WorkerCrash:
    """Marker result: the worker process died or timed out on this task."""

    __slots__ = ("detail", "timed_out")

    def __init__(self, detail: str, timed_out: bool = False) -> None:
        self.detail = detail
        self.timed_out = timed_out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerCrash({self.detail!r})"


class WorkerPool:
    """A pool of worker processes running one task function.

    ``run_wave`` takes ``(name, payload)`` pairs and returns a dict
    mapping each name to either the task's ``bytes`` result or a
    :class:`WorkerCrash`.  It never raises for worker-side failures.
    """

    def __init__(
        self,
        jobs: int,
        task_fn=None,
        timeout: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.task_fn = task_fn or _worker.prepare_task
        self.timeout = timeout if timeout and timeout > 0 else None
        self.policy = policy or RetryPolicy()
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _initargs(self) -> Tuple[str, bool]:
        plan = active_plan()
        return (plan.spec if plan is not None else "", get_tracer().enabled)

    def _make_executor(self, workers: int):
        # fork where available: workers inherit the parsed program and
        # installed fault plan for free.  The initializer re-installs
        # both trace enablement and faults so spawn platforms work too.
        method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(method),
            initializer=_worker.init_worker,
            initargs=self._initargs(),
        )

    def _ensure(self):
        if self._executor is None:
            self._executor = self._make_executor(self.jobs)
        return self._executor

    def _discard(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            get_registry().counter(
                "sched.pool_rebuilds", "Worker pools abandoned after crash/timeout"
            ).inc()
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - shutdown races
                pass

    def close(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def run_wave(self, tasks: List[Tuple[str, bytes]]) -> Dict[str, object]:
        """Run one wave; every task yields ``bytes`` or a WorkerCrash."""
        results: Dict[str, object] = {}
        queue = list(tasks)
        supervisor = RetrySupervisor(self.policy, site="pool")
        while queue:
            executor = self._ensure()
            try:
                batch = [
                    (name, payload, executor.submit(self.task_fn, payload))
                    for name, payload in queue
                ]
            except _POOL_DEAD:
                # Broken before we could even submit: charge every
                # queued task one failure and walk each up the ladder.
                self._discard()
                requeue: List[Tuple[str, bytes]] = []
                for name, payload in queue:
                    self._escalate(name, payload, "crash", supervisor,
                                   results, requeue)
                queue = requeue
                continue
            queue = []
            broken = False
            for index, (name, payload, future) in enumerate(batch):
                if broken:
                    # The pool died under an earlier task of this batch;
                    # everyone queued behind it is resubmitted uncharged.
                    queue.append((name, payload))
                    continue
                try:
                    results[name] = future.result(self.timeout)
                except concurrent.futures.TimeoutError:
                    # The hung worker still holds a slot; rebuild the
                    # pool before the ladder decides this task's fate.
                    get_registry().counter(
                        "sched.worker_timeouts",
                        "Worker tasks abandoned after timeout",
                    ).inc()
                    self._discard()
                    self._escalate(name, payload, "timeout", supervisor,
                                   results, queue)
                    queue.extend((n, p) for n, p, _ in batch[index + 1:])
                    break
                except _POOL_DEAD:
                    # Only the task whose future raised is charged — any
                    # worker's death breaks the whole pool, but walking
                    # the suspect up the ladder converges on the killer
                    # while innocents succeed on their uncharged resubmit
                    # or their own isolated attempt.
                    _log.warning("worker pool broke", task=name)
                    self._discard()
                    broken = True
                    self._escalate(name, payload, "crash", supervisor,
                                   results, queue)
        return results

    def _escalate(
        self,
        name: str,
        payload: bytes,
        kind: str,
        supervisor: RetrySupervisor,
        results: Dict[str, object],
        requeue: List[Tuple[str, bytes]],
    ) -> None:
        """Walk one failed task up the retry → isolate → quarantine
        ladder (the supervisor sleeps the backoff before returning)."""
        action = supervisor.record_failure(name, kind)
        if action == ACTION_RETRY:
            requeue.append((name, payload))
        elif action == ACTION_ISOLATE:
            results[name] = self._run_isolated(name, payload)
        else:
            results[name] = self._crash(name, kind)

    def _run_isolated(self, name: str, payload: bytes) -> object:
        executor = self._make_executor(1)
        try:
            return executor.submit(self.task_fn, payload).result(self.timeout)
        except concurrent.futures.TimeoutError:
            get_registry().counter(
                "sched.worker_timeouts", "Worker tasks abandoned after timeout"
            ).inc()
            return self._crash(name, "timeout")
        except _POOL_DEAD:
            return self._crash(name, "crash")
        finally:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - shutdown races
                pass

    def _crash(self, name: str, kind: str) -> WorkerCrash:
        if kind == "timeout":
            return WorkerCrash(
                f"worker timed out after {self.timeout}s preparing {name!r}",
                timed_out=True,
            )
        get_registry().counter(
            "sched.worker_crashes", "Worker processes that died mid-task"
        ).inc()
        return WorkerCrash(f"worker process died preparing {name!r}")
