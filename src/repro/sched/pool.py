"""Crash-contained process pool for the wave scheduler.

``ProcessPoolExecutor`` (not ``multiprocessing.Pool``): when a worker
process dies — segfault, OOM-kill, an injected ``sched`` fault calling
``os._exit`` — the executor breaks *promptly* with
``BrokenProcessPool`` instead of hanging on a lost result.

The containment protocol on a broken pool: every task whose result was
not yet collected is retried in a fresh **single-worker** executor.  A
deterministic killer takes down only its own isolated pool (and is
reported as a :class:`WorkerCrash` for the scheduler to quarantine);
innocent tasks that merely shared the broken pool succeed on retry.
This mirrors the repo's quarantine discipline — one bad unit of work
never takes down the run, and it costs nothing on the healthy path.

A per-task ``timeout`` (seconds) turns a hung worker into a
:class:`WorkerCrash` too; the pool is rebuilt because the hung process
still occupies a slot.  The abandoned worker keeps running until it
finishes or the parent exits — Python offers no portable way to kill a
pool worker mid-task — so timeouts trade a leaked process for forward
progress.

Results travel as opaque ``bytes`` (the worker pickles its own outcome)
so a result the pool cannot unpickle can never poison the parent; the
scheduler decodes them.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.robust.faults import active_plan
from repro.sched import worker as _worker

_log = get_logger("sched.pool")

#: Executor exceptions that mean "the pool itself is dead".
_POOL_DEAD = (BrokenProcessPool, concurrent.futures.BrokenExecutor, OSError)


class WorkerCrash:
    """Marker result: the worker process died or timed out on this task."""

    __slots__ = ("detail", "timed_out")

    def __init__(self, detail: str, timed_out: bool = False) -> None:
        self.detail = detail
        self.timed_out = timed_out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerCrash({self.detail!r})"


class WorkerPool:
    """A pool of worker processes running one task function.

    ``run_wave`` takes ``(name, payload)`` pairs and returns a dict
    mapping each name to either the task's ``bytes`` result or a
    :class:`WorkerCrash`.  It never raises for worker-side failures.
    """

    def __init__(
        self,
        jobs: int,
        task_fn=None,
        timeout: Optional[float] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.task_fn = task_fn or _worker.prepare_task
        self.timeout = timeout if timeout and timeout > 0 else None
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _initargs(self) -> Tuple[str, bool]:
        plan = active_plan()
        return (plan.spec if plan is not None else "", get_tracer().enabled)

    def _make_executor(self, workers: int):
        # fork where available: workers inherit the parsed program and
        # installed fault plan for free.  The initializer re-installs
        # both trace enablement and faults so spawn platforms work too.
        method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(method),
            initializer=_worker.init_worker,
            initargs=self._initargs(),
        )

    def _ensure(self):
        if self._executor is None:
            self._executor = self._make_executor(self.jobs)
        return self._executor

    def _discard(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            get_registry().counter(
                "sched.pool_rebuilds", "Worker pools abandoned after crash/timeout"
            ).inc()
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - shutdown races
                pass

    def close(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def run_wave(self, tasks: List[Tuple[str, bytes]]) -> Dict[str, object]:
        """Run one wave; every task yields ``bytes`` or a WorkerCrash."""
        results: Dict[str, object] = {}
        queue = list(tasks)
        while queue:
            executor = self._ensure()
            try:
                batch = [
                    (name, payload, executor.submit(self.task_fn, payload))
                    for name, payload in queue
                ]
            except _POOL_DEAD:
                # Broken before we could even submit: isolate everything.
                self._discard()
                for name, payload in queue:
                    results[name] = self._run_isolated(name, payload)
                return results
            queue = []
            broken = False
            for index, (name, payload, future) in enumerate(batch):
                if broken:
                    results[name] = self._run_isolated(name, payload)
                    continue
                try:
                    results[name] = future.result(self.timeout)
                except concurrent.futures.TimeoutError:
                    results[name] = self._timeout_crash(name)
                    # The hung worker still holds a slot; rebuild the pool
                    # and re-dispatch the not-yet-collected tasks on it.
                    self._discard()
                    queue = [(n, p) for n, p, _ in batch[index + 1 :]]
                    break
                except _POOL_DEAD:
                    # The pool died.  The task whose future raised may be
                    # innocent (any worker's death breaks the whole pool),
                    # so it and every later task get an isolated retry:
                    # the killer dies again alone, innocents succeed.
                    _log.warning("worker pool broke", task=name)
                    self._discard()
                    broken = True
                    results[name] = self._run_isolated(name, payload)
        return results

    def _run_isolated(self, name: str, payload: bytes) -> object:
        executor = self._make_executor(1)
        try:
            return executor.submit(self.task_fn, payload).result(self.timeout)
        except concurrent.futures.TimeoutError:
            return self._timeout_crash(name)
        except _POOL_DEAD:
            get_registry().counter(
                "sched.worker_crashes", "Worker processes that died mid-task"
            ).inc()
            return WorkerCrash(f"worker process died preparing {name!r}")
        finally:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - shutdown races
                pass

    def _timeout_crash(self, name: str) -> WorkerCrash:
        get_registry().counter(
            "sched.worker_timeouts", "Worker tasks abandoned after timeout"
        ).inc()
        return WorkerCrash(
            f"worker timed out after {self.timeout}s preparing {name!r}",
            timed_out=True,
        )
