"""Wave scheduler: parallel + cached bottom-up preparation.

``prepare_program`` is the parallel/cached counterpart of
:func:`repro.core.pipeline.prepare_module`.  It produces the *same*
:class:`~repro.core.pipeline.PreparedModule` a serial run would —
byte-identical downstream reports are the contract — while

- dispatching per-function stage 1-3 work (connector transformation,
  intraprocedural points-to, SEG construction) for each call-graph wave
  onto a process pool (``jobs > 1``), and/or
- loading and persisting per-function artifacts through an on-disk
  :class:`~repro.cache.store.SummaryStore` (``--cache-dir``).

Determinism is preserved by construction:

- wave order is used only for *dispatch*; the merged module's
  ``functions``/``order`` follow the exact serial ``bottom_up_order``,
  so the engine's summary/checker pass (which stays serial — context
  numbering is sequential across it) sees the same world in the same
  order;
- diagnostics are buffered per function and replayed in serial order
  during final assembly, so the diagnostics list is byte-identical to a
  ``--jobs 1`` run;
- verification (and the admit/quarantine decision it implies) runs at
  the wave barrier because a rejected function must not publish its
  connector signature to later waves — exactly the serial data flow.

Failure semantics match the serial quarantine ladder: a Python
exception inside a worker ships back as ``(type, message)`` and becomes
the same ``prepare``-stage diagnostic a serial run records; a *dead or
hung worker process* becomes a ``sched``-stage quarantine (serial runs
can't crash that way, and a healthy parallel run records neither).
SEG-construction failures ship ``seg=None`` and the engine rebuilds
under its own ``seg`` quarantine, so deterministic failures reproduce
with identical diagnostics.

Resource budgets are cooperative (checked inside the analysis loops of
*this* process), so a limited budget forces the serial path — workers
could not observe a shared deadline.  Cache lookups still apply.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.journal import JournalState, RunJournal
from repro.cache.keys import ast_fingerprint, key_digest, prepare_cache_key
from repro.cache.store import SummaryStore
from repro.core.pipeline import (
    PreparedFunction,
    PreparedModule,
    prepare_function,
)
from repro.ir.callgraph import CallGraph
from repro.ir.lower import lower_program
from repro.lang import ast
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.progress import get_progress
from repro.obs.trace import Span, get_tracer, trace
from repro.robust.budget import ResourceBudget
from repro.robust.diagnostics import (
    REASON_BUDGET,
    REASON_QUARANTINED,
    STAGE_PREPARE,
    STAGE_PTA,
    STAGE_SCHED,
    DiagnosticLog,
)
from repro.robust.faults import fault_point
from repro.robust.quarantine import FATAL
from repro.sched.pool import WorkerCrash, WorkerPool
from repro.sched.waves import scc_waves

_log = get_logger("sched")


@dataclass
class _Outcome:
    """Buffered per-function result, recorded into the module (and its
    diagnostics) only during the serial-order assembly pass."""

    kind: str  # "prepared" | "quarantined"
    result: Optional[PreparedFunction] = None
    seg: Any = None
    cached: bool = False
    stage: str = STAGE_PREPARE
    detail: str = ""
    line: int = 0
    violations: List[Any] = field(default_factory=list)
    admitted: bool = True


def prepare_program(
    program: ast.Program,
    *,
    jobs: int = 1,
    budget: Optional[ResourceBudget] = None,
    diagnostics: Optional[DiagnosticLog] = None,
    verify: str = "",
    store: Optional[SummaryStore] = None,
    worker_timeout: float = 0.0,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    pta_tier: str = "fi",
) -> PreparedModule:
    """Prepare a parsed program across ``jobs`` processes with optional
    artifact caching; drop-in replacement for ``prepare_module``.

    ``journal`` write-ahead-logs per-function completion so a killed
    run leaves a consistent prefix; ``resume=True`` loads that prefix
    and skips every journaled function whose current cache digest still
    resolves in ``store`` — re-entering, effectively, at the first
    incomplete wave, with reports byte-identical to an uninterrupted
    run (skips replay the same content-addressed artifacts)."""
    from repro.verify import (
        MODE_OFF,
        SEVERITY_ERROR,
        record_violations,
        resolve_mode,
        severity_of,
        timed_verify,
    )
    from repro.verify.ir_verifier import verify_function_ir

    verify_mode = resolve_mode(verify)
    registry = get_registry()
    prepared = PreparedModule()
    if diagnostics is not None:
        prepared.diagnostics = diagnostics

    effective_jobs = max(1, int(jobs))
    if budget is not None and budget.limited and effective_jobs > 1:
        registry.counter(
            "sched.serial_fallback",
            "Parallel runs forced serial by a cooperative resource budget",
        ).inc()
        _log.info(
            "resource budgets are cooperative; forcing serial preparation",
            requested_jobs=effective_jobs,
        )
        effective_jobs = 1

    with trace("lower", unit="<module>"):
        module = lower_program(program)
        callgraph = CallGraph(module)
    prepared.callgraph = callgraph
    serial_order = callgraph.bottom_up_order()
    ast_by_name = {f.name: f for f in program.functions}
    prepared.asts = dict(ast_by_name)
    scc_of: Dict[str, int] = {}
    for index, scc in enumerate(callgraph.sccs()):
        for member in scc:
            scc_of[member] = index

    waves = scc_waves(callgraph)
    registry.gauge("sched.jobs", "Worker processes of the last run").set(
        effective_jobs
    )
    registry.gauge("sched.waves", "Call-graph waves of the last run").set(
        len(waves)
    )
    progress = get_progress()
    progress.set_stage(
        "prepare", functions=len(serial_order), waves=len(waves), jobs=effective_jobs
    )
    progress.set_functions_total(len(serial_order))

    signatures: Dict[str, Any] = {}
    outcomes: Dict[str, _Outcome] = {}
    digest_of: Dict[str, str] = {}

    # Crash durability: fingerprint the condensation, load any prior
    # journal when resuming, and (re)start journaling this run.
    journal_completed: frozenset = frozenset()
    resume_entered = False  # first non-skipped function seen yet?
    if journal is not None:
        program_fp, condensation_fp = _condensation_fingerprints(
            ast_by_name, serial_order, waves
        )
        state: Optional[JournalState] = journal.load() if resume else None
        if resume and state is None:
            _log.warning(
                "resume requested but no usable run journal; starting fresh",
                path=journal.path,
            )
        if state is not None:
            journal_completed = frozenset(state.completed)
            if state.program_fingerprint != program_fp:
                _log.info(
                    "source changed since the journaled run; resuming "
                    "incrementally (only matching functions are skipped)",
                    journaled=state.program_fingerprint,
                    current=program_fp,
                )
        journal.begin(
            program_fingerprint=program_fp,
            condensation=condensation_fp,
            waves=len(waves),
            functions=len(serial_order),
            jobs=effective_jobs,
            resumed_from=state,
        )
        registry.gauge(
            "sched.resumed", "1 when the last run resumed from a run journal"
        ).set(1 if state is not None else 0)

    pool = WorkerPool(effective_jobs, timeout=worker_timeout) if effective_jobs > 1 else None
    tracer = get_tracer()
    # Cost attribution across the wave loop: per-wave wall, per-task
    # compute, and the per-wave straggler (the one task every other
    # worker waits on at the barrier) feed the attr.* gauges below.
    total_wave_seconds = 0.0
    work_seconds = 0.0
    critical_path_seconds = 0.0
    try:
        for wave_index, wave in enumerate(waves):
            names = [name for scc in wave for name in scc]
            wave_started = time.perf_counter()
            task_seconds: Dict[str, float] = {}
            with trace("sched.wave", unit=str(wave_index)) as span:
                pending: List[Tuple[str, ast.FuncDef, Dict[str, Any]]] = []
                for name in names:
                    func_ast = ast_by_name[name]
                    usable = {
                        callee: sig
                        for callee, sig in signatures.items()
                        if scc_of.get(callee) != scc_of.get(name)
                    }
                    if store is not None or journal is not None:
                        digest = key_digest(
                            prepare_cache_key(
                                func_ast,
                                usable,
                                callgraph.callees.get(name, ()),
                                pta_tier=pta_tier,
                            )
                        )
                        digest_of[name] = digest
                        hit = store.get(digest) if store is not None else None
                        if hit is not None:
                            _stored, result, seg = hit
                            outcomes[name] = _Outcome(
                                "prepared", result=result, seg=seg, cached=True
                            )
                            if digest in journal_completed:
                                # A journaled completion replayed from the
                                # store: this is the resume fast path.
                                registry.counter(
                                    "journal.skips",
                                    "Functions skipped on --resume (journaled "
                                    "and still cache-resident)",
                                ).inc()
                            continue
                    if journal_completed and not resume_entered:
                        # First function the journal cannot vouch for:
                        # the wave we effectively re-enter the run at.
                        resume_entered = True
                        registry.gauge(
                            "sched.resume_wave",
                            "First incomplete wave a resumed run re-entered at",
                        ).set(wave_index)
                    pending.append((name, func_ast, usable))
                span.set(
                    functions=len(names),
                    cached=len(names) - len(pending),
                    dispatched=len(pending),
                )

                if pool is not None and pending:
                    registry.counter(
                        "sched.tasks", "Function tasks dispatched to workers"
                    ).inc(len(pending))
                    wave_uid = getattr(span, "uid", None)
                    trace_id = tracer.trace_id if tracer.enabled else ""
                    with trace(
                        "sched.dispatch.serialize", unit=str(wave_index)
                    ) as ser_span:
                        ser_started = time.perf_counter()
                        payloads = [
                            (
                                name,
                                pickle.dumps(
                                    (
                                        name,
                                        func_ast,
                                        usable,
                                        wave_index,
                                        pta_tier,
                                        # Trace context: each task carries the
                                        # wave span it belongs to plus its own
                                        # submission timestamp (queue wait).
                                        (trace_id, wave_uid, time.perf_counter()),
                                    ),
                                    protocol=pickle.HIGHEST_PROTOCOL,
                                ),
                            )
                            for name, func_ast, usable in pending
                        ]
                        serialize_seconds = time.perf_counter() - ser_started
                        serialize_bytes = sum(len(blob) for _, blob in payloads)
                        ser_span.set(
                            tasks=len(payloads), bytes=serialize_bytes
                        )
                    registry.counter(
                        "sched.dispatch.serialize_seconds",
                        "Parent-side task payload pickling",
                    ).inc(serialize_seconds)
                    registry.counter(
                        "sched.dispatch.serialize_bytes",
                        "Task payload bytes shipped to workers",
                    ).inc(serialize_bytes)
                    raw = pool.run_wave(payloads)
                    result_bytes = 0
                    with trace("sched.dispatch.decode", unit=str(wave_index)):
                        for name, func_ast, _usable in pending:
                            blob = raw[name]
                            if isinstance(blob, (bytes, bytearray)):
                                result_bytes += len(blob)
                            outcomes[name], timings = _decode_worker_result(
                                blob, name, parent_uid=wave_uid
                            )
                            task_seconds[name] = float(
                                timings.get("task_seconds", 0.0)
                            )
                    registry.counter(
                        "sched.dispatch.result_bytes",
                        "Outcome bytes shipped back from workers",
                    ).inc(result_bytes)
                else:
                    for name, func_ast, usable in pending:
                        task_started = time.perf_counter()
                        outcomes[name] = _run_inline(
                            name, func_ast, usable, prepared.linear, budget,
                            pta_tier,
                        )
                        task_seconds[name] = time.perf_counter() - task_started

                # Wave-boundary admission gate: a function must pass the
                # IR verifier before its connector signature becomes
                # visible to later waves — the serial pipeline's exact
                # data flow.  Diagnostics are recorded later, in serial
                # order, during assembly.
                for name in names:
                    out = outcomes[name]
                    if out.kind != "prepared":
                        continue
                    result = out.result
                    if verify_mode != MODE_OFF:
                        with timed_verify("ir"), trace("verify.ir", unit=name):
                            out.violations = verify_function_ir(
                                result.function,
                                result.control_deps,
                                dom=result.gates.dom,
                            )
                        if any(
                            severity_of(v.rule) == SEVERITY_ERROR
                            for v in out.violations
                        ):
                            out.admitted = False
                            continue
                    signatures[name] = result.signature
                    stored = out.cached
                    if (
                        store is not None
                        and not out.cached
                        and digest_of.get(name)
                    ):
                        stored = store.put(digest_of[name], name, result, out.seg)
                    if (
                        journal is not None
                        and digest_of.get(name)
                        and (stored or store is None)
                    ):
                        # Journal only completions whose artifacts are
                        # durable (or that need no store at all): a
                        # journaled digest must be replayable on resume.
                        journal.record_function(
                            name, digest_of[name], wave_index
                        )
                if task_seconds:
                    slowest = max(task_seconds, key=task_seconds.get)
                    span.set(
                        straggler=slowest,
                        straggler_seconds=round(task_seconds[slowest], 6),
                    )

            wave_elapsed = time.perf_counter() - wave_started
            total_wave_seconds += wave_elapsed
            work_seconds += sum(task_seconds.values())
            # The wave barrier cannot close before its slowest task; a
            # wave with no dispatched work still spends its wall time
            # (cache lookups, journaling) on the critical path.
            critical_path_seconds += (
                max(task_seconds.values()) if task_seconds else wave_elapsed
            )

            if journal is not None:
                journal.record_wave(wave_index)
            wave_outcomes = [outcomes[name] for name in names]
            progress.wave_progress(
                done=wave_index + 1,
                total=len(waves),
                prepared=sum(
                    1
                    for out in wave_outcomes
                    if out.kind == "prepared" and out.admitted
                ),
                cached=sum(1 for out in wave_outcomes if out.cached),
                quarantined=sum(
                    1
                    for out in wave_outcomes
                    if out.kind != "prepared" or not out.admitted
                ),
            )
    finally:
        if pool is not None:
            pool.close()

    # Run-level attribution gauges: computed from plain perf counters,
    # so they exist (and land in run history) even when tracing is off.
    registry.gauge(
        "attr.wave_seconds", "Wall seconds spent inside the wave loop"
    ).set(round(total_wave_seconds, 6))
    registry.gauge(
        "attr.work_seconds", "Summed per-task compute across all waves"
    ).set(round(work_seconds, 6))
    registry.gauge(
        "attr.critical_path_seconds",
        "Lower bound on scheduler wall: sum of per-wave stragglers",
    ).set(round(critical_path_seconds, 6))
    utilization = (
        work_seconds / (effective_jobs * total_wave_seconds)
        if total_wave_seconds > 0
        else 0.0
    )
    registry.gauge(
        "attr.utilization",
        "Fraction of available worker-seconds spent computing "
        "(work / jobs x wave wall)",
    ).set(round(min(1.0, utilization), 4))
    overhead_ratio = (
        max(0.0, total_wave_seconds - critical_path_seconds) / total_wave_seconds
        if total_wave_seconds > 0
        else 0.0
    )
    registry.gauge(
        "attr.overhead_ratio",
        "Share of wave wall not explained by straggler compute "
        "(dispatch, pickling, queueing, barrier waste)",
    ).set(round(overhead_ratio, 4))

    # Serial-order assembly: identical functions/order/diagnostics to a
    # prepare_module run over the same outcomes.
    log = prepared.diagnostics
    for name in serial_order:
        out = outcomes.get(name)
        if out is None:  # pragma: no cover - every name gets an outcome
            continue
        func_ast = ast_by_name[name]
        if out.kind == "quarantined":
            log.record(
                out.stage,
                name,
                REASON_QUARANTINED,
                detail=out.detail,
                line=func_ast.line or out.line,
            )
            continue
        if out.violations:
            errors = record_violations(out.violations, log)
            if errors:
                prepared.verify_failures[name] = ("cfg", out.result.function)
                continue
        if out.result.points_to.degraded:
            log.record(
                STAGE_PTA,
                name,
                REASON_BUDGET,
                detail="points-to conditions degraded to TRUE",
                line=func_ast.line,
            )
        prepared.functions[name] = out.result
        prepared.order.append(name)
        if out.seg is not None:
            prepared.segs[name] = out.seg

    if journal is not None:
        journal.finish()
    _log.info(
        "module prepared",
        functions=len(prepared.functions),
        quarantined=len(serial_order) - len(prepared.functions),
        jobs=effective_jobs,
        waves=len(waves),
        cached=sum(1 for out in outcomes.values() if out.cached),
    )
    return prepared


def _condensation_fingerprints(
    ast_by_name: Dict[str, ast.FuncDef],
    serial_order: List[str],
    waves,
) -> Tuple[str, str]:
    """(program fingerprint, condensation fingerprint) for the journal.

    The program fingerprint hashes every function's structural AST
    fingerprint (whitespace/comment-insensitive, like the cache keys);
    the condensation fingerprint additionally hashes the SCC wave plan,
    so a resumed run can tell "same source" from "same source, same
    schedule" when annotating its records."""
    lines = [
        f"{name}:{ast_fingerprint(ast_by_name[name])}"
        for name in sorted(serial_order)
    ]
    program_fp = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()[:16]
    plan = repr([sorted(tuple(scc) for scc in wave) for wave in waves])
    condensation_fp = hashlib.sha256(
        (program_fp + plan).encode("utf-8")
    ).hexdigest()[:16]
    return program_fp, condensation_fp


# ----------------------------------------------------------------------
def _run_inline(
    name: str,
    func_ast: ast.FuncDef,
    usable: Dict[str, Any],
    linear,
    budget: Optional[ResourceBudget],
    pta_tier: str = "fi",
) -> _Outcome:
    """In-process task execution (``jobs=1`` with a cache dir): serial
    pipeline semantics, plus an eager SEG build so the artifact can be
    persisted whole."""
    from repro.seg.builder import build_seg

    try:
        with trace("prepare.fn", unit=name):
            fault_point("prepare", name)
            result = prepare_function(
                func_ast, usable, linear, budget=budget, pta_tier=pta_tier
            )
    except FATAL:
        raise
    except Exception as error:
        return _Outcome(
            "quarantined",
            stage=STAGE_PREPARE,
            detail=f"{type(error).__name__}: {error}",
            line=getattr(error, "line", 0) or 0,
        )
    seg = None
    try:
        seg = build_seg(result)
    except FATAL:
        raise
    except Exception:
        # The engine rebuilds under its own `seg` quarantine, so a
        # deterministic failure reproduces with identical diagnostics.
        seg = None
    return _Outcome("prepared", result=result, seg=seg)


def _decode_worker_result(
    raw: object, name: str, parent_uid: Optional[int] = None
) -> Tuple[_Outcome, Dict[str, float]]:
    """Turn one pool result (bytes or WorkerCrash) into an outcome plus
    the worker's dispatch-timing dict, merging the worker's metrics and
    spans into this process.  ``parent_uid`` is the local uid of the
    dispatching wave span: absorbed worker spans re-parent under it so
    the merged Chrome trace keeps its cross-process causality."""
    no_timings: Dict[str, float] = {}
    if isinstance(raw, WorkerCrash):
        return (
            _Outcome("quarantined", stage=STAGE_SCHED, detail=raw.detail),
            no_timings,
        )
    decode_started = time.perf_counter()
    try:
        outcome = pickle.loads(raw)
    except Exception as error:
        return (
            _Outcome(
                "quarantined",
                stage=STAGE_SCHED,
                detail=f"worker result unreadable: {type(error).__name__}: {error}",
            ),
            no_timings,
        )
    get_registry().counter(
        "sched.dispatch.deserialize_seconds", "Worker-side payload unpickling"
    ).inc(time.perf_counter() - decode_started)
    kind = outcome[0]
    # Outcomes grew a trailing timings dict; tolerate the older 7-tuple
    # shape so a resumed pre-attribution journal still decodes.
    timings = outcome[-1] if isinstance(outcome[-1], dict) else no_timings
    if kind == "ok":
        _kind, _name, result, seg, seg_error, registry, spans = outcome[:7]
        _absorb_worker_observability(registry, spans, parent_uid)
        if seg_error:
            _log.warning("worker SEG build failed", function=name, error=seg_error)
        return _Outcome("prepared", result=result, seg=seg), timings
    if kind == "error":
        _kind, _name, exc_type, message, line, registry, spans = outcome[:7]
        _absorb_worker_observability(registry, spans, parent_uid)
        return (
            _Outcome(
                "quarantined",
                stage=STAGE_PREPARE,
                detail=f"{exc_type}: {message}",
                line=line,
            ),
            timings,
        )
    return (
        _Outcome(
            "quarantined",
            stage=STAGE_SCHED,
            detail=f"worker returned unknown outcome kind {kind!r}",
        ),
        no_timings,
    )


def _absorb_worker_observability(
    registry: Optional[MetricsRegistry],
    spans: Optional[List[Span]],
    parent_uid: Optional[int] = None,
) -> None:
    if isinstance(registry, MetricsRegistry):
        get_registry().merge(registry)
    tracer = get_tracer()
    if tracer.enabled and spans:
        tracer.absorb(spans, parent=parent_uid)
