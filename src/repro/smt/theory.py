"""Theory solver for the SMT stand-in.

Decides conjunctions of theory atoms over program variables:

- equalities / disequalities between variables, constants, and
  uninterpreted arithmetic terms (congruence closure over the term DAG),
- order atoms (``<``, ``<=``) which are turned into difference constraints
  and checked for negative cycles (a small integer-difference-logic core),
- evaluation of ground arithmetic once variables collapse to constants.

This fragment covers exactly the path conditions produced by the analyses:
value-flow equalities (``v1 == v2``), branch atoms (``x != 0``,
``n < len``) and defining equations (``y == x + 1``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt import terms as T
from repro.smt.terms import Term


class TheoryConflict(Exception):
    """Raised internally when an asserted atom set is inconsistent."""


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}
        self.rank: Dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank.get(ra, 0) < self.rank.get(rb, 0):
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank.get(ra, 0) == self.rank.get(rb, 0):
            self.rank[ra] = self.rank.get(ra, 0) + 1
        return ra


class TheorySolver:
    """Checks a conjunction of (possibly negated) theory atoms.

    Usage: ``check(atoms)`` with a list of ``(atom_term, polarity)`` pairs.
    Returns ``None`` when consistent, or a list of the atom pairs forming
    an inconsistent subset (used as a theory-conflict clause).
    """

    def check(
        self, atoms: Sequence[Tuple[Term, bool]]
    ) -> Optional[List[Tuple[Term, bool]]]:
        try:
            self._run(atoms)
            return None
        except TheoryConflict:
            # Conservative conflict explanation: all asserted atoms.  The
            # SAT core blocks exactly this assignment; completeness is
            # preserved, just with weaker learning.
            return list(atoms)

    # ------------------------------------------------------------------
    def _run(self, atoms: Sequence[Tuple[Term, bool]]) -> None:
        uf = _UnionFind()
        terms_by_id: Dict[int, Term] = {}
        diseq: List[Tuple[Term, Term]] = []
        # Difference / order constraints as (a, b, strict) meaning a < b or
        # a <= b between representatives.
        orders: List[Tuple[Term, Term, bool]] = []

        def register(term: Term) -> None:
            if term.ident in terms_by_id:
                return
            terms_by_id[term.ident] = term
            for arg in term.args:
                register(arg)

        for atom, polarity in atoms:
            kind = atom.kind
            if kind == T.KIND_BOOL_VAR:
                continue  # pure boolean, no theory content
            lhs, rhs = atom.args[0], atom.args[1]
            register(lhs)
            register(rhs)
            if kind == T.KIND_EQ:
                if polarity:
                    uf.union(lhs.ident, rhs.ident)
                else:
                    diseq.append((lhs, rhs))
            elif kind == T.KIND_NE:
                if polarity:
                    diseq.append((lhs, rhs))
                else:
                    uf.union(lhs.ident, rhs.ident)
            elif kind == T.KIND_LT:
                if polarity:
                    orders.append((lhs, rhs, True))
                else:
                    orders.append((rhs, lhs, False))  # !(a<b) => b<=a
            elif kind == T.KIND_LE:
                if polarity:
                    orders.append((lhs, rhs, False))
                else:
                    orders.append((rhs, lhs, True))
            elif kind == T.KIND_GT:
                if polarity:
                    orders.append((rhs, lhs, True))
                else:
                    orders.append((lhs, rhs, False))
            elif kind == T.KIND_GE:
                if polarity:
                    orders.append((rhs, lhs, False))
                else:
                    orders.append((lhs, rhs, True))

        # Congruence closure to fixpoint: merging operands merges
        # applications with equal signatures.
        self._congruence(uf, terms_by_id)

        # Constant propagation: two distinct constants in one class.
        const_of = self._class_constants(uf, terms_by_id)

        # Evaluate ground arithmetic and re-close.
        changed = True
        iterations = 0
        while changed and iterations < 8:
            iterations += 1
            changed = self._fold_arith(uf, terms_by_id, const_of)
            if changed:
                self._congruence(uf, terms_by_id)
                const_of = self._class_constants(uf, terms_by_id)

        # Disequality check.
        for lhs, rhs in diseq:
            if uf.find(lhs.ident) == uf.find(rhs.ident):
                raise TheoryConflict
            cl, cr = const_of.get(uf.find(lhs.ident)), const_of.get(uf.find(rhs.ident))
            if cl is not None and cr is not None and cl == cr:
                raise TheoryConflict

        # Order constraints: build a difference graph over class reps with
        # edge a -> b weight -1 (a < b) or 0 (a <= b) meaning b - a >= 1 or 0;
        # detect a positive-requirement cycle (Bellman-Ford on negation).
        self._check_orders(uf, const_of, orders)

    # ------------------------------------------------------------------
    def _congruence(self, uf: _UnionFind, terms_by_id: Dict[int, Term]) -> None:
        changed = True
        while changed:
            changed = False
            signature: Dict[Tuple, int] = {}
            for ident, term in terms_by_id.items():
                if not term.args or not term.is_arith():
                    continue
                sig = (term.kind,) + tuple(uf.find(a.ident) for a in term.args)
                other = signature.get(sig)
                if other is None:
                    signature[sig] = ident
                elif uf.find(other) != uf.find(ident):
                    uf.union(other, ident)
                    changed = True

    def _class_constants(
        self, uf: _UnionFind, terms_by_id: Dict[int, Term]
    ) -> Dict[int, int]:
        const_of: Dict[int, int] = {}
        for ident, term in terms_by_id.items():
            if term.is_const():
                rep = uf.find(ident)
                existing = const_of.get(rep)
                if existing is not None and existing != term.value:
                    raise TheoryConflict
                const_of[rep] = term.value
        return const_of

    def _fold_arith(
        self,
        uf: _UnionFind,
        terms_by_id: Dict[int, Term],
        const_of: Dict[int, int],
    ) -> bool:
        """Evaluate arithmetic terms whose operands are all constant."""
        changed = False
        for ident, term in list(terms_by_id.items()):
            if not term.is_arith():
                continue
            rep = uf.find(ident)
            existing = const_of.get(rep)
            values = []
            ok = True
            for arg in term.args:
                val = const_of.get(uf.find(arg.ident))
                if val is None:
                    ok = False
                    break
                values.append(val)
            if not ok:
                continue
            if term.kind == T.KIND_ADD:
                result = values[0] + values[1]
            elif term.kind == T.KIND_SUB:
                result = values[0] - values[1]
            elif term.kind == T.KIND_MUL:
                result = values[0] * values[1]
            else:  # KIND_NEG
                result = -values[0]
            if existing is not None:
                if existing != result:
                    raise TheoryConflict
                continue
            const_term = T.FACTORY.const(result)
            terms_by_id[const_term.ident] = const_term
            uf.union(ident, const_term.ident)
            const_of[uf.find(ident)] = result
            changed = True
        return changed

    def _check_orders(
        self,
        uf: _UnionFind,
        const_of: Dict[int, int],
        orders: List[Tuple[Term, Term, bool]],
    ) -> None:
        if not orders:
            return
        # Edges: (u, v, w) encoding value(u) - value(v) <= w, i.e. a < b is
        # a - b <= -1 and a <= b is a - b <= 0.  A negative cycle in this
        # graph is a contradiction.  Constants are tied to a zero node.
        edges: List[Tuple[int, int, int]] = []
        nodes = set()
        zero = -1
        nodes.add(zero)
        for lhs, rhs, strict in orders:
            u, v = uf.find(lhs.ident), uf.find(rhs.ident)
            cu, cv = const_of.get(u), const_of.get(v)
            if cu is not None and cv is not None:
                if strict and not cu < cv:
                    raise TheoryConflict
                if not strict and not cu <= cv:
                    raise TheoryConflict
                continue
            nodes.add(u)
            nodes.add(v)
            edges.append((u, v, -1 if strict else 0))
        for rep, value in const_of.items():
            if rep in nodes:
                # value(rep) - value(zero) <= value and >= value
                edges.append((rep, zero, value))
                edges.append((zero, rep, -value))
        # Bellman-Ford negative-cycle detection.
        dist = {node: 0 for node in nodes}
        for _ in range(len(nodes)):
            updated = False
            for u, v, w in edges:
                if dist[u] + w < dist[v]:
                    dist[v] = dist[u] + w
                    updated = True
            if not updated:
                return
        # One more relaxation round finding an improvement => negative cycle.
        for u, v, w in edges:
            if dist[u] + w < dist[v]:
                raise TheoryConflict
