"""The SMT solver facade: DPLL(T) over the CDCL core.

This is the reproduction's stand-in for Z3 (Section 4 of the paper uses
Z3).  It decides the boolean combination of equality/order atoms produced
as path conditions:

1. the term is Tseitin-encoded into CNF, with each theory atom mapped to
   one SAT variable;
2. the CDCL core (:mod:`repro.smt.sat`) enumerates boolean models;
3. each full model's asserted atoms are checked by the theory solver
   (:mod:`repro.smt.theory`); inconsistent models are blocked with a
   conflict clause and the loop continues (lazy DPLL(T)).
"""

from __future__ import annotations

import enum
import itertools
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import get_registry
from repro.obs.trace import trace
from repro.robust.faults import fault_point
from repro.smt import terms as T
from repro.smt.sat import SatSolver, neg_lit, pos_lit
from repro.smt.terms import Term
from repro.smt.theory import TheorySolver


class Result(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class SMTSolver:
    """Decides satisfiability of boolean-structured terms."""

    def __init__(
        self,
        max_theory_rounds: int = 2000,
        deadline_seconds: Optional[float] = None,
    ) -> None:
        self._theory = TheorySolver()
        self._max_theory_rounds = max_theory_rounds
        # Default per-query wall-clock ceiling; ``check`` may override
        # per call with an absolute deadline.
        self.deadline_seconds = deadline_seconds
        self.queries = 0
        self.sat_answers = 0
        self.unsat_answers = 0
        self.deadline_hits = 0
        # Why the last answer was UNKNOWN: "deadline", "conflicts"
        # (SAT-core conflict budget), or "rounds" (theory round cap).
        self.last_unknown_reason: Optional[str] = None
        # After a SAT answer: the satisfying assignment of the theory
        # atoms, as {atom Term: bool}.  Used to attach a witness ("this
        # path is feasible when c > 0") to bug reports.
        self.last_model: Optional[Dict[Term, bool]] = None

    def check(self, condition: Term, deadline: Optional[float] = None) -> Result:
        """Check satisfiability of a single condition term.

        ``deadline`` is an absolute ``time.monotonic()`` timestamp; past
        it the solver gives up with UNKNOWN (recorded in
        ``last_unknown_reason``) instead of running on."""
        fault_point("smt")
        self.queries += 1
        self.last_model = None
        self.last_unknown_reason = None
        if deadline is None and self.deadline_seconds is not None:
            deadline = time.monotonic() + self.deadline_seconds
        registry = get_registry()
        start = time.perf_counter()
        with trace("smt.check") as span:
            result = self._check(condition, deadline)
            span.set(result=result.value)
        elapsed = time.perf_counter() - start
        registry.counter("smt.queries", "SMT queries issued").inc(
            result=result.value
        )
        registry.histogram(
            "smt.solve_seconds", "Per-query SMT solving latency"
        ).observe(elapsed)
        if result is Result.SAT:
            self.sat_answers += 1
        elif result is Result.UNSAT:
            self.unsat_answers += 1
        else:
            registry.counter(
                "smt.unknowns", "UNKNOWN answers by reason"
            ).inc(reason=self.last_unknown_reason or "other")
        return result

    def is_satisfiable(self, condition: Term) -> bool:
        """Convenience wrapper treating UNKNOWN as satisfiable (soundy)."""
        return self.check(condition) is not Result.UNSAT

    # ------------------------------------------------------------------
    def _check(self, condition: Term, deadline: Optional[float] = None) -> Result:
        if condition is T.TRUE:
            return Result.SAT
        if condition is T.FALSE:
            return Result.UNSAT
        sat = SatSolver()
        encoder = _Encoder(sat)
        root = encoder.encode(condition)
        sat.add_clause([root])
        for _ in range(self._max_theory_rounds):
            if deadline is not None and time.monotonic() >= deadline:
                return self._give_up("deadline")
            answer = sat.solve(max_conflicts=200000, deadline=deadline)
            if answer is None:
                if deadline is not None and time.monotonic() >= deadline:
                    return self._give_up("deadline")
                self.last_unknown_reason = "conflicts"
                return Result.UNKNOWN
            if answer is False:
                return Result.UNSAT
            assignment = sat.model()
            atoms: List[Tuple[Term, bool]] = []
            blocking: List[int] = []
            for atom, var in encoder.atom_vars.items():
                value = assignment[var]
                if value == 1:
                    atoms.append((atom, True))
                    blocking.append(neg_lit(var))
                elif value == 0:
                    atoms.append((atom, False))
                    blocking.append(pos_lit(var))
            conflict = self._theory.check(atoms)
            if conflict is None:
                self.last_model = dict(atoms)
                return Result.SAT
            # Block this theory-inconsistent boolean model.
            if not blocking:
                return Result.UNSAT
            if not sat.add_clause(blocking):
                return Result.UNSAT
        self.last_unknown_reason = "rounds"
        return Result.UNKNOWN

    def _give_up(self, reason: str) -> Result:
        self.last_unknown_reason = reason
        if reason == "deadline":
            self.deadline_hits += 1
        return Result.UNKNOWN


class _Encoder:
    """Tseitin encoder from terms to CNF over a :class:`SatSolver`."""

    def __init__(self, sat: SatSolver) -> None:
        self._sat = sat
        self._cache: Dict[int, int] = {}  # term id -> literal
        self.atom_vars: Dict[Term, int] = {}  # theory atom -> SAT var

    def encode(self, term: Term) -> int:
        """Return a literal equisatisfiably representing ``term``."""
        hit = self._cache.get(term.ident)
        if hit is not None:
            return hit
        lit = self._encode(term)
        self._cache[term.ident] = lit
        return lit

    def _encode(self, term: Term) -> int:
        sat = self._sat
        kind = term.kind
        if term is T.TRUE:
            var = sat.new_var()
            sat.add_clause([pos_lit(var)])
            return pos_lit(var)
        if term is T.FALSE:
            var = sat.new_var()
            sat.add_clause([neg_lit(var)])
            return pos_lit(var)
        if term.is_atom():
            var = self.atom_vars.get(term)
            if var is None:
                var = sat.new_var()
                self.atom_vars[term] = var
            return pos_lit(var)
        if kind == T.KIND_NOT:
            return self.encode(term.args[0]) ^ 1
        if kind in (T.KIND_AND, T.KIND_OR):
            child_lits = [self.encode(a) for a in term.args]
            gate = sat.new_var()
            gate_pos = pos_lit(gate)
            if kind == T.KIND_AND:
                # gate -> child_i ; (and children) -> gate
                for lit in child_lits:
                    sat.add_clause([gate_pos ^ 1, lit])
                sat.add_clause([gate_pos] + [lit ^ 1 for lit in child_lits])
            else:
                # child_i -> gate ; gate -> (or children)
                for lit in child_lits:
                    sat.add_clause([gate_pos, lit ^ 1])
                sat.add_clause([gate_pos ^ 1] + child_lits)
            return gate_pos
        # A non-boolean term in boolean position: interpret as != 0.
        return self.encode(T.FACTORY.ne(term, T.FACTORY.const(0)))


def check_all(conditions, solver: Optional[SMTSolver] = None) -> List[Result]:
    """Check a batch of conditions with one solver (stats aggregate)."""
    solver = solver or SMTSolver()
    return [solver.check(c) for c in conditions]
