"""A compact CDCL SAT solver.

This is the boolean core of the reproduction's SMT solver (the stand-in
for Z3).  It implements the standard conflict-driven clause learning loop:
two-watched-literal unit propagation, 1UIP conflict analysis,
non-chronological backjumping, and an activity-based (VSIDS-style)
decision heuristic with Luby restarts.

Literal encoding: variable ``v`` (1-based int) has positive literal
``2*v`` and negative literal ``2*v + 1``; ``lit ^ 1`` negates.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

UNASSIGNED = -1


def var_of(lit: int) -> int:
    return lit >> 1


def is_pos(lit: int) -> bool:
    return (lit & 1) == 0


def pos_lit(var: int) -> int:
    return var << 1


def neg_lit(var: int) -> int:
    return (var << 1) | 1


class SatSolver:
    """CDCL solver over integer-encoded literals."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[List[int]] = []
        self._watches: List[List[int]] = [[], []]  # per literal: clause idxs
        self._assign: List[int] = [UNASSIGNED]  # per var: 0/1/UNASSIGNED
        self._level: List[int] = [0]
        self._reason: List[int] = [-1]  # clause idx or -1 for decisions
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = [0.0]
        self._act_inc = 1.0
        self._ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self._num_vars += 1
        self._assign.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._watches.append([])
        self._watches.append([])
        return self._num_vars

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat."""
        if not self._ok:
            return False
        # Clauses may arrive between solve() calls (theory blocking);
        # return to the root level before touching assignments.
        self._cancel_until(0)
        unique: List[int] = []
        seen = set()
        for lit in lits:
            if lit in seen:
                continue
            if (lit ^ 1) in seen:
                return True  # tautology
            seen.add(lit)
            unique.append(lit)
        # Drop already-false literals at level 0, keep satisfied clauses out.
        filtered: List[int] = []
        for lit in unique:
            val = self._value(lit)
            if val == 1 and self._level[var_of(lit)] == 0:
                return True
            if val == 0 and self._level[var_of(lit)] == 0:
                continue
            filtered.append(lit)
        if not filtered:
            self._ok = False
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], -1):
                self._ok = False
                return False
            return self._propagate() == -1 or self._fail()
        idx = len(self._clauses)
        self._clauses.append(filtered)
        self._watch(filtered[0], idx)
        self._watch(filtered[1], idx)
        return True

    def _fail(self) -> bool:
        self._ok = False
        return False

    def _watch(self, lit: int, clause_idx: int) -> None:
        self._watches[lit].append(clause_idx)

    # ------------------------------------------------------------------
    # Assignment handling
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        val = self._assign[var_of(lit)]
        if val == UNASSIGNED:
            return UNASSIGNED
        return val ^ (lit & 1)

    def value(self, var: int) -> int:
        """Assignment of a variable: 0, 1, or UNASSIGNED."""
        return self._assign[var]

    def _enqueue(self, lit: int, reason: int) -> bool:
        val = self._value(lit)
        if val == 0:
            return False
        if val == 1:
            return True
        var = var_of(lit)
        self._assign[var] = 1 if is_pos(lit) else 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns conflicting clause index or -1."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            false_lit = lit ^ 1
            watch_list = self._watches[false_lit]
            new_list: List[int] = []
            conflict = -1
            i = 0
            while i < len(watch_list):
                clause_idx = watch_list[i]
                i += 1
                clause = self._clauses[clause_idx]
                # Ensure false_lit is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    new_list.append(clause_idx)
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], clause_idx)
                        moved = True
                        break
                if moved:
                    continue
                new_list.append(clause_idx)
                if not self._enqueue(first, clause_idx):
                    # Conflict: keep remaining watches, report.
                    new_list.extend(watch_list[i:])
                    conflict = clause_idx
                    break
            self._watches[false_lit] = new_list
            if conflict != -1:
                return conflict
        return -1

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict_idx: int):
        learnt: List[int] = [0]  # placeholder for asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = -1
        clause = self._clauses[conflict_idx]
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)
        while True:
            for q in clause:
                if lit != -1 and q == lit:
                    continue
                var = q >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[self._trail[index] >> 1]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            clause = self._clauses[self._reason[var]]
        learnt[0] = lit ^ 1
        # Backjump level: max level among other literals.
        back_level = 0
        for q in learnt[1:]:
            back_level = max(back_level, self._level[q >> 1])
        return learnt, back_level

    def _bump(self, var: int) -> None:
        self._activity[var] += self._act_inc
        if self._activity[var] > 1e100:
            for i in range(1, self._num_vars + 1):
                self._activity[i] *= 1e-100
            self._act_inc *= 1e-100

    def _decay(self) -> None:
        self._act_inc /= 0.95

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = var_of(lit)
            self._assign[var] = UNASSIGNED
            self._reason[var] = -1
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _decide(self) -> int:
        best_var = 0
        best_act = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == UNASSIGNED and self._activity[var] > best_act:
                best_act = self._activity[var]
                best_var = var
        return best_var

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        """Solve; returns True (sat), False (unsat), None (conflict
        budget or wall-clock ``deadline`` — a ``time.monotonic()``
        timestamp — hit)."""
        if not self._ok:
            return False
        self._cancel_until(0)
        if self._propagate() != -1:
            self._ok = False
            return False
        # Assume each assumption at its own level.
        for lit in assumptions:
            if self._value(lit) == 1:
                continue
            if self._value(lit) == 0:
                self._cancel_until(0)
                return False
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, -1)
            if self._propagate() != -1:
                self._cancel_until(0)
                return False
        assumption_level = len(self._trail_lim)
        budget = max_conflicts if max_conflicts is not None else float("inf")
        restart_base = 64
        luby_index = 1
        conflicts_here = 0
        next_restart = restart_base * _luby(luby_index)
        ticks = 0
        if deadline is not None and time.monotonic() >= deadline:
            self._cancel_until(0)
            return None
        while True:
            if deadline is not None:
                # Sample the clock every 256 iterations: cheap enough
                # for the hot loop, tight enough for sub-second budgets.
                ticks += 1
                if (ticks & 255) == 0 and time.monotonic() >= deadline:
                    self._cancel_until(0)
                    return None
            conflict = self._propagate()
            if conflict != -1:
                self.conflicts += 1
                conflicts_here += 1
                if conflicts_here > budget:
                    self._cancel_until(0)
                    return None
                if len(self._trail_lim) <= assumption_level:
                    self._cancel_until(0)
                    return False
                learnt, back_level = self._analyze(conflict)
                back_level = max(back_level, assumption_level)
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], -1)
                else:
                    idx = len(self._clauses)
                    self._clauses.append(learnt)
                    self._watch(learnt[0], idx)
                    self._watch(learnt[1], idx)
                    self._enqueue(learnt[0], idx)
                self._decay()
                if conflicts_here >= next_restart:
                    luby_index += 1
                    next_restart = conflicts_here + restart_base * _luby(luby_index)
                    self._cancel_until(assumption_level)
            else:
                var = self._decide()
                if var == 0:
                    return True  # full assignment
                self.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(pos_lit(var) if self._phase(var) else neg_lit(var), -1)

    def _phase(self, var: int) -> bool:
        # Default phase: positive.  Simple and adequate for our encodings.
        return True

    def model(self) -> List[int]:
        """Assignment per variable index (0/1); index 0 unused."""
        return list(self._assign)


def _luby(i: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 ..."""
    k = 1
    while (1 << (k + 1)) <= i + 1:
        k += 1
    while (1 << k) - 1 != i:
        i = i - ((1 << (k - 1)) - 1) - 1
        k = 1
        while (1 << (k + 1)) <= i + 1:
            k += 1
    return 1 << (k - 1)
