"""Light term simplification beyond the factory's local rules.

The factory already folds constants, flattens nested and/or, removes
duplicates, and cancels double negation.  This module adds a few global
rewrites used when conditions are memorized into summaries, keeping the
memorized constraints compact (the paper's SEG "compactly encodes"
conditions; small terms keep both the linear solver and the SMT solver
fast):

- absorption: ``a & (a | b) -> a`` and ``a | (a & b) -> a``
- complement detection inside one and/or level: ``a & !a -> false``
- implied-literal propagation one level deep.
"""

from __future__ import annotations

from typing import Dict

from repro.smt import terms as T
from repro.smt.terms import Term


def simplify(term: Term, _cache: Dict[int, Term] | None = None) -> Term:
    """Return an equivalent, usually smaller, term."""
    if _cache is None:
        _cache = {}
    hit = _cache.get(term.ident)
    if hit is not None:
        return hit
    result = _simplify(term, _cache)
    _cache[term.ident] = result
    return result


def _simplify(term: Term, cache: Dict[int, Term]) -> Term:
    factory = T.FACTORY
    kind = term.kind
    if not term.args:
        return term
    if kind == T.KIND_NOT:
        return factory.not_(simplify(term.args[0], cache))
    if kind not in (T.KIND_AND, T.KIND_OR):
        return term
    children = [simplify(a, cache) for a in term.args]
    rebuilt = factory.and_(*children) if kind == T.KIND_AND else factory.or_(*children)
    if rebuilt.kind != kind:
        return rebuilt
    children = list(rebuilt.args)
    ids = {c.ident for c in children}
    # Complement pair at this level.
    for child in children:
        if factory.not_(child).ident in ids:
            return factory.false if kind == T.KIND_AND else factory.true
    # Absorption: drop any child that is an or/and containing another child.
    dual = T.KIND_OR if kind == T.KIND_AND else T.KIND_AND
    kept = []
    for child in children:
        if child.kind == dual and any(g.ident in ids for g in child.args):
            continue
        kept.append(child)
    if len(kept) != len(children):
        return (
            factory.and_(*kept) if kind == T.KIND_AND else factory.or_(*kept)
        )
    return rebuilt
