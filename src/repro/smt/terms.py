"""Hash-consed symbolic terms.

Terms form the constraint language used everywhere in the reproduction:
edge labels in the symbolic expression graph (SEG), path conditions, the
DD/CD constraints of Section 3.2.2, and the inputs to both the linear
contradiction solver and the SMT solver.

Terms are immutable and hash-consed through a module-level
:class:`TermFactory`, so structural equality is pointer equality and the
same sub-term is never stored twice.  This mirrors the "compact encoding"
role the SEG plays in the paper: a condition such as ``¬θ3 ∧ θ4`` is a
single shared DAG node.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterable, Optional, Tuple

# Term kinds.  Leaf kinds carry a payload in ``value``; interior kinds
# carry children in ``args``.
KIND_TRUE = "true"
KIND_FALSE = "false"
KIND_BOOL_VAR = "bvar"  # boolean program variable / branch condition
KIND_INT_VAR = "ivar"  # integer or pointer-valued program variable
KIND_CONST = "const"  # integer constant

KIND_NOT = "not"
KIND_AND = "and"
KIND_OR = "or"

KIND_EQ = "eq"
KIND_NE = "ne"
KIND_LT = "lt"
KIND_LE = "le"
KIND_GT = "gt"
KIND_GE = "ge"

KIND_ADD = "add"
KIND_SUB = "sub"
KIND_MUL = "mul"
KIND_NEG = "neg"

_COMPARISONS = frozenset({KIND_EQ, KIND_NE, KIND_LT, KIND_LE, KIND_GT, KIND_GE})
_ARITH = frozenset({KIND_ADD, KIND_SUB, KIND_MUL, KIND_NEG})
_LOGIC = frozenset({KIND_NOT, KIND_AND, KIND_OR})

_NEGATED_COMPARISON = {
    KIND_EQ: KIND_NE,
    KIND_NE: KIND_EQ,
    KIND_LT: KIND_GE,
    KIND_LE: KIND_GT,
    KIND_GT: KIND_LE,
    KIND_GE: KIND_LT,
}

_COMPARISON_SYMBOL = {
    KIND_EQ: "==",
    KIND_NE: "!=",
    KIND_LT: "<",
    KIND_LE: "<=",
    KIND_GT: ">",
    KIND_GE: ">=",
}

_ARITH_SYMBOL = {KIND_ADD: "+", KIND_SUB: "-", KIND_MUL: "*"}


class Term:
    """An immutable, hash-consed symbolic term.

    Do not construct directly; use the factory helpers (:func:`bool_var`,
    :func:`and_`, :func:`eq`, ...) or :class:`TermFactory` methods.
    """

    __slots__ = ("kind", "args", "value", "_id", "_hash", "_skey")

    def __init__(
        self,
        kind: str,
        args: Tuple["Term", ...],
        value: object,
        ident: int,
    ) -> None:
        self.kind = kind
        self.args = args
        self.value = value
        self._id = ident
        self._hash = hash((kind, tuple(a._id for a in args), value))
        # Structural (Merkle) key: identical for structurally equal
        # terms in *any* process, unlike ``_id`` (allocation order) and
        # ``hash()`` (PYTHONHASHSEED).  Canonical argument ordering
        # sorts by this key so conditions built in scheduler workers
        # or loaded from the artifact cache collapse to the exact terms
        # a serial run builds — a requirement for byte-identical
        # reports under --jobs N / --cache-dir.
        digest = hashlib.sha1(f"{kind}\x00{value!r}\x00".encode("utf-8"))
        for arg in args:
            digest.update(arg._skey)
        self._skey = digest.digest()

    # Hash-consing makes identity comparison the correct equality.
    def __eq__(self, other: object) -> bool:
        return self is other

    def __ne__(self, other: object) -> bool:
        return self is not other

    def __hash__(self) -> int:
        return self._hash

    @property
    def ident(self) -> int:
        """A dense unique id, stable within one factory."""
        return self._id

    def is_boolean(self) -> bool:
        """Whether this term is boolean-typed (usable as a condition)."""
        return self.kind in _LOGIC or self.kind in _COMPARISONS or self.kind in (
            KIND_TRUE,
            KIND_FALSE,
            KIND_BOOL_VAR,
        )

    def is_atom(self) -> bool:
        """A boolean leaf from the SAT solver's point of view."""
        return self.kind in _COMPARISONS or self.kind == KIND_BOOL_VAR

    def is_comparison(self) -> bool:
        return self.kind in _COMPARISONS

    def is_arith(self) -> bool:
        return self.kind in _ARITH

    def is_const(self) -> bool:
        return self.kind == KIND_CONST

    def is_var(self) -> bool:
        return self.kind in (KIND_BOOL_VAR, KIND_INT_VAR)

    def variables(self) -> frozenset:
        """All variable names occurring in this term (memo-free walk)."""
        names = set()
        stack = [self]
        seen = set()
        while stack:
            term = stack.pop()
            if term._id in seen:
                continue
            seen.add(term._id)
            if term.kind in (KIND_BOOL_VAR, KIND_INT_VAR):
                names.add(term.value)
            stack.extend(term.args)
        return frozenset(names)

    def __reduce__(self):
        # Pickle by *structure* and re-intern through the module-level
        # factory on load.  Without this, terms crossing a process or
        # disk boundary (scheduler workers, the artifact cache) would
        # materialize as fresh objects outside the factory table —
        # breaking identity equality against locally built terms and
        # colliding on ``_id`` — exactly the bugs hash-consing exists to
        # prevent.  Pickle memoization keeps the DAG shared: each
        # sub-term is reduced once, bottom-up.
        return (_reintern, (self.kind, self.args, self.value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Term({self})"

    def __str__(self) -> str:
        return _format(self)


def _reintern(kind: str, args: Tuple["Term", ...], value: object) -> "Term":
    """Unpickle hook: rebuild a term inside this process's factory."""
    return FACTORY._mk(kind, args, value)


def _format(term: Term) -> str:
    kind = term.kind
    if kind == KIND_TRUE:
        return "true"
    if kind == KIND_FALSE:
        return "false"
    if kind in (KIND_BOOL_VAR, KIND_INT_VAR):
        return str(term.value)
    if kind == KIND_CONST:
        return str(term.value)
    if kind == KIND_NOT:
        return f"!({_format(term.args[0])})"
    if kind == KIND_AND:
        return "(" + " & ".join(_format(a) for a in term.args) + ")"
    if kind == KIND_OR:
        return "(" + " | ".join(_format(a) for a in term.args) + ")"
    if kind in _COMPARISONS:
        sym = _COMPARISON_SYMBOL[kind]
        return f"({_format(term.args[0])} {sym} {_format(term.args[1])})"
    if kind == KIND_NEG:
        return f"-({_format(term.args[0])})"
    if kind in _ARITH:
        sym = _ARITH_SYMBOL[kind]
        return f"({_format(term.args[0])} {sym} {_format(term.args[1])})"
    raise AssertionError(f"unknown term kind {kind}")


class TermFactory:
    """Builds and hash-conses :class:`Term` objects.

    A single module-level factory (:data:`FACTORY`) backs the convenience
    functions; separate factories may be created for isolation in tests.
    """

    def __init__(self) -> None:
        self._table: dict = {}
        # Atomic id source: ``next()`` on a C-level count is safe under
        # concurrent callers, unlike ``self._next_id += 1``.
        self._ids = itertools.count()
        # Negation memo (negation is an involution, so cache both ways).
        # Without this, the De Morgan rewrite re-negates whole subtrees
        # at every construction level — exponential on deep nestings.
        self._neg_memo: dict = {}
        self.true = self._mk(KIND_TRUE, (), None)
        self.false = self._mk(KIND_FALSE, (), None)

    def _mk(self, kind: str, args: Tuple[Term, ...], value: object) -> Term:
        # Interning must stay correct when analyses run on concurrent
        # threads (the repro.service daemon dispatches jobs to a worker
        # pool in-process): ``setdefault`` is a single atomic dict op,
        # so two racing constructions of the same key both get the one
        # canonical Term, and the losing candidate is discarded.  Ids
        # stay unique via the atomic counter; canonical ordering never
        # depends on them (structural ``_skey`` ordering, PR 4).
        key = (kind, tuple(a._id for a in args), value)
        term = self._table.get(key)
        if term is None:
            candidate = Term(kind, args, value, next(self._ids))
            term = self._table.setdefault(key, candidate)
        return term

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def bool_var(self, name: str) -> Term:
        return self._mk(KIND_BOOL_VAR, (), name)

    def int_var(self, name: str) -> Term:
        return self._mk(KIND_INT_VAR, (), name)

    def const(self, value: int) -> Term:
        return self._mk(KIND_CONST, (), int(value))

    # ------------------------------------------------------------------
    # Boolean structure (with light local simplification)
    # ------------------------------------------------------------------
    def not_(self, a: Term) -> Term:
        if a is self.true:
            return self.false
        if a is self.false:
            return self.true
        if a.kind == KIND_NOT:
            return a.args[0]
        if a.kind in _NEGATED_COMPARISON:
            return self._mk(_NEGATED_COMPARISON[a.kind], a.args, None)
        cached = self._neg_memo.get(a._id)
        if cached is not None:
            return cached
        # De Morgan: keep terms in negation normal form so the linear
        # solver's P/N sets see through negated conjunctions/disjunctions.
        if a.kind == KIND_AND:
            result = self.or_(*(self.not_(part) for part in a.args))
        elif a.kind == KIND_OR:
            result = self.and_(*(self.not_(part) for part in a.args))
        else:
            result = self._mk(KIND_NOT, (a,), None)
        self._neg_memo[a._id] = result
        self._neg_memo[result._id] = a
        return result

    def and_(self, *parts: Term) -> Term:
        flat = []
        seen = set()
        for part in _flatten(parts, KIND_AND):
            if part is self.false:
                return self.false
            if part is self.true or part._id in seen:
                continue
            if self.not_(part)._id in seen:
                return self.false
            seen.add(part._id)
            flat.append(part)
        if not flat:
            return self.true
        if len(flat) == 1:
            return flat[0]
        flat.sort(key=lambda t: t._skey)
        return self._mk(KIND_AND, tuple(flat), None)

    def or_(self, *parts: Term) -> Term:
        flat = []
        seen = set()
        for part in _flatten(parts, KIND_OR):
            if part is self.true:
                return self.true
            if part is self.false or part._id in seen:
                continue
            if self.not_(part)._id in seen:
                return self.true
            seen.add(part._id)
            flat.append(part)
        if not flat:
            return self.false
        if len(flat) == 1:
            return flat[0]
        flat.sort(key=lambda t: t._skey)
        return self._mk(KIND_OR, tuple(flat), None)

    def implies(self, a: Term, b: Term) -> Term:
        return self.or_(self.not_(a), b)

    def iff(self, a: Term, b: Term) -> Term:
        return self.and_(self.implies(a, b), self.implies(b, a))

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def _cmp(self, kind: str, a: Term, b: Term) -> Term:
        if a.is_const() and b.is_const():
            lhs, rhs = a.value, b.value
            result = {
                KIND_EQ: lhs == rhs,
                KIND_NE: lhs != rhs,
                KIND_LT: lhs < rhs,
                KIND_LE: lhs <= rhs,
                KIND_GT: lhs > rhs,
                KIND_GE: lhs >= rhs,
            }[kind]
            return self.true if result else self.false
        if a is b:
            if kind in (KIND_EQ, KIND_LE, KIND_GE):
                return self.true
            if kind in (KIND_NE, KIND_LT, KIND_GT):
                return self.false
        # Canonical operand order for symmetric comparisons (by the
        # process-independent structural key; see Term._skey).
        if kind in (KIND_EQ, KIND_NE) and a._skey > b._skey:
            a, b = b, a
        return self._mk(kind, (a, b), None)

    def eq(self, a: Term, b: Term) -> Term:
        # An equation between two boolean-typed terms is boolean structure
        # (an iff), not a theory atom; rewrite eagerly so the SAT encoding
        # sees through e.g. ``f == (e != 0)``.
        if a.is_boolean() or b.is_boolean():
            return self.iff(self._as_bool(a), self._as_bool(b))
        return self._cmp(KIND_EQ, a, b)

    def ne(self, a: Term, b: Term) -> Term:
        if a.is_boolean() or b.is_boolean():
            return self.not_(self.iff(self._as_bool(a), self._as_bool(b)))
        return self._cmp(KIND_NE, a, b)

    def _as_bool(self, a: Term) -> Term:
        """Coerce a term used in boolean position to a boolean term."""
        if a.is_boolean():
            return a
        if a.is_const():
            return self.false if a.value == 0 else self.true
        # A non-boolean variable or arithmetic term in boolean position
        # means "is non-zero".
        return self._cmp(KIND_NE, a, self.const(0))

    def lt(self, a: Term, b: Term) -> Term:
        return self._cmp(KIND_LT, a, b)

    def le(self, a: Term, b: Term) -> Term:
        return self._cmp(KIND_LE, a, b)

    def gt(self, a: Term, b: Term) -> Term:
        return self._cmp(KIND_GT, a, b)

    def ge(self, a: Term, b: Term) -> Term:
        return self._cmp(KIND_GE, a, b)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def add(self, a: Term, b: Term) -> Term:
        if a.is_const() and b.is_const():
            return self.const(a.value + b.value)
        if a.is_const() and a.value == 0:
            return b
        if b.is_const() and b.value == 0:
            return a
        return self._mk(KIND_ADD, (a, b), None)

    def sub(self, a: Term, b: Term) -> Term:
        if a.is_const() and b.is_const():
            return self.const(a.value - b.value)
        if b.is_const() and b.value == 0:
            return a
        if a is b:
            return self.const(0)
        return self._mk(KIND_SUB, (a, b), None)

    def mul(self, a: Term, b: Term) -> Term:
        if a.is_const() and b.is_const():
            return self.const(a.value * b.value)
        if a.is_const() and a.value == 1:
            return b
        if b.is_const() and b.value == 1:
            return a
        if (a.is_const() and a.value == 0) or (b.is_const() and b.value == 0):
            return self.const(0)
        return self._mk(KIND_MUL, (a, b), None)

    def neg(self, a: Term) -> Term:
        if a.is_const():
            return self.const(-a.value)
        if a.kind == KIND_NEG:
            return a.args[0]
        return self._mk(KIND_NEG, (a,), None)

    def size(self) -> int:
        """Number of distinct terms created so far."""
        return len(self._table)

    # ------------------------------------------------------------------
    # Substitution / renaming (used for context-sensitive cloning)
    # ------------------------------------------------------------------
    def rename(self, term: Term, mapping: dict, cache: Optional[dict] = None) -> Term:
        """Rename variables per ``mapping`` (old name -> new name).

        Used by the engine's cloning-based context sensitivity: a callee's
        summarized constraint is cloned per call site by renaming all its
        variables with a context suffix (Section 3.3.1(2)).
        """
        if cache is None:
            cache = {}
        return self._rename(term, mapping, cache)

    def _rename(self, term: Term, mapping: dict, cache: dict) -> Term:
        hit = cache.get(term._id)
        if hit is not None:
            return hit
        if term.kind in (KIND_BOOL_VAR, KIND_INT_VAR):
            new_name = mapping.get(term.value)
            result = term if new_name is None else self._mk(term.kind, (), new_name)
        elif not term.args:
            result = term
        else:
            new_args = tuple(self._rename(a, mapping, cache) for a in term.args)
            if all(n is o for n, o in zip(new_args, term.args)):
                result = term
            else:
                result = self._rebuild(term.kind, new_args)
        cache[term._id] = result
        return result

    def substitute(self, term: Term, mapping: dict, cache: Optional[dict] = None) -> Term:
        """Replace variables per ``mapping`` (name -> replacement Term)."""
        if cache is None:
            cache = {}
        return self._substitute(term, mapping, cache)

    def _substitute(self, term: Term, mapping: dict, cache: dict) -> Term:
        hit = cache.get(term._id)
        if hit is not None:
            return hit
        if term.kind in (KIND_BOOL_VAR, KIND_INT_VAR):
            result = mapping.get(term.value, term)
        elif not term.args:
            result = term
        else:
            new_args = tuple(self._substitute(a, mapping, cache) for a in term.args)
            if all(n is o for n, o in zip(new_args, term.args)):
                result = term
            else:
                result = self._rebuild(term.kind, new_args)
        cache[term._id] = result
        return result

    def _rebuild(self, kind: str, args: Tuple[Term, ...]) -> Term:
        if kind == KIND_NOT:
            return self.not_(args[0])
        if kind == KIND_AND:
            return self.and_(*args)
        if kind == KIND_OR:
            return self.or_(*args)
        if kind == KIND_EQ:
            return self.eq(args[0], args[1])
        if kind == KIND_NE:
            return self.ne(args[0], args[1])
        if kind == KIND_LT:
            return self.lt(args[0], args[1])
        if kind == KIND_LE:
            return self.le(args[0], args[1])
        if kind == KIND_GT:
            return self.gt(args[0], args[1])
        if kind == KIND_GE:
            return self.ge(args[0], args[1])
        if kind == KIND_ADD:
            return self.add(args[0], args[1])
        if kind == KIND_SUB:
            return self.sub(args[0], args[1])
        if kind == KIND_MUL:
            return self.mul(args[0], args[1])
        if kind == KIND_NEG:
            return self.neg(args[0])
        return self._mk(kind, args, None)


def _flatten(parts: Iterable[Term], kind: str):
    for part in parts:
        if part.kind == kind:
            yield from part.args
        else:
            yield part


# A single shared factory backs the module-level helpers.  All analyses in
# the package use this factory so terms are shared across phases.
FACTORY = TermFactory()

TRUE = FACTORY.true
FALSE = FACTORY.false


def bool_var(name: str) -> Term:
    return FACTORY.bool_var(name)


def int_var(name: str) -> Term:
    return FACTORY.int_var(name)


def const(value: int) -> Term:
    return FACTORY.const(value)


def not_(a: Term) -> Term:
    return FACTORY.not_(a)


def and_(*parts: Term) -> Term:
    return FACTORY.and_(*parts)


def or_(*parts: Term) -> Term:
    return FACTORY.or_(*parts)


def implies(a: Term, b: Term) -> Term:
    return FACTORY.implies(a, b)


def iff(a: Term, b: Term) -> Term:
    return FACTORY.iff(a, b)


def eq(a: Term, b: Term) -> Term:
    return FACTORY.eq(a, b)


def ne(a: Term, b: Term) -> Term:
    return FACTORY.ne(a, b)


def lt(a: Term, b: Term) -> Term:
    return FACTORY.lt(a, b)


def le(a: Term, b: Term) -> Term:
    return FACTORY.le(a, b)


def gt(a: Term, b: Term) -> Term:
    return FACTORY.gt(a, b)


def ge(a: Term, b: Term) -> Term:
    return FACTORY.ge(a, b)


def add(a: Term, b: Term) -> Term:
    return FACTORY.add(a, b)


def sub(a: Term, b: Term) -> Term:
    return FACTORY.sub(a, b)


def mul(a: Term, b: Term) -> Term:
    return FACTORY.mul(a, b)


def neg(a: Term) -> Term:
    return FACTORY.neg(a)
