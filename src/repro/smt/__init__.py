"""Constraint terms and solvers.

This package provides the three constraint-solving layers used by the
Pinpoint reproduction:

- :mod:`repro.smt.terms` — hash-consed symbolic terms (the constraint
  language shared by the points-to analysis, the SEG, and the checkers).
- :mod:`repro.smt.linear_solver` — the paper's linear-time contradiction
  solver (Section 3.1.1) that filters "easy" unsatisfiable conditions.
- :mod:`repro.smt.solver` — a small DPLL(T)-style SMT solver (CDCL SAT
  core plus an equality/arithmetic theory) standing in for Z3.
"""

from repro.smt.terms import (
    FALSE,
    TRUE,
    Term,
    TermFactory,
    and_,
    bool_var,
    const,
    eq,
    ge,
    gt,
    iff,
    implies,
    int_var,
    le,
    lt,
    ne,
    not_,
    or_,
)
from repro.smt.linear_solver import LinearSolver
from repro.smt.solver import Result, SMTSolver

__all__ = [
    "FALSE",
    "TRUE",
    "Term",
    "TermFactory",
    "LinearSolver",
    "Result",
    "SMTSolver",
    "and_",
    "bool_var",
    "const",
    "eq",
    "ge",
    "gt",
    "iff",
    "implies",
    "int_var",
    "le",
    "lt",
    "ne",
    "not_",
    "or_",
]
