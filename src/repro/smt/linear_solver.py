"""The paper's linear-time contradiction solver (Section 3.1.1).

Pinpoint avoids invoking a full SMT solver during the local points-to
analysis.  Instead it runs a solver that is linear in the number of atomic
constraints: while a condition ``C`` is built, it maintains two sets of
atomic constraints, ``P(C)`` (atoms that must hold) and ``N(C)`` (atoms
whose negation must hold), with the rules

    C = a        =>  P = {a},            N = {}
    C = !C1      =>  P = N(C1),          N = P(C1)
    C = C1 & C2  =>  P = P1 u P2,        N = N1 u N2
    C = C1 | C2  =>  P = P1 n P2,        N = N1 n N2

If some atom appears in both ``P(C)`` and ``N(C)`` the condition contains
``a & !a`` and is unsatisfiable.  The paper observes that more than 90% of
unsatisfiable path conditions are such "easy" contradictions, so this
filter removes most SMT work.

The sets are computed bottom-up over the hash-consed term DAG and memoized
per term, so repeated queries over shared sub-conditions stay cheap.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.smt import terms as T
from repro.smt.terms import Term


class LinearSolver:
    """Linear-time filter for apparently-contradictory conditions."""

    def __init__(self) -> None:
        self._memo: dict = {}
        self.queries = 0
        self.pruned = 0

    def is_obviously_unsat(self, condition: Term) -> bool:
        """True when the condition contains an ``a & !a`` contradiction.

        A ``False`` answer does *not* mean satisfiable — only that the
        condition is not an "easy" contradiction and needs the SMT solver.
        """
        self.queries += 1
        if condition is T.FALSE:
            self.pruned += 1
            return True
        if condition is T.TRUE:
            return False
        pos, neg, contradictory = self._analyze(condition)
        del pos, neg
        if contradictory:
            self.pruned += 1
        return contradictory

    def atoms(self, condition: Term) -> Tuple[FrozenSet[Term], FrozenSet[Term]]:
        """Return the ``(P(C), N(C))`` sets for a condition."""
        pos, neg, _ = self._analyze(condition)
        return pos, neg

    def _analyze(self, term: Term) -> Tuple[FrozenSet[Term], FrozenSet[Term], bool]:
        memo = self._memo
        hit = memo.get(term.ident)
        if hit is not None:
            return hit
        kind = term.kind
        if term is T.TRUE:
            result = (frozenset(), frozenset(), False)
        elif term is T.FALSE:
            # Not derivable from the paper's rules (FALSE is not an atom),
            # but our factory folds constants; treat as contradiction.
            result = (frozenset(), frozenset(), True)
        elif term.is_atom():
            atom, polarity = _canonical_atom(term)
            if polarity:
                result = (frozenset((atom,)), frozenset(), False)
            else:
                result = (frozenset(), frozenset((atom,)), False)
        elif kind == T.KIND_NOT:
            pos, neg, bad = self._analyze(term.args[0])
            result = (neg, pos, bad)
        elif kind == T.KIND_AND:
            pos: frozenset = frozenset()
            neg: frozenset = frozenset()
            bad = False
            for arg in term.args:
                sub_pos, sub_neg, sub_bad = self._analyze(arg)
                pos = pos | sub_pos
                neg = neg | sub_neg
                bad = bad or sub_bad
            bad = bad or bool(pos & neg)
            result = (pos, neg, bad)
        elif kind == T.KIND_OR:
            iterator = iter(term.args)
            first = next(iterator)
            pos, neg, bad = self._analyze(first)
            for arg in iterator:
                sub_pos, sub_neg, sub_bad = self._analyze(arg)
                pos = pos & sub_pos
                neg = neg & sub_neg
                bad = bad and sub_bad
            bad = bad or bool(pos & neg)
            result = (pos, neg, bad)
        else:
            # Non-boolean term in condition position; treat opaquely.
            result = (frozenset(), frozenset(), False)
        memo[term.ident] = result
        return result


def _canonical_atom(term: Term) -> Tuple[Term, bool]:
    """Map an atom to (canonical atom, polarity).

    Comparison atoms come in negated pairs (``==``/``!=``, ``<``/``>=``,
    ...).  Choosing one canonical member per pair lets the P/N machinery
    see ``(x == y)`` and ``(x != y)`` as ``a`` and ``!a``.
    """
    kind = term.kind
    if kind == T.KIND_NE:
        return T.FACTORY._cmp(T.KIND_EQ, term.args[0], term.args[1]), False
    if kind == T.KIND_GE:
        return T.FACTORY._cmp(T.KIND_LT, term.args[0], term.args[1]), False
    if kind == T.KIND_GT:
        return T.FACTORY._cmp(T.KIND_LE, term.args[0], term.args[1]), False
    return term, True
