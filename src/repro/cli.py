"""Command-line interface.

Usage examples::

    python -m repro check program.pin --checker use-after-free
    python -m repro check program.pin --all --json
    python -m repro check program.pin --trace t.json --metrics-out m.prom
    python -m repro profile program.pin --top 15
    python -m repro run program.pin --entry main --args 3,4
    python -m repro dump-seg program.pin --function foo
    python -m repro generate --lines 1000 --seed 7 -o program.pin

The file extension is conventional; any text in the analyzed language
works.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro import (
    DataTransmissionChecker,
    DoubleFreeChecker,
    EngineConfig,
    MemoryLeakChecker,
    NullDereferenceChecker,
    PathTraversalChecker,
    Pinpoint,
    UseAfterFreeChecker,
)
from repro.cache import open_journal, resolve_cache_dir, resolve_resume
from repro.lang.parser import ParseError
from repro.obs import (
    atomic_write,
    configure_logging,
    cost_breakdown,
    get_progress,
    get_registry,
    get_tracer,
    measure,
    profile_dict,
    render_profile,
    render_why_slow,
)
from repro.obs.history import (
    BENCH_FILE,
    HistoryStore,
    TrendThresholds,
    collect_run_record,
    compute_trend,
    findings_digest,
    fingerprint_text,
    resolve_history_dir,
    write_bench_file,
)
from repro.robust import ResourceBudget, install_faults
from repro.robust.diagnostics import STAGE_VERIFY
from repro.robust.faults import slow_point

# Exit codes (see EXIT_CODE_TABLE below, shown in --help and README):
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2
EXIT_DEGRADED = 3
EXIT_VERIFY = 4
EXIT_REGRESSION = 5

EXIT_CODE_TABLE = """\
exit codes:
  0  clean — no findings, full coverage
  1  findings reported
  2  hard error (unparseable input, bad usage)
  3  degraded coverage (quarantines/budget exhaustion; findings may be
     incomplete)
  4  verification failure (--verify found a broken internal invariant,
     or selfcheck missed a seeded defect / reported a safe twin)
  5  performance regression ('history trend --check': the latest
     recorded run is slower/bigger than its rolling baseline)

4 dominates 3 dominates 1: a run that both finds bugs and trips the
verifier exits 4.  Gating CI on nonzero still catches every failure.
"""

CHECKERS = {
    "use-after-free": UseAfterFreeChecker,
    "double-free": DoubleFreeChecker,
    "null-deref": NullDereferenceChecker,
    "memory-leak": MemoryLeakChecker,
    "path-traversal": PathTraversalChecker,
    "data-transmission": DataTransmissionChecker,
}


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _report_dict(report) -> Dict:
    from repro.core.report import report_as_dict

    return report_as_dict(report)


def _build_budget(args: argparse.Namespace) -> ResourceBudget:
    return ResourceBudget(
        wall_seconds=args.deadline or None,
        max_steps=args.max_steps or None,
        smt_seconds=args.smt_deadline or None,
    )


def _setup_obs(args: argparse.Namespace, force_trace: bool = False) -> None:
    """Arm the instrumentation layer per the common obs flags.

    Each CLI run gets a *fresh* tracer and registry, so repeated in-process
    invocations (tests, embedding) never bleed spans or counts into each
    other."""
    from repro.obs import (
        MetricsRegistry,
        ProgressTracker,
        Tracer,
        set_progress,
        set_registry,
        set_tracer,
    )

    set_registry(MetricsRegistry())
    set_tracer(Tracer(enabled=force_trace or bool(getattr(args, "trace", ""))))
    set_progress(ProgressTracker())
    if getattr(args, "log_level", "") or getattr(args, "log_json", False):
        configure_logging(
            level=getattr(args, "log_level", "") or "warning",
            json_mode=getattr(args, "log_json", False),
        )


def _export_obs(args: argparse.Namespace) -> None:
    """Write the requested trace/metrics artifacts."""
    if getattr(args, "trace", ""):
        get_tracer().write_chrome_trace(args.trace)
    if getattr(args, "metrics_out", ""):
        get_registry().write(args.metrics_out)


def _start_monitor(args: argparse.Namespace):
    """Start the live monitor when ``--monitor-port`` was given (0 picks
    an ephemeral port); enables progress tracking for the run."""
    port = getattr(args, "monitor_port", None)
    if port is None:
        return None
    from repro.obs import MonitorServer

    progress = get_progress()
    progress.enabled = True
    monitor = MonitorServer(port=port)
    bound = monitor.start()
    # `repro serve` announces the bound port on *stdout* so scripts
    # started with --port 0 can read it (unless stdout carries the
    # machine report); `check --monitor-port` keeps stdout pristine.
    announce_stdout = getattr(args, "_announce_port_stdout", False) and not (
        getattr(args, "json", False) or getattr(args, "sarif", False)
    )
    print(
        f"[monitor] serving on http://127.0.0.1:{bound}",
        file=sys.stdout if announce_stdout else sys.stderr,
        flush=True,
    )
    return monitor


def _finish_monitor(monitor, args: argparse.Namespace, exit_code: int) -> None:
    """Emit the final progress event, honour ``--linger``, stop serving."""
    get_progress().finish(exit_code)
    if monitor is None:
        return
    if getattr(args, "linger", False):
        import time as _time

        print(
            "[monitor] analysis done; still serving (Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            while monitor.running:
                _time.sleep(0.2)
        except KeyboardInterrupt:
            pass
    monitor.stop()


def _record_history(
    args: argparse.Namespace,
    *,
    command: str,
    label: str,
    fingerprint: str,
    config: Dict,
    wall_seconds: float,
    peak_mb: float,
    exit_code: int,
    findings: int = 0,
    findings_by_checker=None,
    digest: str = "",
    diagnostics=None,
    profile=None,
    quiet: bool = False,
) -> str:
    """Append a run record when history recording is on; returns the
    run id ('' when recording is off)."""
    history_dir = resolve_history_dir(getattr(args, "history_dir", ""))
    if not history_dir:
        return ""
    record = collect_run_record(
        get_registry(),
        command=command,
        label=label,
        fingerprint=fingerprint,
        config=config,
        wall_seconds=wall_seconds,
        peak_mb=peak_mb,
        exit_code=exit_code,
        findings=findings,
        findings_by_checker=findings_by_checker,
        digest=digest,
        diagnostics=diagnostics,
        profile=profile,
    )
    run_id = HistoryStore(history_dir).append(record)
    if not quiet:
        print(f"[history] recorded {run_id} in {history_dir}")
    return run_id


def _print_stats(stats) -> None:
    """Every EngineStats field, generated from as_dict() so a new field
    can never be silently missing from --stats output."""
    data = stats.as_dict()
    timings = {k: v for k, v in data.items() if k.startswith("seconds_")}
    robust_keys = ("degraded_candidates", "smt_deadline_hits", "quarantined_units")
    core = {
        k: v
        for k, v in data.items()
        if k not in timings and k not in robust_keys
    }
    print("  [stats] " + " ".join(f"{k}={v}" for k, v in core.items()))
    print(
        "  [timing] "
        + " ".join(f"{k[len('seconds_'):]}={v:.3f}s" for k, v in timings.items())
    )
    if any(data[k] for k in robust_keys):
        print("  [robust] " + " ".join(f"{k}={data[k]}" for k in robust_keys))
    from repro.obs.metrics import Counter, Gauge

    registry = get_registry()

    def _total(name: str) -> int:
        metric = registry.get(name)
        return int(metric.total()) if isinstance(metric, Counter) else 0

    retries = _total("sched.retries")
    skips = _total("journal.skips")
    resumed_gauge = registry.get("sched.resumed")
    resumed = bool(
        isinstance(resumed_gauge, Gauge)
        and resumed_gauge.items()
        and resumed_gauge.items()[-1][1]
    )
    if retries or skips or resumed:
        print(
            f"  [sched] retries={retries} journal_skips={skips} "
            f"resumed={'yes' if resumed else 'no'}"
        )
    from repro.obs import Histogram

    smt_hist = get_registry().get("smt.solve_seconds")
    if isinstance(smt_hist, Histogram) and smt_hist.total_count():
        quantiles = smt_hist.merged_quantiles()
        print(
            "  [quantiles] smt.solve_seconds "
            + " ".join(
                f"{key}={value * 1000:.2f}ms" for key, value in quantiles.items()
            )
        )


def cmd_check(args: argparse.Namespace) -> int:
    _setup_obs(args)
    if args.fault:
        install_faults(args.fault)
    source = _read(args.file)
    config = EngineConfig(
        max_call_depth=args.depth,
        use_smt=not args.no_smt,
        use_linear_filter=not args.no_linear_filter,
        verify=args.verify,
        pta_tier=getattr(args, "pta", "") or "",
    )
    names = list(CHECKERS) if args.all else [args.checker]
    history_on = bool(resolve_history_dir(getattr(args, "history_dir", "")))
    monitor = _start_monitor(args)
    get_progress().begin_run("check", label=args.file)

    # The run journal lives under the cache dir (the artifacts a resume
    # replays live there too), falling back to the history dir; with
    # neither configured there is nowhere durable to journal to.
    journal = open_journal(
        resolve_cache_dir(args.cache_dir),
        resolve_history_dir(getattr(args, "history_dir", "")),
    )
    resume = resolve_resume(getattr(args, "resume", False))
    if resume and journal is None:
        print(
            "[resume] no journal location (pass --cache-dir or "
            "--history-dir); running fresh",
            file=sys.stderr,
        )

    def analyze():
        slow_point()
        engine = Pinpoint.from_source(
            source,
            config,
            budget=_build_budget(args),
            recover=not args.strict,
            jobs=args.jobs or None,
            cache_dir=args.cache_dir or None,
            worker_timeout=args.worker_timeout,
            journal=journal,
            resume=resume,
        )
        return engine, [engine.check(CHECKERS[name]()) for name in names]

    # Wall time and peak memory are only captured when a history record
    # will want them — tracemalloc has real overhead, and a plain check
    # should stay as fast as before this feature existed.
    if history_on:
        (engine, results), measurement = measure(analyze)
        wall_seconds, peak_mb = measurement.seconds, measurement.peak_mb
    else:
        engine, results = analyze()
        wall_seconds = peak_mb = 0.0

    baseline = None
    if args.baseline:
        from repro.core.baseline import Baseline

        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            baseline = Baseline()
    exit_code = EXIT_CLEAN
    payload: List[Dict] = []
    diagnostics: List = []
    diag_seen = set()
    for name, result in zip(names, results):
        for diag in result.diagnostics:
            key = (diag.stage, diag.unit, diag.reason, diag.line, diag.detail)
            if key not in diag_seen:
                diag_seen.add(key)
                diagnostics.append(diag)
        if baseline is not None:
            new_reports = baseline.filter_new(result)
            suppressed = len(result.reports) - len(new_reports)
            result.reports = new_reports
            if suppressed and not (args.json or args.sarif):
                print(f"[baseline] suppressed {suppressed} known {name} finding(s)")
        if result.reports:
            exit_code = EXIT_FINDINGS
        if args.sarif:
            continue
        if args.json:
            payload.extend(_report_dict(r) for r in result)
        else:
            print(result.summary_line())
            for report in result:
                print()
                print(report)
        if args.stats and not args.json:
            _print_stats(result.stats)
    if args.update_baseline:
        from repro.core.baseline import Baseline as _Baseline

        merged = _Baseline.from_results(results)
        if baseline is not None:
            merged = merged.merge(baseline)
        merged.save(args.update_baseline)
        if not (args.json or args.sarif):
            print(f"[baseline] wrote {len(merged)} finding(s) to {args.update_baseline}")
    tracer = get_tracer()
    if args.sarif:
        from repro.core.sarif import to_sarif_json

        artifact = args.file if args.file != "-" else "stdin.pin"
        print(
            to_sarif_json(
                results,
                artifact,
                metrics=get_registry().as_dict(),
                trace_summary=tracer.summary() if tracer.enabled else None,
            )
        )
    elif args.json:
        document = {
            "reports": payload,
            "diagnostics": [diag.as_dict() for diag in diagnostics],
            "stats": {result.checker: result.stats.as_dict() for result in results},
            "metrics": get_registry().as_dict(),
        }
        if tracer.enabled:
            document["trace"] = tracer.summary()
        json.dump(document, sys.stdout, indent=2)
        print()
    else:
        for diag in diagnostics:
            print(f"[diagnostic] {diag}")
    if args.dump_on_verify_fail and engine.verify_failures:
        from repro.viz.dot import write_verify_dumps

        written = write_verify_dumps(
            args.dump_on_verify_fail, engine.verify_failures, diagnostics
        )
        stream = sys.stderr if (args.json or args.sarif) else sys.stdout
        print(
            f"[verify] dumped {len(written)} offending graph(s) to "
            f"{args.dump_on_verify_fail}",
            file=stream,
        )
    _export_obs(args)
    # Degraded coverage dominates findings: they may be incomplete, and
    # CI must distinguish "clean but partial" from "clean".  A broken
    # internal invariant dominates both — those findings are untrusted.
    if diagnostics:
        exit_code = EXIT_DEGRADED
    if any(diag.stage == STAGE_VERIFY for diag in diagnostics):
        exit_code = EXIT_VERIFY
    _record_history(
        args,
        command="check",
        label=args.file,
        fingerprint=fingerprint_text(source),
        config={
            "checkers": names,
            "jobs": args.jobs or 0,
            "cache": bool(args.cache_dir),
            "depth": args.depth,
            "smt": not args.no_smt,
            "verify": args.verify,
            "fault": args.fault,
            "resume": resume,
            "pta": engine.pta_tier,
        },
        wall_seconds=wall_seconds,
        peak_mb=peak_mb,
        exit_code=exit_code,
        findings=sum(len(result.reports) for result in results),
        findings_by_checker={
            result.checker: len(result.reports) for result in results
        },
        digest=findings_digest(
            [report.key() for result in results for report in result]
        ),
        diagnostics=[diag.as_dict() for diag in diagnostics],
        quiet=args.json or args.sarif,
    )
    _finish_monitor(monitor, args, exit_code)
    return exit_code


def cmd_profile(args: argparse.Namespace) -> int:
    """Run the checkers with tracing on and print where time/memory/SMT
    effort went — per pass and per function (paper Figs. 7-10)."""
    if getattr(args, "compare", None):
        return _profile_compare(args)
    if not args.file:
        print(
            "error: profile needs a program file (or --compare OLD NEW)",
            file=sys.stderr,
        )
        return EXIT_ERROR
    _setup_obs(args, force_trace=True)
    tracer = get_tracer()
    source = _read(args.file)
    config = EngineConfig(
        max_call_depth=args.depth,
        use_smt=not args.no_smt,
        pta_tier=getattr(args, "pta", "") or "",
    )
    names = [args.checker] if args.checker else list(CHECKERS)

    def analyze():
        engine = Pinpoint.from_source(
            source,
            config,
            budget=_build_budget(args),
            recover=True,
            jobs=args.jobs or None,
            cache_dir=args.cache_dir or None,
            worker_timeout=args.worker_timeout,
        )
        return [engine.check(CHECKERS[name]()) for name in names]

    get_progress().begin_run("profile", label=args.file)
    results, measurement = measure(analyze)
    reports = sum(len(result.reports) for result in results)
    degraded = sum(len(result.diagnostics) for result in results)
    document = profile_dict(
        tracer,
        get_registry(),
        measurement,
        source_label=args.file,
        top=args.top,
    )
    document["checkers"] = names
    document["reports"] = reports
    document["diagnostics"] = degraded
    if args.json:
        json.dump(document, sys.stdout, indent=2)
        print()
    else:
        print(
            render_profile(
                tracer,
                get_registry(),
                measurement,
                source_label=args.file,
                top=args.top,
            )
        )
        print()
        print(
            f"checkers: {', '.join(names)} — {reports} report(s), "
            f"{degraded} diagnostic(s)"
        )
    _export_obs(args)
    _record_history(
        args,
        command="profile",
        label=args.file,
        fingerprint=fingerprint_text(source),
        config={"checkers": names, "top": args.top, "smt": not args.no_smt},
        wall_seconds=measurement.seconds,
        peak_mb=measurement.peak_mb,
        exit_code=EXIT_CLEAN,
        findings=reports,
        profile=document,
        quiet=args.json,
    )
    get_progress().finish(EXIT_CLEAN)
    return EXIT_CLEAN


def _delta_line(label: str, a: float, b: float, unit: str = "") -> str:
    """One ``old -> new`` comparison line, shared by ``history diff``
    and ``profile --compare``."""
    change = b - a
    pct = f" ({change / a * 100:+.1f}%)" if a else ""
    return f"  {label:<16} {a:>10.3f} -> {b:>10.3f}{unit} {change:+.3f}{pct}"


def _load_profile_document(path: str) -> Dict:
    """Load a profile-shaped JSON artifact for ``profile --compare``.

    Accepts a ``profile --json`` dump, a ``why-slow --out`` artifact, or
    a full run record from ``history show`` (whose embedded ``profile``
    document is unwrapped, inheriting the record's wall time/label)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if isinstance(document.get("profile"), dict):  # run record
        inner = dict(document["profile"])
        inner.setdefault("wall_seconds", document.get("wall_seconds", 0.0))
        inner.setdefault("label", document.get("label", ""))
        document = inner
    return document


def _profile_stage_map(document: Dict) -> Dict[str, float]:
    """pass/stage name -> self seconds, across the accepted doc shapes."""
    stages: Dict[str, float] = {}
    for row in document.get("passes", []):
        if isinstance(row, dict) and row.get("name"):
            stages[str(row["name"])] = float(row.get("self_seconds", 0.0))
    return stages


def _profile_function_map(document: Dict) -> Dict[str, float]:
    functions: Dict[str, float] = {}
    for row in document.get("functions", document.get("top_functions", [])):
        if isinstance(row, dict) and row.get("unit"):
            functions[str(row["unit"])] = float(row.get("self_seconds", 0.0))
    return functions


def _profile_compare(args: argparse.Namespace) -> int:
    """``repro profile --compare OLD NEW``: per-stage deltas between two
    profile/why-slow/history JSON artifacts — the one-command before/after
    view of a perf PR."""
    old_path, new_path = args.compare
    try:
        old = _load_profile_document(old_path)
        new = _load_profile_document(new_path)
    except (OSError, ValueError) as error:
        print(f"error: cannot read profile document: {error}", file=sys.stderr)
        return EXIT_ERROR

    stages = sorted(set(_profile_stage_map(old)) | set(_profile_stage_map(new)))
    old_stages, new_stages = _profile_stage_map(old), _profile_stage_map(new)
    old_funcs, new_funcs = _profile_function_map(old), _profile_function_map(new)
    functions = sorted(
        set(old_funcs) | set(new_funcs),
        key=lambda unit: max(old_funcs.get(unit, 0.0), new_funcs.get(unit, 0.0)),
        reverse=True,
    )[: args.top]

    if args.json:
        document = {
            "old": {"path": old_path, "label": old.get("label", "")},
            "new": {"path": new_path, "label": new.get("label", "")},
            "wall_seconds": [
                float(old.get("wall_seconds", 0.0)),
                float(new.get("wall_seconds", 0.0)),
            ],
            "traced_seconds": [
                float(old.get("traced_seconds", 0.0)),
                float(new.get("traced_seconds", 0.0)),
            ],
            "passes": {
                name: [old_stages.get(name, 0.0), new_stages.get(name, 0.0)]
                for name in stages
            },
            "functions": {
                unit: [old_funcs.get(unit, 0.0), new_funcs.get(unit, 0.0)]
                for unit in functions
            },
        }
        if old.get("shares") or new.get("shares"):
            document["shares"] = {
                key: [
                    float(old.get("shares", {}).get(key, 0.0)),
                    float(new.get("shares", {}).get(key, 0.0)),
                ]
                for key in ("compute", "dispatch_overhead")
            }
        json.dump(document, sys.stdout, indent=2)
        print()
        return EXIT_CLEAN

    print(f"{old_path} ({old.get('label', '?')}) -> {new_path} ({new.get('label', '?')})")
    print(
        _delta_line(
            "wall_seconds",
            float(old.get("wall_seconds", 0.0)),
            float(new.get("wall_seconds", 0.0)),
            "s",
        )
    )
    print(
        _delta_line(
            "traced_seconds",
            float(old.get("traced_seconds", 0.0)),
            float(new.get("traced_seconds", 0.0)),
            "s",
        )
    )
    if old.get("peak_mb") or new.get("peak_mb"):
        print(
            _delta_line(
                "peak_mb",
                float(old.get("peak_mb", 0.0)),
                float(new.get("peak_mb", 0.0)),
                "MB",
            )
        )
    for name in stages:
        print(
            _delta_line(
                f"pass {name}",
                old_stages.get(name, 0.0),
                new_stages.get(name, 0.0),
                "s",
            )
        )
    if functions:
        print("hottest functions (self seconds):")
        for unit in functions:
            print(
                _delta_line(
                    f"fn {unit}",
                    old_funcs.get(unit, 0.0),
                    new_funcs.get(unit, 0.0),
                    "s",
                )
            )
    if old.get("shares") or new.get("shares"):
        for key in ("compute", "dispatch_overhead"):
            print(
                _delta_line(
                    f"share {key}",
                    float(old.get("shares", {}).get(key, 0.0)),
                    float(new.get("shares", {}).get(key, 0.0)),
                )
            )
    return EXIT_CLEAN


def cmd_why_slow(args: argparse.Namespace) -> int:
    """Run the checkers with tracing forced on, then answer "where did
    the wall time go": critical path through the wave barriers, per-wave
    stragglers, compute-vs-dispatch-overhead split, top functions and
    SMT consumers (repro.obs.attr)."""
    _setup_obs(args, force_trace=True)
    tracer = get_tracer()
    source = _read(args.file)
    config = EngineConfig(
        max_call_depth=args.depth,
        use_smt=not args.no_smt,
        pta_tier=getattr(args, "pta", "") or "",
    )
    names = [args.checker] if args.checker else list(CHECKERS)

    def analyze():
        engine = Pinpoint.from_source(
            source,
            config,
            budget=_build_budget(args),
            recover=True,
            jobs=args.jobs or None,
            cache_dir=args.cache_dir or None,
            worker_timeout=args.worker_timeout,
        )
        return [engine.check(CHECKERS[name]()) for name in names]

    get_progress().begin_run("why-slow", label=args.file)
    results, measurement = measure(analyze)
    reports = sum(len(result.reports) for result in results)
    document = cost_breakdown(
        tracer,
        get_registry(),
        measurement,
        source_label=args.file,
        top=args.top,
    )
    document["checkers"] = names
    document["reports"] = reports
    if args.json:
        json.dump(document, sys.stdout, indent=2)
        print()
    else:
        print(render_why_slow(document, top=args.top))
    if args.out:
        atomic_write(args.out, json.dumps(document, indent=2, sort_keys=True) + "\n")
        if not args.json:
            print(f"[why-slow] wrote {args.out}")
    _export_obs(args)
    _record_history(
        args,
        command="why-slow",
        label=args.file,
        fingerprint=fingerprint_text(source),
        config={"checkers": names, "jobs": args.jobs or 0, "top": args.top},
        wall_seconds=measurement.seconds,
        peak_mb=measurement.peak_mb,
        exit_code=EXIT_CLEAN,
        findings=reports,
        profile=document,
        quiet=args.json,
    )
    get_progress().finish(EXIT_CLEAN)
    return EXIT_CLEAN


def cmd_run(args: argparse.Namespace) -> int:
    from repro.lang.interp import run_function

    source = _read(args.file)
    try:
        values = [int(v) for v in args.args.split(",")] if args.args else []
    except ValueError:
        print(
            f"error: --args expects comma-separated integers, got {args.args!r}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    interp = run_function(
        source, args.entry, *values, halt_on_violation=not args.keep_going
    )
    for violation in interp.violations:
        print(f"violation: {violation}")
    if not interp.violations:
        print("run completed with no memory-safety violations")
    if interp.taint_sink_hits:
        for event in interp.taint_sink_hits:
            print(
                f"taint reached sink {event.detail} at "
                f"{event.function}:{event.line}"
            )
    return 1 if interp.violations else 0


def cmd_dump_seg(args: argparse.Namespace) -> int:
    from repro.viz.dot import seg_to_dot

    source = _read(args.file)
    engine = Pinpoint.from_source(
        source, jobs=args.jobs or None, cache_dir=args.cache_dir or None
    )
    if args.function not in engine.functions:
        print(f"no such function: {args.function}", file=sys.stderr)
        return 2
    print(seg_to_dot(engine.functions[args.function].seg))
    return 0


def cmd_dump_cfg(args: argparse.Namespace) -> int:
    from repro.viz.dot import cfg_to_dot

    source = _read(args.file)
    engine = Pinpoint.from_source(
        source, jobs=args.jobs or None, cache_dir=args.cache_dir or None
    )
    if args.function not in engine.functions:
        print(f"no such function: {args.function}", file=sys.stderr)
        return 2
    print(cfg_to_dot(engine.functions[args.function].prepared.function))
    return 0


def _open_cache(args: argparse.Namespace):
    """The store named by --cache-dir / REPRO_CACHE_DIR, or None (after
    printing a usage error)."""
    from repro.cache import open_store, resolve_cache_dir

    resolved = resolve_cache_dir(args.cache_dir)
    if not resolved:
        print(
            "error: no cache directory (pass --cache-dir or set "
            "REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return None
    return open_store(resolved)


def cmd_cache_stats(args: argparse.Namespace) -> int:
    store = _open_cache(args)
    if store is None:
        return EXIT_ERROR
    data = store.stats()
    if args.json:
        json.dump(data, sys.stdout, indent=2)
        print()
    else:
        print(f"cache root:      {data['root']}")
        print(f"schema version:  v{data['schema_version']}")
        print(f"entries:         {data['entries']}")
        print(f"bytes on disk:   {data['bytes']}")
        if data["pruned_stale_versions"]:
            print(f"stale entries pruned on open: {data['pruned_stale_versions']}")
    return EXIT_CLEAN


def cmd_cache_clear(args: argparse.Namespace) -> int:
    store = _open_cache(args)
    if store is None:
        return EXIT_ERROR
    removed = store.clear()
    print(f"removed {removed} cached artifact(s) from {store.root}")
    return EXIT_CLEAN


def cmd_cache_warm(args: argparse.Namespace) -> int:
    """Prepare (and persist) every function of a program without running
    any checker — so the next `repro check --cache-dir ...` starts hot."""
    from repro.core.pipeline import prepare_source
    from repro.obs import MetricsRegistry, Tracer, set_registry, set_tracer
    from repro.sched import resolve_jobs

    store = _open_cache(args)
    if store is None:
        return EXIT_ERROR
    set_registry(MetricsRegistry())
    set_tracer(Tracer())
    source = _read(args.file)
    module = prepare_source(
        source, recover=True, jobs=resolve_jobs(args.jobs or None), store=store
    )
    registry = get_registry()
    hits = int(registry.counter("cache.hits").total())
    writes = int(registry.counter("cache.writes").total())
    print(
        f"warmed {len(module.functions)} function(s): "
        f"{hits} already cached, {writes} newly written"
    )
    return EXIT_CLEAN


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.synth.generator import GeneratorConfig, generate_program

    config = GeneratorConfig(
        seed=args.seed,
        target_lines=args.lines,
        taint_period=7 if args.taint else 0,
    )
    program = generate_program(config)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(program.source)
        print(
            f"wrote {program.line_count} lines "
            f"({len(program.true_bugs())} seeded bugs, "
            f"{len(program.traps())} traps) to {args.output}"
        )
    else:
        sys.stdout.write(program.source)
    return 0


def cmd_selfcheck(args: argparse.Namespace) -> int:
    """Differential sanitizer harness: seeded synth corpus, static
    engine with the verifier on, cross-checked against the interpreter
    oracle (see docs/verification.md)."""
    from repro.verify.selfcheck import parse_seed_spec, run_selfcheck

    _setup_obs(args)
    seeds = parse_seed_spec(args.seeds)
    history_on = bool(resolve_history_dir(getattr(args, "history_dir", "")))
    monitor = _start_monitor(args)
    get_progress().begin_run("selfcheck", label=args.seeds)

    def analyze():
        slow_point()
        return run_selfcheck(
            seeds,
            lines=args.lines,
            mode=args.verify or "full",
            oracle=not args.no_oracle,
            jobs=args.jobs or None,
            cache_dir=args.cache_dir or None,
        )

    if history_on:
        report, measurement = measure(analyze)
        wall_seconds, peak_mb = measurement.seconds, measurement.peak_mb
    else:
        report = analyze()
        wall_seconds = peak_mb = 0.0
    document = report.as_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
    if args.json:
        json.dump(document, sys.stdout, indent=2)
        print()
    else:
        print(
            f"selfcheck: {len(report.outcomes)} seed(s) x {args.lines} lines, "
            f"checker={report.checker}, verify={report.mode}, "
            f"oracle={'on' if report.oracle else 'off'}"
        )
        for kind, recall in document["recall_by_kind"].items():
            print(f"  recall {kind}: {recall:.2f}")
        print(
            f"  trap reports: {document['trap_reports']}  "
            f"range-trap reports: {document['range_trap_reports']}  "
            f"other FPs: {document['other_false_positives']}"
        )
        print(
            f"  verifier violations: {document['verify_violations']}  "
            f"oracle disagreements: {document['oracle_disagreements']}"
        )
        for outcome in report.outcomes:
            if outcome.ok:
                continue
            problems = (
                [f"missed {m}" for m in outcome.missed]
                + [f"trap report {t}" for t in outcome.trap_reports]
                + [f"oracle {o}" for o in outcome.oracle_disagreements]
                + (
                    [f"{outcome.verify_violations} verifier violation(s)"]
                    if outcome.verify_violations
                    else []
                )
            )
            print(f"  seed {outcome.seed}: FAIL — {'; '.join(problems)}")
        print(f"result: {'PASS' if report.ok else 'FAIL'}")
    _export_obs(args)
    exit_code = EXIT_CLEAN if report.ok else EXIT_VERIFY
    _record_history(
        args,
        command="selfcheck",
        label=args.seeds,
        fingerprint=fingerprint_text(f"selfcheck:{args.seeds}:{args.lines}"),
        config={
            "seeds": args.seeds,
            "lines": args.lines,
            "verify": args.verify or "full",
            "oracle": not args.no_oracle,
            "jobs": args.jobs or 0,
        },
        wall_seconds=wall_seconds,
        peak_mb=peak_mb,
        exit_code=exit_code,
        findings=document.get("trap_reports", 0)
        + document.get("other_false_positives", 0),
        quiet=args.json,
    )
    _finish_monitor(monitor, args, exit_code)
    return exit_code


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro check`` with the live monitor on: serve /healthz /metrics
    /status /events while the analysis runs (and afterwards, with
    --linger)."""
    args.monitor_port = args.port
    args._announce_port_stdout = True
    return cmd_check(args)


def cmd_daemon(args: argparse.Namespace) -> int:
    """Run the persistent analysis service until SIGTERM/SIGINT (see
    docs/service.md).  Prints the bound port on stdout — with --port 0
    scripts read the ephemeral port from that line."""
    import signal
    import threading
    import time as time_mod

    from repro.cache import resolve_cache_dir as _resolve_cache
    from repro.service import ServiceConfig, ServiceServer

    _setup_obs(args)
    get_progress().enabled = True
    get_progress().begin_run("daemon", label=f"workers={args.workers}")
    config = ServiceConfig(
        workers=args.workers,
        queue_max=args.queue_max,
        max_sessions=args.max_sessions,
        depth=args.depth,
        no_smt=args.no_smt,
        verify=args.verify,
        pta=getattr(args, "pta", "") or "",
        deadline=args.deadline,
        smt_deadline=args.smt_deadline,
        max_steps=args.max_steps,
        cache_dir=_resolve_cache(args.cache_dir),
        history_dir=resolve_history_dir(getattr(args, "history_dir", "")),
    )
    server = ServiceServer(config)
    port = server.start(args.port)
    print(f"[daemon] listening on http://127.0.0.1:{port}", flush=True)

    stop_requested = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda *_: stop_requested.set())
        signal.signal(signal.SIGINT, lambda *_: stop_requested.set())
    except ValueError:
        pass  # not the main thread (in-process tests drive stop() directly)
    started = time_mod.monotonic()
    try:
        while not stop_requested.is_set() and server.running:
            stop_requested.wait(timeout=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    uptime = time_mod.monotonic() - started
    counts = server.jobs.counts()
    _export_obs(args)
    get_progress().finish(EXIT_CLEAN)
    _record_history(
        args,
        command="daemon",
        label=f"port:{port}",
        fingerprint=fingerprint_text(
            f"daemon:workers={args.workers}:queue={args.queue_max}"
        ),
        config={
            "workers": args.workers,
            "queue_max": args.queue_max,
            "max_sessions": args.max_sessions,
            "depth": args.depth,
            "smt": not args.no_smt,
            "pta": getattr(args, "pta", "") or "",
            "cache": bool(config.cache_dir),
        },
        wall_seconds=uptime,
        peak_mb=0.0,
        exit_code=EXIT_CLEAN,
    )
    print(
        f"[daemon] stopped after {uptime:.1f}s "
        f"({sum(counts.values())} job(s): "
        + (
            " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            or "none"
        )
        + ")",
        flush=True,
    )
    return EXIT_CLEAN


def cmd_client(args: argparse.Namespace) -> int:
    """Talk to a running daemon; prints the JSON response.  For check
    and edit, the exit code mirrors the one-shot `repro check` codes
    (0 clean, 1 findings, 3 degraded, 4 verify) from the result."""
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.port, host=args.host, timeout=args.timeout)
    action = args.client_command
    checkers: object = "all"
    if getattr(args, "checker", "") and not getattr(args, "all", False):
        checkers = [args.checker]
    try:
        if action == "health":
            document = client.health()
        elif action == "sessions":
            document = {"sessions": client.sessions()}
        elif action == "check":
            document = client.check(
                _read(args.file),
                checkers=checkers,
                session=args.session,
                wait=not args.no_wait,
            )
        elif action == "edit":
            document = client.edit(
                args.session,
                _read(args.file),
                checkers=checkers,
                function=args.function,
            )
        elif action == "job":
            document = client.job(args.id)
        else:  # result
            document = client.result(args.id)
    except ServiceError as error:
        print(json.dumps(error.payload, indent=2, sort_keys=True), file=sys.stderr)
        if error.overloaded:
            print(
                f"error: daemon overloaded; retry after "
                f"{error.retry_after}s",
                file=sys.stderr,
            )
        else:
            print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as error:
        print(
            f"error: cannot reach daemon at {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    json.dump(document, sys.stdout, indent=2, sort_keys=True)
    print()
    if action in ("check", "edit"):
        status = document.get("status", "")
        if status == "done":
            return int(document.get("exit_code", EXIT_CLEAN))
        if status in ("failed", "aborted"):
            return EXIT_ERROR
    return EXIT_CLEAN


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running daemon with concurrent mixed cold/warm/edit
    traffic and report per-kind latency quantiles (docs/service.md)."""
    from repro.service.loadgen import LoadConfig, run_load

    _setup_obs(args)
    registry = get_registry()
    histogram = registry.histogram(
        "service.request_seconds",
        "Client-visible daemon request latency (loadgen measurement)",
    )

    def on_sample(sample) -> None:
        histogram.observe(sample["seconds"], kind=sample["kind"])

    config = LoadConfig(
        clients=args.clients,
        edits_per_client=args.edits,
        target_lines=args.lines,
        seed=args.seed,
    )
    try:
        report = run_load(
            args.port, config, host=args.host, on_sample=on_sample
        )
    except OSError as error:
        print(
            f"error: cannot reach daemon at {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    summary = report.summary()
    document = {"summary": summary, "samples": report.samples}
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        json.dump(document if args.samples else {"summary": summary},
                  sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(
            f"loadgen: {summary['requests']} request(s) from "
            f"{args.clients} client(s) in {summary['wall_seconds']}s "
            f"({summary['rejected']} rejected, {summary['errors']} error(s))"
        )
        for kind, stats in summary["kinds"].items():
            print(
                f"  {kind:<5} n={stats['count']:<4} "
                f"p50={stats['p50'] * 1000:8.2f}ms "
                f"p95={stats['p95'] * 1000:8.2f}ms "
                f"p99={stats['p99'] * 1000:8.2f}ms "
                f"max={stats['max'] * 1000:8.2f}ms"
            )
        if args.out:
            print(f"  trajectory written to {args.out}")
    for error in report.errors:
        print(f"error: {error}", file=sys.stderr)
    _export_obs(args)
    _record_history(
        args,
        command="loadgen",
        label=f"clients={args.clients} edits={args.edits}",
        fingerprint=fingerprint_text(
            f"loadgen:{args.clients}:{args.edits}:{args.lines}:{args.seed}"
        ),
        config={
            "clients": args.clients,
            "edits": args.edits,
            "lines": args.lines,
            "seed": args.seed,
        },
        wall_seconds=report.wall_seconds,
        peak_mb=0.0,
        exit_code=EXIT_CLEAN if not report.errors else EXIT_ERROR,
        quiet=args.json,
    )
    return EXIT_CLEAN if not report.errors else EXIT_ERROR


def _open_history(args: argparse.Namespace):
    """The store named by --history-dir / REPRO_HISTORY_DIR, or None
    (after printing a usage error)."""
    resolved = resolve_history_dir(getattr(args, "history_dir", ""))
    if not resolved:
        print(
            "error: no history directory (pass --history-dir or set "
            "REPRO_HISTORY_DIR)",
            file=sys.stderr,
        )
        return None
    return HistoryStore(resolved)


def cmd_history_list(args: argparse.Namespace) -> int:
    store = _open_history(args)
    if store is None:
        return EXIT_ERROR
    index = store.index()
    if args.json:
        json.dump(index, sys.stdout, indent=2)
        print()
        return EXIT_CLEAN
    if not index:
        print(f"no runs recorded in {store.directory}")
        return EXIT_CLEAN
    header = (
        f"{'run':<8} {'when':<20} {'command':<10} {'wall':>9} {'peak':>9} "
        f"{'finds':>5} {'exit':>4}  label"
    )
    print(header)
    print("-" * len(header))
    for entry in index:
        print(
            f"{entry['run_id']:<8} {entry['ts_iso']:<20} "
            f"{entry['command']:<10} {entry['wall_seconds']:>8.3f}s "
            f"{entry['peak_mb']:>7.1f}MB {entry['findings']:>5} "
            f"{entry['exit_code']:>4}  {entry['label']}"
        )
    return EXIT_CLEAN


def cmd_history_show(args: argparse.Namespace) -> int:
    store = _open_history(args)
    if store is None:
        return EXIT_ERROR
    record = store.get(args.run) if args.run else store.latest()
    if record is None:
        which = args.run or "latest"
        print(f"error: no such run: {which}", file=sys.stderr)
        return EXIT_ERROR
    json.dump(record, sys.stdout, indent=2, sort_keys=True)
    print()
    return EXIT_CLEAN


def cmd_history_diff(args: argparse.Namespace) -> int:
    store = _open_history(args)
    if store is None:
        return EXIT_ERROR
    if not args.old and not args.new:
        records = store.records()
        if len(records) < 2:
            print("error: need at least two recorded runs to diff", file=sys.stderr)
            return EXIT_ERROR
        args.old = records[-2]["run_id"]
        args.new = records[-1]["run_id"]
    old = store.get(args.old)
    new = store.get(args.new)
    missing = [rid for rid, rec in ((args.old, old), (args.new, new)) if rec is None]
    if missing:
        print(f"error: no such run: {', '.join(missing)}", file=sys.stderr)
        return EXIT_ERROR

    delta = _delta_line

    if args.json:
        document = {
            "old": old["run_id"],
            "new": new["run_id"],
            "wall_seconds": [old["wall_seconds"], new["wall_seconds"]],
            "peak_mb": [old["peak_mb"], new["peak_mb"]],
            "findings": [
                old["findings"]["total"], new["findings"]["total"]
            ],
            "stages": {
                stage: [
                    old.get("stages", {}).get(stage, 0.0),
                    new.get("stages", {}).get(stage, 0.0),
                ]
                for stage in sorted(
                    set(old.get("stages", {})) | set(new.get("stages", {}))
                )
            },
            "same_fingerprint": old["fingerprint"] == new["fingerprint"],
            "same_findings_digest": old["findings"].get("digest")
            == new["findings"].get("digest"),
            "resumed": [
                bool(old.get("sched", {}).get("resumed")),
                bool(new.get("sched", {}).get("resumed")),
            ],
            "retries": [
                int(old.get("sched", {}).get("retries", 0)),
                int(new.get("sched", {}).get("retries", 0)),
            ],
            "journal_skips": [
                int(old.get("sched", {}).get("journal_skips", 0)),
                int(new.get("sched", {}).get("journal_skips", 0)),
            ],
            "attr": {
                "critical_path_seconds": [
                    float(old.get("sched", {}).get("critical_path_seconds", 0.0)),
                    float(new.get("sched", {}).get("critical_path_seconds", 0.0)),
                ],
                "overhead_ratio": [
                    float(old.get("sched", {}).get("overhead_ratio", 0.0)),
                    float(new.get("sched", {}).get("overhead_ratio", 0.0)),
                ],
                "utilization": [
                    float(old.get("sched", {}).get("utilization", 0.0)),
                    float(new.get("sched", {}).get("utilization", 0.0)),
                ],
            },
            "pta": {
                "tier": [
                    str(old.get("pta", {}).get("tier", "fi")),
                    str(new.get("pta", {}).get("tier", "fi")),
                ],
                "strong_updates": [
                    int(old.get("pta", {}).get("strong_updates", 0)),
                    int(new.get("pta", {}).get("strong_updates", 0)),
                ],
                "weak_updates": [
                    int(old.get("pta", {}).get("weak_updates", 0)),
                    int(new.get("pta", {}).get("weak_updates", 0)),
                ],
                "escalations": [
                    int(old.get("pta", {}).get("escalations", 0)),
                    int(new.get("pta", {}).get("escalations", 0)),
                ],
            },
        }
        json.dump(document, sys.stdout, indent=2)
        print()
        return EXIT_CLEAN
    print(f"{old['run_id']} ({old['ts_iso']}) -> {new['run_id']} ({new['ts_iso']})")
    if old["fingerprint"] != new["fingerprint"]:
        print(
            "  NOTE: different source fingerprints "
            f"({old['fingerprint']} vs {new['fingerprint']}); timings are "
            "not comparable"
        )
    print(delta("wall_seconds", old["wall_seconds"], new["wall_seconds"], "s"))
    print(delta("peak_mb", old["peak_mb"], new["peak_mb"], "MB"))
    for stage in sorted(set(old.get("stages", {})) | set(new.get("stages", {}))):
        print(
            delta(
                f"stage {stage}",
                old.get("stages", {}).get(stage, 0.0),
                new.get("stages", {}).get(stage, 0.0),
                "s",
            )
        )
    old_f = old["findings"]["total"]
    new_f = new["findings"]["total"]
    print(f"  {'findings':<16} {old_f:>10} -> {new_f:>10} {new_f - old_f:+d}")
    if old["findings"].get("digest") != new["findings"].get("digest"):
        print("  findings digest changed (different bug sets)")
    # A tier change explains wall/findings deltas — surface it loudly so
    # an fi-vs-fs comparison never reads as silent perf/precision drift.
    old_p = old.get("pta", {})
    new_p = new.get("pta", {})
    old_tier = str(old_p.get("tier", "fi"))
    new_tier = str(new_p.get("tier", "fi"))
    if old_tier != new_tier:
        print(
            f"  NOTE: PTA tier changed ({old_tier} -> {new_tier}); wall and "
            "findings deltas reflect the precision tier, not drift"
        )
    pta_bits = []
    for key in ("strong_updates", "weak_updates", "escalations"):
        a, b = int(old_p.get(key, 0)), int(new_p.get(key, 0))
        if a or b:
            pta_bits.append(f"{key} {a} -> {b}")
    if pta_bits:
        print(f"  pta[{old_tier} -> {new_tier}] " + "; ".join(pta_bits))
    old_s = old.get("sched", {})
    new_s = new.get("sched", {})
    flags = []
    if old_s.get("resumed") or new_s.get("resumed"):
        flags.append(
            "resumed "
            f"{'yes' if old_s.get('resumed') else 'no'} -> "
            f"{'yes' if new_s.get('resumed') else 'no'}"
        )
    if old_s.get("journal_skips") or new_s.get("journal_skips"):
        flags.append(
            f"journal_skips {old_s.get('journal_skips', 0)} -> "
            f"{new_s.get('journal_skips', 0)}"
        )
    if old_s.get("retries") or new_s.get("retries"):
        flags.append(
            f"retries {old_s.get('retries', 0)} -> {new_s.get('retries', 0)}"
        )
    if flags:
        print("  " + "; ".join(flags))
    # Cost attribution (parallel runs): the dispatch-overhead share and
    # critical path, so "did the perf PR move the split" is one diff.
    if old_s.get("critical_path_seconds") or new_s.get("critical_path_seconds"):
        print(
            delta(
                "critical_path",
                float(old_s.get("critical_path_seconds", 0.0)),
                float(new_s.get("critical_path_seconds", 0.0)),
                "s",
            )
        )
        print(
            delta(
                "overhead_ratio",
                float(old_s.get("overhead_ratio", 0.0)),
                float(new_s.get("overhead_ratio", 0.0)),
            )
        )
        print(
            delta(
                "utilization",
                float(old_s.get("utilization", 0.0)),
                float(new_s.get("utilization", 0.0)),
            )
        )
    return EXIT_CLEAN


def cmd_history_trend(args: argparse.Namespace) -> int:
    store = _open_history(args)
    if store is None:
        return EXIT_ERROR
    records = store.records()
    thresholds = TrendThresholds(
        wall_ratio=args.max_wall_ratio,
        mem_ratio=args.max_mem_ratio,
        baseline_runs=args.baseline_runs,
        min_runs=args.min_runs,
    )
    trend = compute_trend(records, thresholds)
    bench_path = args.bench_out or BENCH_FILE
    write_bench_file(bench_path, records, trend)
    if args.json:
        json.dump(trend.as_dict(), sys.stdout, indent=2)
        print()
    else:
        verdict = "OK" if trend.ok else "REGRESSION"
        print(f"trend: {verdict} — {trend.reason}")
        if trend.baseline:
            print(
                f"  baseline (median of {trend.baseline_count}): "
                f"wall={trend.baseline['wall_seconds']:.3f}s "
                f"peak={trend.baseline['peak_mb']:.1f}MB "
                f"findings={trend.baseline['findings']}"
            )
        if trend.latest is not None:
            print(
                f"  latest ({trend.latest.get('run_id', '?')}): "
                f"wall={trend.latest.get('wall_seconds', 0.0):.3f}s "
                f"peak={trend.latest.get('peak_mb', 0.0):.1f}MB "
                f"findings={trend.latest.get('findings', {}).get('total', 0)}"
            )
        for regression in trend.regressions:
            detail = f"  REGRESSED {regression['metric']}: "
            detail += f"{regression['baseline']} -> {regression['latest']}"
            if regression.get("ratio") is not None:
                detail += (
                    f" ({regression['ratio']}x, threshold "
                    f"{regression['threshold_ratio']}x)"
                )
            print(detail)
        print(f"  trajectory written to {bench_path}")
    if args.check and not trend.ok:
        return EXIT_REGRESSION
    return EXIT_CLEAN


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pinpoint (PLDI 2018) reproduction: sparse value-flow analysis.",
        epilog=EXIT_CODE_TABLE,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Flags shared by every analysis-running subcommand: they arm the
    # instrumentation layer (repro.obs) and pick where it exports to.
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="write a Chrome trace_event JSON of the run (open in "
        "chrome://tracing or Perfetto)",
    )
    obs.add_argument(
        "--metrics-out",
        default="",
        metavar="FILE",
        help="write the metrics registry here (.json for JSON, anything "
        "else for Prometheus text format)",
    )
    obs.add_argument(
        "--log-level",
        default="",
        choices=["debug", "info", "warning", "error"],
        help="enable structured logging at this level",
    )
    obs.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines (implies logging enabled)",
    )
    obs.add_argument(
        "--history-dir",
        default="",
        metavar="DIR",
        help="append a run record (timings, memory, cache traffic, "
        "findings digest) to the history store here (default: the "
        "REPRO_HISTORY_DIR environment variable, else off); see the "
        "'history' subcommand",
    )
    obs.add_argument(
        "--monitor-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the live monitor (/healthz /metrics /status /events) "
        "on this port while the run is in flight (0 picks a free port)",
    )

    # Flags shared by every analysis-running subcommand: the parallel
    # wave scheduler and the persistent artifact cache (repro.sched /
    # repro.cache).  Reports are byte-identical whatever the job count
    # or cache state.
    par = argparse.ArgumentParser(add_help=False)
    par.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="prepare call-graph waves on N worker processes (default: "
        "the REPRO_JOBS environment variable, else 1 = serial)",
    )
    par.add_argument(
        "--cache-dir",
        default="",
        metavar="DIR",
        help="persist per-function artifacts here and reuse them across "
        "runs (default: the REPRO_CACHE_DIR environment variable, else "
        "off); see also the 'cache' subcommand",
    )
    par.add_argument(
        "--worker-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-function ceiling for worker tasks under --jobs; a task "
        "past it walks the retry ladder (backoff, isolation) and is "
        "quarantined (exit 3) only when that is exhausted",
    )
    par.add_argument(
        "--resume",
        action="store_true",
        help="resume a crashed run from the write-ahead journal under "
        "the cache/history dir: journaled functions load from the "
        "artifact cache, only the rest recompute, and the report is "
        "byte-identical to an uninterrupted run (default: the "
        "REPRO_RESUME environment variable, else off)",
    )

    check = sub.add_parser(
        "check", help="statically check a program", parents=[obs, par]
    )
    check.add_argument("file", help="program file ('-' for stdin)")
    check.add_argument(
        "--checker",
        choices=sorted(CHECKERS),
        default="use-after-free",
    )
    check.add_argument("--all", action="store_true", help="run every checker")
    check.add_argument("--json", action="store_true", help="JSON output")
    check.add_argument("--sarif", action="store_true", help="SARIF 2.1.0 output")
    check.add_argument(
        "--baseline", default="", help="suppress findings recorded in this JSON file"
    )
    check.add_argument(
        "--update-baseline",
        default="",
        help="write the (remaining) findings to this JSON baseline file",
    )
    check.add_argument("--stats", action="store_true", help="print engine stats")
    check.add_argument("--depth", type=int, default=6, help="max calling contexts")
    check.add_argument(
        "--pta",
        default="",
        choices=["fi", "fs"],
        help="points-to precision tier: fi (flow-insensitive baseline, "
        "default) or fs (sparse flow-sensitive strong updates; functions "
        "implicated in reports are escalated and re-confirmed; default: "
        "the REPRO_PTA environment variable, else fi)",
    )
    check.add_argument("--no-smt", action="store_true", help="path-insensitive mode")
    check.add_argument(
        "--no-linear-filter", action="store_true", help="skip the linear pre-filter"
    )
    check.add_argument(
        "--deadline",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wall-clock budget; past it the analysis degrades precision "
        "instead of running on (exit 3 reports degraded coverage)",
    )
    check.add_argument(
        "--smt-deadline",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-query SMT ceiling; a query past it falls back to the "
        "linear solver's verdict with verdict=unknown",
    )
    check.add_argument(
        "--max-steps",
        type=int,
        default=0,
        metavar="N",
        help="cooperative step budget for points-to + value-flow search",
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="fail on the first parse error instead of quarantining the "
        "malformed function and continuing",
    )
    check.add_argument(
        "--fault",
        default="",
        metavar="SPEC",
        help="deterministic fault injection, e.g. 'prepare:foo' or 'smt*1' "
        "(also via REPRO_FAULTS; for testing the degradation paths)",
    )
    check.add_argument(
        "--verify",
        default="",
        choices=["off", "fast", "full"],
        help="self-verification: check IR/SEG (fast) plus call interfaces "
        "and summaries (full) after each pipeline stage; violations "
        "quarantine the function and exit 4 (default: the REPRO_VERIFY "
        "environment variable, else off)",
    )
    check.add_argument(
        "--dump-on-verify-fail",
        default="",
        metavar="DIR",
        help="write the Graphviz dot of each artifact the verifier "
        "quarantined (CFG or SEG, with the violated rules as comments) "
        "into this directory",
    )
    check.set_defaults(func=cmd_check)

    profile = sub.add_parser(
        "profile",
        help="run the checkers and print the hottest passes/functions",
        parents=[obs, par],
    )
    profile.add_argument(
        "file",
        nargs="?",
        default="",
        help="program file ('-' for stdin); omit with --compare",
    )
    profile.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="instead of running, diff two profile/why-slow/history JSON "
        "artifacts and print per-stage deltas (before/after of a perf PR)",
    )
    profile.add_argument(
        "--checker",
        choices=sorted(CHECKERS),
        default="",
        help="profile a single checker (default: all of them)",
    )
    profile.add_argument(
        "--top", type=int, default=10, help="rows per table (default 10)"
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit the profile as JSON (the machine twin of the tables)",
    )
    profile.add_argument("--depth", type=int, default=6, help="max calling contexts")
    profile.add_argument(
        "--pta",
        default="",
        choices=["fi", "fs"],
        help="points-to precision tier (fi | fs; default REPRO_PTA, else fi)",
    )
    profile.add_argument(
        "--no-smt", action="store_true", help="path-insensitive mode"
    )
    profile.add_argument("--deadline", type=float, default=0.0, metavar="SECONDS")
    profile.add_argument("--smt-deadline", type=float, default=0.0, metavar="SECONDS")
    profile.add_argument("--max-steps", type=int, default=0, metavar="N")
    profile.set_defaults(func=cmd_profile)

    why_slow = sub.add_parser(
        "why-slow",
        help="run the checkers and attribute the wall time: critical "
        "path, per-wave stragglers, compute vs dispatch overhead",
        parents=[obs, par],
    )
    why_slow.add_argument("file", help="program file ('-' for stdin)")
    why_slow.add_argument(
        "--checker",
        choices=sorted(CHECKERS),
        default="",
        help="analyze a single checker (default: all of them)",
    )
    why_slow.add_argument(
        "--top", type=int, default=10, help="rows per table (default 10)"
    )
    why_slow.add_argument(
        "--json",
        action="store_true",
        help="emit the breakdown as JSON instead of tables",
    )
    why_slow.add_argument(
        "--out",
        default="",
        metavar="FILE",
        help="also write the breakdown JSON artifact here (atomic)",
    )
    why_slow.add_argument("--depth", type=int, default=6, help="max calling contexts")
    why_slow.add_argument(
        "--pta",
        default="",
        choices=["fi", "fs"],
        help="points-to precision tier (fi | fs; default REPRO_PTA, else fi)",
    )
    why_slow.add_argument(
        "--no-smt", action="store_true", help="path-insensitive mode"
    )
    why_slow.add_argument("--deadline", type=float, default=0.0, metavar="SECONDS")
    why_slow.add_argument(
        "--smt-deadline", type=float, default=0.0, metavar="SECONDS"
    )
    why_slow.add_argument("--max-steps", type=int, default=0, metavar="N")
    why_slow.set_defaults(func=cmd_why_slow)

    run = sub.add_parser("run", help="execute a program in the interpreter")
    run.add_argument("file")
    run.add_argument("--entry", default="main")
    run.add_argument("--args", default="", help="comma-separated integer arguments")
    run.add_argument(
        "--keep-going", action="store_true", help="record violations and continue"
    )
    run.set_defaults(func=cmd_run)

    seg = sub.add_parser(
        "dump-seg",
        help="print a function's SEG as Graphviz dot",
        parents=[par],
    )
    seg.add_argument("file")
    seg.add_argument("--function", required=True)
    seg.set_defaults(func=cmd_dump_seg)

    cfg = sub.add_parser(
        "dump-cfg",
        help="print a function's CFG as Graphviz dot",
        parents=[par],
    )
    cfg.add_argument("file")
    cfg.add_argument("--function", required=True)
    cfg.set_defaults(func=cmd_dump_cfg)

    cache = sub.add_parser(
        "cache",
        help="inspect or manage the on-disk artifact cache (--cache-dir)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_dir_help = (
        "the cache directory (default: the REPRO_CACHE_DIR environment "
        "variable)"
    )
    cache_stats = cache_sub.add_parser(
        "stats", help="print entry count, bytes on disk, and schema version"
    )
    cache_stats.add_argument("--cache-dir", default="", metavar="DIR", help=cache_dir_help)
    cache_stats.add_argument("--json", action="store_true", help="JSON output")
    cache_stats.set_defaults(func=cmd_cache_stats)
    cache_clear = cache_sub.add_parser(
        "clear", help="remove every cached artifact (all schema versions)"
    )
    cache_clear.add_argument("--cache-dir", default="", metavar="DIR", help=cache_dir_help)
    cache_clear.set_defaults(func=cmd_cache_clear)
    cache_warm = cache_sub.add_parser(
        "warm",
        help="prepare a program into the cache without running checkers",
    )
    cache_warm.add_argument("file", help="program file ('-' for stdin)")
    cache_warm.add_argument("--cache-dir", default="", metavar="DIR", help=cache_dir_help)
    cache_warm.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for the warm-up (default REPRO_JOBS, else 1)",
    )
    cache_warm.set_defaults(func=cmd_cache_warm)

    selfcheck = sub.add_parser(
        "selfcheck",
        help="differential sanitizer harness: seeded synth programs, "
        "static results cross-checked against the interpreter oracle",
        parents=[obs, par],
    )
    selfcheck.add_argument(
        "--seeds",
        default="0..19",
        help="seed spec: comma-separated integers and inclusive a..b "
        "ranges (default 0..19)",
    )
    selfcheck.add_argument(
        "--lines", type=int, default=400, help="approximate program size per seed"
    )
    selfcheck.add_argument(
        "--verify",
        default="full",
        choices=["off", "fast", "full"],
        help="verification mode for the analysis runs (default full)",
    )
    selfcheck.add_argument(
        "--no-oracle",
        action="store_true",
        help="skip the dynamic-oracle cross-check of the ground-truth labels",
    )
    selfcheck.add_argument("--json", action="store_true", help="JSON output")
    selfcheck.add_argument(
        "--out", default="", metavar="FILE", help="also write the JSON report here"
    )
    selfcheck.set_defaults(func=cmd_selfcheck)

    serve = sub.add_parser(
        "serve",
        help="run 'check' with the live monitor serving /healthz /metrics "
        "/status /events during (and, with --linger, after) the analysis",
        parents=[obs, par],
    )
    serve.add_argument("file", help="program file ('-' for stdin)")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="PORT",
        help="monitor port (default 0 = pick a free port, printed to "
        "stderr)",
    )
    serve.add_argument(
        "--linger",
        action="store_true",
        help="keep serving after the analysis finishes (Ctrl-C to stop)",
    )
    serve.add_argument(
        "--checker", choices=sorted(CHECKERS), default="use-after-free"
    )
    serve.add_argument("--all", action="store_true", help="run every checker")
    serve.add_argument("--json", action="store_true", help="JSON output")
    serve.add_argument("--sarif", action="store_true", help="SARIF 2.1.0 output")
    serve.add_argument("--baseline", default="", help=argparse.SUPPRESS)
    serve.add_argument("--update-baseline", default="", help=argparse.SUPPRESS)
    serve.add_argument("--stats", action="store_true", help="print engine stats")
    serve.add_argument("--depth", type=int, default=6, help="max calling contexts")
    serve.add_argument(
        "--pta",
        default="",
        choices=["fi", "fs"],
        help="points-to precision tier (fi | fs; default REPRO_PTA, else fi)",
    )
    serve.add_argument("--no-smt", action="store_true", help="path-insensitive mode")
    serve.add_argument(
        "--no-linear-filter", action="store_true", help=argparse.SUPPRESS
    )
    serve.add_argument("--deadline", type=float, default=0.0, metavar="SECONDS")
    serve.add_argument("--smt-deadline", type=float, default=0.0, metavar="SECONDS")
    serve.add_argument("--max-steps", type=int, default=0, metavar="N")
    serve.add_argument("--strict", action="store_true", help=argparse.SUPPRESS)
    serve.add_argument("--fault", default="", metavar="SPEC", help=argparse.SUPPRESS)
    serve.add_argument(
        "--verify", default="", choices=["off", "fast", "full"],
        help="self-verification mode (as in 'check')",
    )
    serve.add_argument(
        "--dump-on-verify-fail", default="", metavar="DIR", help=argparse.SUPPRESS
    )
    serve.set_defaults(func=cmd_serve)

    daemon = sub.add_parser(
        "daemon",
        help="run the persistent analysis service: queued jobs, warm "
        "incremental sessions, /v1/check and /v1/edit over HTTP "
        "(see docs/service.md)",
        parents=[obs],
    )
    daemon.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="PORT",
        help="port to bind on 127.0.0.1 (default 0 = pick a free port; "
        "the chosen port is printed on stdout and shown in /healthz)",
    )
    daemon.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="analysis worker threads (default %(default)s)",
    )
    daemon.add_argument(
        "--queue-max",
        type=int,
        default=16,
        metavar="N",
        help="admission-control queue bound; requests past it get "
        "429 + Retry-After (default %(default)s)",
    )
    daemon.add_argument(
        "--max-sessions",
        type=int,
        default=32,
        metavar="N",
        help="warm sessions kept resident (LRU past this; default "
        "%(default)s)",
    )
    daemon.add_argument(
        "--cache-dir",
        default="",
        metavar="DIR",
        help="on-disk artifact store sessions fall through to on a warm "
        "miss (default: the REPRO_CACHE_DIR environment variable, else "
        "off)",
    )
    daemon.add_argument("--depth", type=int, default=6, help="max calling contexts")
    daemon.add_argument(
        "--pta",
        default="",
        choices=["fi", "fs"],
        help="points-to precision tier (fi | fs; default REPRO_PTA, else fi)",
    )
    daemon.add_argument("--no-smt", action="store_true", help="path-insensitive mode")
    daemon.add_argument(
        "--verify", default="", choices=["off", "fast", "full"],
        help="self-verification mode for every job (as in 'check')",
    )
    daemon.add_argument(
        "--deadline",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="default per-request wall budget (requests may tighten, "
        "never widen it)",
    )
    daemon.add_argument(
        "--smt-deadline", type=float, default=0.0, metavar="SECONDS",
        help="default per-request per-query SMT ceiling",
    )
    daemon.add_argument(
        "--max-steps", type=int, default=0, metavar="N",
        help="default per-request step budget",
    )
    daemon.set_defaults(func=cmd_daemon)

    client = sub.add_parser(
        "client",
        help="talk to a running 'repro daemon' (check, edit, job, "
        "result, health, sessions)",
    )
    client.add_argument(
        "--port", type=int, required=True, metavar="PORT",
        help="daemon port (from its startup line or /healthz)",
    )
    client.add_argument("--host", default="127.0.0.1", help=argparse.SUPPRESS)
    client.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="HTTP timeout per request (default %(default)s)",
    )
    client_sub = client.add_subparsers(dest="client_command", required=True)
    c_check = client_sub.add_parser(
        "check", help="submit a full-program check (POST /v1/check)"
    )
    c_check.add_argument("file", help="program file ('-' for stdin)")
    c_check.add_argument(
        "--session",
        default="",
        metavar="NAME",
        help="warm session to run in (re-checks in the same session "
        "reuse unchanged functions; default: a fresh anonymous session)",
    )
    c_check.add_argument(
        "--checker", choices=sorted(CHECKERS), default="",
        help="run one checker (default: all of them)",
    )
    c_check.add_argument("--all", action="store_true", help="run every checker")
    c_check.add_argument(
        "--no-wait", action="store_true",
        help="return the job id immediately instead of the result",
    )
    c_edit = client_sub.add_parser(
        "edit",
        help="re-check after editing one function (POST /v1/edit)",
    )
    c_edit.add_argument("session", help="warm session holding the program")
    c_edit.add_argument(
        "file", help="file with the edited function's text ('-' for stdin)"
    )
    c_edit.add_argument(
        "--function", default="", metavar="NAME",
        help="expected function name (rejected if the text defines another)",
    )
    c_edit.add_argument(
        "--checker", choices=sorted(CHECKERS), default="",
        help="run one checker (default: all of them)",
    )
    c_edit.add_argument("--all", action="store_true", help="run every checker")
    c_job = client_sub.add_parser("job", help="job status (GET /v1/jobs/<id>)")
    c_job.add_argument("id", help="job id")
    c_result = client_sub.add_parser(
        "result", help="job result (GET /v1/results/<id>)"
    )
    c_result.add_argument("id", help="job id")
    client_sub.add_parser("health", help="daemon health (GET /healthz)")
    client_sub.add_parser(
        "sessions", help="resident warm sessions (GET /v1/sessions)"
    )
    client.set_defaults(func=cmd_client)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running daemon with concurrent mixed "
        "cold/warm/edit traffic and report latency quantiles",
        parents=[obs],
    )
    loadgen.add_argument(
        "--port", type=int, required=True, metavar="PORT", help="daemon port"
    )
    loadgen.add_argument("--host", default="127.0.0.1", help=argparse.SUPPRESS)
    loadgen.add_argument(
        "--clients", type=int, default=4, metavar="N",
        help="concurrent clients, one warm session each (default %(default)s)",
    )
    loadgen.add_argument(
        "--edits", type=int, default=8, metavar="N",
        help="single-function edit re-checks per client (default %(default)s)",
    )
    loadgen.add_argument(
        "--lines", type=int, default=250, metavar="N",
        help="approximate generated program size per client "
        "(default %(default)s)",
    )
    loadgen.add_argument("--seed", type=int, default=7, help="workload seed")
    loadgen.add_argument("--json", action="store_true", help="JSON output")
    loadgen.add_argument(
        "--samples", action="store_true",
        help="include per-request samples in --json output",
    )
    loadgen.add_argument(
        "--out", default="", metavar="FILE",
        help="write the full latency trajectory (summary + samples) here",
    )
    loadgen.set_defaults(func=cmd_loadgen)

    history = sub.add_parser(
        "history",
        help="inspect the run-history store (--history-dir / "
        "REPRO_HISTORY_DIR) and check for perf regressions",
    )
    history_sub = history.add_subparsers(dest="history_command", required=True)
    history_dir_help = (
        "the history directory (default: the REPRO_HISTORY_DIR environment "
        "variable)"
    )
    h_list = history_sub.add_parser("list", help="one line per recorded run")
    h_list.add_argument("--history-dir", default="", metavar="DIR", help=history_dir_help)
    h_list.add_argument("--json", action="store_true", help="JSON output")
    h_list.set_defaults(func=cmd_history_list)
    h_show = history_sub.add_parser("show", help="print one full run record")
    h_show.add_argument(
        "run", nargs="?", default="", help="run id (default: the latest run)"
    )
    h_show.add_argument("--history-dir", default="", metavar="DIR", help=history_dir_help)
    h_show.set_defaults(func=cmd_history_show)
    h_diff = history_sub.add_parser(
        "diff", help="compare two recorded runs (timings, stages, findings)"
    )
    h_diff.add_argument(
        "old", nargs="?", default="", help="run id of the baseline run "
        "(default: second-newest run)"
    )
    h_diff.add_argument(
        "new", nargs="?", default="", help="run id of the run to compare "
        "(default: newest run)"
    )
    h_diff.add_argument("--history-dir", default="", metavar="DIR", help=history_dir_help)
    h_diff.add_argument("--json", action="store_true", help="JSON output")
    h_diff.set_defaults(func=cmd_history_diff)
    h_trend = history_sub.add_parser(
        "trend",
        help="compare the latest run against the rolling baseline (median "
        "of prior runs on the same source fingerprint) and write the "
        "BENCH_pinpoint.json trajectory",
    )
    h_trend.add_argument("--history-dir", default="", metavar="DIR", help=history_dir_help)
    h_trend.add_argument(
        "--check",
        action="store_true",
        help=f"exit {EXIT_REGRESSION} when the latest run regressed "
        "(CI gate)",
    )
    h_trend.add_argument(
        "--max-wall-ratio",
        type=float,
        default=TrendThresholds.wall_ratio,
        metavar="R",
        help="wall-time regression threshold: latest > baseline*R "
        "(default %(default)s)",
    )
    h_trend.add_argument(
        "--max-mem-ratio",
        type=float,
        default=TrendThresholds.mem_ratio,
        metavar="R",
        help="peak-memory regression threshold (default %(default)s)",
    )
    h_trend.add_argument(
        "--baseline-runs",
        type=int,
        default=TrendThresholds.baseline_runs,
        metavar="N",
        help="baseline = median of up to N prior comparable runs "
        "(default %(default)s)",
    )
    h_trend.add_argument(
        "--min-runs",
        type=int,
        default=TrendThresholds.min_runs,
        metavar="N",
        help="pass trivially with fewer than N comparable prior runs "
        "(default %(default)s)",
    )
    h_trend.add_argument(
        "--bench-out",
        default="",
        metavar="FILE",
        help=f"trajectory file path (default ./{BENCH_FILE})",
    )
    h_trend.add_argument("--json", action="store_true", help="JSON output")
    h_trend.set_defaults(func=cmd_history_trend)

    gen = sub.add_parser("generate", help="generate a synthetic workload")
    gen.add_argument("--lines", type=int, default=500)
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--taint", action="store_true", help="seed taint flows too")
    gen.add_argument("-o", "--output", default="")
    gen.set_defaults(func=cmd_generate)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ParseError as error:
        source = getattr(args, "file", "<input>")
        print(f"{source}:{error.line}: {error.message}", file=sys.stderr)
        return EXIT_ERROR
    except ValueError as error:
        # Configuration errors (EngineConfig/ResourceBudget validation,
        # malformed --fault specs) are usage errors, not crashes.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as error:
        # Unreadable input / unwritable output paths are hard errors
        # (exit 2), not tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
