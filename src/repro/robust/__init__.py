"""Fault-tolerant analysis harness.

At the scale the paper targets (millions of lines) the engine must
survive pathological inputs: one malformed function, one exploding SMT
query, or one crashing checker must not take down the whole run.  This
package supplies the four pieces that make that possible:

- :class:`~repro.robust.budget.ResourceBudget` — a wall-clock deadline
  plus cooperative step budgets, consulted by the points-to analysis,
  the engine's value-flow search, and the SMT solver;
- :class:`~repro.robust.diagnostics.Diagnostic` /
  :class:`~repro.robust.diagnostics.DiagnosticLog` — structured records
  of every degradation and quarantine, surfaced in ``--stats``, JSON and
  SARIF output;
- :class:`~repro.robust.quarantine.Quarantine` — an isolation scope
  that converts an exception in one unit of work (a function's parse,
  its preparation, a checker run) into a diagnostic, leaving the rest
  of the run intact;
- :mod:`~repro.robust.faults` — a deterministic fault-injection harness
  so tests can prove each degradation path actually fires.

The degradation ladder (rather than failing, the engine steps down):

1. SMT per-query deadline exceeded → fall back to the linear solver's
   verdict, report with ``verdict="unknown"``;
2. value-flow search budget exhausted → path-insensitive candidate
   reporting (no condition assembly, no solving);
3. points-to budget exhausted → conditions degrade to ``true``
   (path-insensitive heap states);
4. a unit of work crashes → quarantine it (treated as an opaque
   external call, exactly like same-SCC callees already are).
"""

from repro.robust.budget import BudgetExhausted, ResourceBudget
from repro.robust.diagnostics import Diagnostic, DiagnosticLog
from repro.robust.faults import (
    FaultPlan,
    InjectedFault,
    active_plan,
    disk_full_point,
    fault_point,
    install_faults,
    reset_faults,
    torn_write_armed,
)
from repro.robust.quarantine import Quarantine
from repro.robust.retry import (
    ACTION_ISOLATE,
    ACTION_QUARANTINE,
    ACTION_RETRY,
    RetryPolicy,
    RetrySupervisor,
    with_retries,
)

__all__ = [
    "ACTION_ISOLATE",
    "ACTION_QUARANTINE",
    "ACTION_RETRY",
    "BudgetExhausted",
    "Diagnostic",
    "DiagnosticLog",
    "FaultPlan",
    "InjectedFault",
    "Quarantine",
    "ResourceBudget",
    "RetryPolicy",
    "RetrySupervisor",
    "active_plan",
    "disk_full_point",
    "fault_point",
    "install_faults",
    "reset_faults",
    "torn_write_armed",
    "with_retries",
]
