"""Quarantine isolation scopes.

A :class:`Quarantine` wraps one unit of work (parsing a function,
preparing it, building its SEG, running one checker).  If the body
raises, the exception is converted into a structured diagnostic and
swallowed; the caller checks ``tripped`` and skips the unit — the rest
of the run proceeds as if the unit were an opaque external call, the
same treatment same-SCC callees already get.

``KeyboardInterrupt``/``SystemExit``/``MemoryError`` always propagate:
quarantine isolates *unit* failures, it does not mask operator
interrupts or process-fatal conditions.
"""

from __future__ import annotations

from typing import Optional

from repro.robust.diagnostics import REASON_QUARANTINED, DiagnosticLog

#: Exceptions a quarantine must never swallow.
FATAL = (KeyboardInterrupt, SystemExit, GeneratorExit, MemoryError)


class Quarantine:
    """Context manager isolating one unit of work.

    Usage::

        zone = Quarantine(log, stage="prepare", unit=name)
        with zone:
            result = prepare_function(...)
        if zone.tripped:
            continue  # unit quarantined; diagnostic already recorded
    """

    def __init__(
        self,
        log: DiagnosticLog,
        stage: str,
        unit: str,
        reason: str = REASON_QUARANTINED,
        line: int = 0,
    ) -> None:
        self.log = log
        self.stage = stage
        self.unit = unit
        self.reason = reason
        self.line = line
        self.error: Optional[BaseException] = None

    @property
    def tripped(self) -> bool:
        return self.error is not None

    def __enter__(self) -> "Quarantine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is None:
            return False
        if isinstance(exc, FATAL):
            return False
        self.error = exc
        line = self.line or getattr(exc, "line", 0) or 0
        self.log.record(
            self.stage,
            self.unit,
            self.reason,
            detail=f"{type(exc).__name__}: {exc}",
            line=line,
        )
        return True
