"""Deterministic fault injection.

Named injection sites sit at the parse / prepare / seg-build / smt
boundaries.  A :class:`FaultPlan` — installed programmatically or via
the ``REPRO_FAULTS`` environment variable — arms a subset of them; an
armed :func:`fault_point` raises :class:`InjectedFault`, which the
surrounding quarantine logic must convert into a diagnostic.  Tests use
this to prove every degradation path actually fires, and CI runs a
fault-injection smoke pass the same way.

Plan syntax (comma-separated)::

    site            fire at every hit of ``site``
    site:unit       fire only when the unit of work matches
    site:unit*3     fire at most three times

Examples::

    REPRO_FAULTS=prepare              # every function's preparation fails
    REPRO_FAULTS=parse:helper         # parsing function 'helper' fails
    REPRO_FAULTS=smt*1                # the first SMT query fails

Everything is deterministic: no randomness, counts consumed in call
order.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

ENV_VAR = "REPRO_FAULTS"

#: The recognised injection sites, for validation and documentation.
#: ``sched`` is special: it is consumed inside worker processes of the
#: parallel scheduler and kills the worker outright (``os._exit``)
#: instead of raising, to exercise the parent's crash-quarantine path.
#: ``slow`` is also special: it does not raise — the unit field encodes
#: a sleep in seconds (``slow:0.25``) consumed by :func:`slow_point` in
#: the CLI's measured region, so perf-regression detection can be
#: exercised deterministically.
#:
#: The crash-durability sites (ISSUE 6):
#: - ``kill-worker:<wave>`` kills any worker process the moment it
#:   picks up a task of that call-graph wave (``os._exit``, like
#:   ``sched`` but keyed by wave index instead of function name), so
#:   tests can SIGKILL-like interrupt a run mid-wave deterministically;
#: - ``torn-journal`` makes the run journal's next append write only a
#:   truncated prefix and then go silent — the on-disk shape a real
#:   mid-append crash leaves (consumed by :func:`torn_write_armed`,
#:   non-raising);
#: - ``disk-full`` raises ``OSError(ENOSPC)`` from cache/journal write
#:   paths (consumed by :func:`disk_full_point`) to exercise the
#:   supervised I/O retry path in ``repro.robust.retry``.
SITES = ("parse", "prepare", "seg", "smt", "sched", "slow",
         "kill-worker", "torn-journal", "disk-full")


class InjectedFault(RuntimeError):
    """The exception an armed fault point raises."""

    def __init__(self, site: str, unit: str = "") -> None:
        where = f"{site}:{unit}" if unit else site
        super().__init__(f"injected fault at {where}")
        self.site = site
        self.unit = unit


class FaultPlan:
    """A parsed fault specification with per-rule remaining counts."""

    def __init__(self, spec: str) -> None:
        self.spec = spec
        # rules: (site, unit-or-None) -> remaining count (None = unlimited)
        self._rules: Dict[Tuple[str, Optional[str]], Optional[int]] = {}
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            count: Optional[int] = None
            if "*" in entry:
                entry, _, count_text = entry.rpartition("*")
                try:
                    count = int(count_text)
                except ValueError:
                    raise ValueError(f"bad fault count in {raw!r}") from None
            site, _, unit = entry.partition(":")
            site = site.strip()
            if site not in SITES:
                raise ValueError(
                    f"unknown fault site {site!r} (expected one of {', '.join(SITES)})"
                )
            self._rules[(site, unit.strip() or None)] = count

    def should_fire(self, site: str, unit: str = "") -> bool:
        """Match and consume one firing; exact-unit rules take priority
        over site-wide rules."""
        for key in ((site, unit or None), (site, None)):
            if key not in self._rules:
                continue
            remaining = self._rules[key]
            if remaining is None:
                return True
            if remaining <= 0:
                continue
            self._rules[key] = remaining - 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"FaultPlan({self.spec!r})"


_plan: Optional[FaultPlan] = None
_env_loaded = False


def install_faults(spec_or_plan) -> FaultPlan:
    """Install a fault plan for this process (tests, CLI ``--fault``)."""
    global _plan, _env_loaded
    plan = (
        spec_or_plan
        if isinstance(spec_or_plan, FaultPlan)
        else FaultPlan(str(spec_or_plan))
    )
    _plan = plan
    _env_loaded = True
    return plan


def reset_faults() -> None:
    """Remove any installed plan (and forget the env var)."""
    global _plan, _env_loaded
    _plan = None
    _env_loaded = True


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, loading ``REPRO_FAULTS`` on first use."""
    global _plan, _env_loaded
    if not _env_loaded:
        _env_loaded = True
        spec = os.environ.get(ENV_VAR, "").strip()
        if spec:
            _plan = FaultPlan(spec)
    return _plan


def fault_point(site: str, unit: str = "") -> None:
    """Raise :class:`InjectedFault` if an installed plan arms this site.

    A no-op (one None check) when no plan is installed, so fault points
    may sit on production paths.
    """
    plan = _plan
    if plan is None:
        if _env_loaded:
            return
        plan = active_plan()
        if plan is None:
            return
    if plan.should_fire(site, unit):
        raise InjectedFault(site, unit)


def consume_slow(plan: Optional[FaultPlan]) -> float:
    """Seconds of injected slowdown armed on ``plan``, consuming one
    firing of each matching ``slow`` rule.  The rule's *unit* field
    carries the duration: ``slow:0.25`` sleeps a quarter second."""
    if plan is None:
        return 0.0
    total = 0.0
    for (site, unit), count in list(plan._rules.items()):
        if site != "slow":
            continue
        if count is not None:
            if count <= 0:
                continue
            plan._rules[(site, unit)] = count - 1
        try:
            total += float(unit) if unit else 1.0
        except ValueError:
            raise ValueError(
                f"slow fault unit must be seconds, got {unit!r}"
            ) from None
    return total


def slow_point() -> None:
    """Sleep for any armed ``slow`` fault (no-op without a plan).

    Sits inside the CLI's measured analysis region so an injected
    slowdown shows up in the run record's wall time — the deterministic
    way to make ``repro history trend --check`` fail in tests and CI.
    """
    seconds = consume_slow(active_plan())
    if seconds > 0:
        import time

        time.sleep(seconds)


def disk_full_point(unit: str = "") -> None:
    """Raise ``OSError(ENOSPC)`` if a ``disk-full`` fault is armed.

    Sits on the cache-store and journal write paths, *inside* the
    supervised-retry scope: a counted rule (``disk-full*2``) proves the
    backoff path recovers, an unlimited rule proves the subsystem
    degrades (cache put returns False, the journal disables itself)
    without failing the run."""
    plan = active_plan()
    if plan is not None and plan.should_fire("disk-full", unit):
        import errno

        raise OSError(errno.ENOSPC, f"injected disk-full writing {unit or 'entry'}")


def torn_write_armed(unit: str = "") -> bool:
    """Consume one ``torn-journal`` firing, if armed (non-raising).

    The journal reacts by writing a truncated record prefix and then
    going silent for the rest of the process — exactly what a crash
    mid-append leaves on disk."""
    plan = active_plan()
    return plan is not None and plan.should_fire("torn-journal", unit)


def faults_pending() -> List[str]:  # pragma: no cover - debugging aid
    plan = active_plan()
    if plan is None:
        return []
    return [
        f"{site}:{unit}" if unit else site
        for (site, unit), count in plan._rules.items()
        if count is None or count > 0
    ]
