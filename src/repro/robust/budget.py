"""Cooperative resource budgets.

A :class:`ResourceBudget` bounds one analysis run with a wall-clock
deadline and step budgets.  It is *cooperative*: long-running loops
(block iteration in the points-to analysis, the engine's value-flow
search, the SMT solver's DPLL(T) rounds) consult it at natural yield
points and degrade — never abort — when it is exhausted.  Frameworks in
the same family (DFI, Fusion) bound per-query resource use the same way
and trade precision for termination instead of failing.

An unlimited budget (the default) makes every check a couple of integer
comparisons, so budget plumbing costs nothing when unused.
"""

from __future__ import annotations

import time
from typing import Optional


class BudgetExhausted(Exception):
    """Raised only by callers that *choose* to treat exhaustion as an
    exception; the budget object itself never raises."""


class ResourceBudget:
    """Wall-clock deadline plus cooperative step budgets.

    Parameters
    ----------
    wall_seconds:
        Total wall-clock budget for the run (parse + prepare + every
        checker).  ``None`` means unlimited.
    max_steps:
        Global step budget shared by the points-to analysis (one step
        per basic block state) and the value-flow search (one step per
        visited vertex).  ``None`` means unlimited.
    smt_seconds:
        Per-query SMT ceiling.  The effective per-query deadline is the
        minimum of this and the remaining wall budget.
    """

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        max_steps: Optional[int] = None,
        smt_seconds: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if wall_seconds is not None and wall_seconds <= 0:
            raise ValueError("wall_seconds must be positive")
        if max_steps is not None and max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if smt_seconds is not None and smt_seconds <= 0:
            raise ValueError("smt_seconds must be positive")
        self.wall_seconds = wall_seconds
        self.max_steps = max_steps
        self.smt_seconds = smt_seconds
        self._clock = clock
        self._started_at: Optional[float] = None
        self.steps_used = 0
        # Cheap time checks: only look at the clock every N spend calls.
        self._tick = 0
        self._time_exceeded = False

    # ------------------------------------------------------------------
    def start(self) -> "ResourceBudget":
        """Arm the wall clock (idempotent; first caller wins)."""
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    @property
    def limited(self) -> bool:
        return (
            self.wall_seconds is not None
            or self.max_steps is not None
            or self.smt_seconds is not None
        )

    # ------------------------------------------------------------------
    # Wall clock
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def remaining_seconds(self) -> Optional[float]:
        if self.wall_seconds is None:
            return None
        self.start()
        return max(0.0, self.wall_seconds - self.elapsed())

    def out_of_time(self) -> bool:
        if self.wall_seconds is None:
            return False
        if self._time_exceeded:
            return True
        self.start()
        if self.elapsed() >= self.wall_seconds:
            self._time_exceeded = True
        return self._time_exceeded

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def spend_steps(self, n: int = 1) -> bool:
        """Charge ``n`` steps; returns False once the budget (steps or
        time) is exhausted.  Time is sampled every 64 calls so the hot
        loops pay an integer add, not a syscall."""
        self.steps_used += n
        if self.max_steps is not None and self.steps_used > self.max_steps:
            return False
        if self.wall_seconds is not None:
            self._tick += 1
            if self._time_exceeded:
                return False
            if (self._tick & 63) == 0 and self.out_of_time():
                return False
        return True

    def out_of_steps(self) -> bool:
        return self.max_steps is not None and self.steps_used > self.max_steps

    def exhausted(self) -> bool:
        return self.out_of_steps() or self.out_of_time()

    # ------------------------------------------------------------------
    # SMT
    # ------------------------------------------------------------------
    def smt_deadline(self) -> Optional[float]:
        """Absolute (monotonic-clock) deadline for one SMT query, or
        ``None`` for no limit."""
        candidates = []
        if self.smt_seconds is not None:
            candidates.append(self._clock() + self.smt_seconds)
        if self.wall_seconds is not None:
            self.start()
            candidates.append(self._started_at + self.wall_seconds)
        if not candidates:
            return None
        return min(candidates)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        parts = []
        if self.wall_seconds is not None:
            parts.append(f"wall={self.wall_seconds:g}s")
        if self.max_steps is not None:
            parts.append(f"steps={self.max_steps}")
        if self.smt_seconds is not None:
            parts.append(f"smt={self.smt_seconds:g}s")
        return ", ".join(parts) or "unlimited"


#: Shared unlimited budget for callers that did not pass one.  It is
#: never started and never exhausts, so sharing one instance is safe.
UNLIMITED = ResourceBudget()
