"""Unified retry supervision: capped backoff, budgets, escalation.

Before this module each failure domain invented its own recovery:
``repro.sched.pool`` rebuilt the pool and resubmitted immediately, the
cache store swallowed write errors on first contact, and a transient
journal-write failure would have silently dropped a checkpoint.  Every
supervised retry in the repo now goes through one policy:

- **capped exponential backoff** — delay doubles per attempt up to
  ``max_delay``;
- **deterministic jitter** — a hash of ``(unit, attempt)`` spreads
  concurrent retries without randomness, so two runs over the same
  input back off identically (the repo-wide determinism discipline);
- **per-unit retry budgets** — each unit of work (a function name, a
  cache digest, the journal path) is charged independently;
- an **escalation ladder** — ``retry`` (back into the shared pool /
  another direct attempt) → ``isolate`` (a dedicated single-worker
  attempt, so a deterministic killer cannot take innocents down with
  it) → ``quarantine`` (give up; the caller records the diagnostic or
  degrades the subsystem).

Every retry or isolation increments the ``sched.retries`` counter,
labelled by ``site`` (``pool``, ``cache``, ``journal``) and ``kind``
(``crash``, ``timeout``, ``io``), so supervised recovery is visible in
``--stats`` and Prometheus output.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type

from repro.obs.metrics import get_registry

#: Ladder decisions returned by :meth:`RetrySupervisor.record_failure`.
ACTION_RETRY = "retry"
ACTION_ISOLATE = "isolate"
ACTION_QUARANTINE = "quarantine"

#: The retries-visible-everywhere counter (satellite of ISSUE 6).
RETRIES_COUNTER = "sched.retries"


def _count_retry(site: str, kind: str) -> None:
    get_registry().counter(
        RETRIES_COUNTER, "Supervised retries (pool resubmits, isolation "
        "attempts, cache/journal I/O retries)"
    ).inc(site=site, kind=kind)


@dataclass(frozen=True)
class RetryPolicy:
    """How many chances one unit of work gets, and how fast.

    ``max_retries`` pooled/direct re-attempts after the first failure,
    then ``isolate_retries`` attempts in a dedicated single-worker
    executor (meaningful only for pool work; direct callers treat the
    whole budget as plain retries), then quarantine.
    """

    max_retries: int = 1
    isolate_retries: int = 1
    base_delay: float = 0.05
    max_delay: float = 1.0
    jitter: float = 0.25  # max extra delay, as a fraction of the base

    @property
    def total_attempts(self) -> int:
        """First attempt plus every ladder rung."""
        return 1 + self.max_retries + self.isolate_retries

    def delay(self, unit: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``unit``.

        Deterministic: the jitter fraction is a hash of the unit name
        and the attempt number, not a random draw."""
        if attempt < 1:
            attempt = 1
        base = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        seed = hashlib.sha256(f"{unit}#{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(seed[:4], "big") / 0xFFFFFFFF
        return min(base * (1.0 + self.jitter * fraction), self.max_delay)

    def decide(self, failures: int) -> str:
        """Ladder rung for a unit that has now failed ``failures`` times."""
        if failures <= self.max_retries:
            return ACTION_RETRY
        if failures <= self.max_retries + self.isolate_retries:
            return ACTION_ISOLATE
        return ACTION_QUARANTINE


class RetrySupervisor:
    """Per-unit failure bookkeeping for one wave/operation scope.

    The pool creates one per ``run_wave`` call so budgets are charged
    per wave — a function that crashed in wave 3 starts wave 4 (after a
    source edit and resume, say) with a clean slate.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        *,
        site: str = "pool",
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self.site = site
        self._sleep = sleep
        self.failures: Dict[str, int] = {}

    def record_failure(self, unit: str, kind: str = "crash") -> str:
        """Charge one failure; return the ladder action for this unit.

        ``retry``/``isolate`` actions also count into ``sched.retries``
        and sleep the deterministic backoff delay — by the time this
        returns, the caller may re-attempt immediately."""
        count = self.failures.get(unit, 0) + 1
        self.failures[unit] = count
        action = self.policy.decide(count)
        if action != ACTION_QUARANTINE:
            _count_retry(self.site, kind)
            self._sleep(self.policy.delay(unit, count))
        return action


def with_retries(
    fn: Callable[[], object],
    *,
    unit: str = "",
    site: str = "io",
    kind: str = "io",
    policy: Optional[RetryPolicy] = None,
    retryable: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn`` under the retry policy; transient failures back off
    and re-attempt, a final failure re-raises for the caller's own
    degradation path (cache: return False; journal: disable itself).

    Only exceptions in ``retryable`` are retried — an unpicklable
    payload is deterministic and retrying it would just burn the budget.
    """
    policy = policy or RetryPolicy()
    attempt = 0
    while True:
        try:
            return fn()
        except retryable:
            attempt += 1
            if attempt >= policy.total_attempts:
                raise
            _count_retry(site, kind)
            sleep(policy.delay(unit, attempt))
