"""Structured diagnostics for degradations and quarantines.

A :class:`Diagnostic` names the pipeline stage, the unit of work (a
function, a checker, an SMT query), the machine-readable reason, and a
human-readable detail.  A :class:`DiagnosticLog` collects them across a
run; it is shared between the parser front end, the preparation
pipeline, and the engine so one run yields one consolidated list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.obs.metrics import get_registry

# Stages, in pipeline order.
STAGE_PARSE = "parse"
STAGE_PREPARE = "prepare"
STAGE_SEG = "seg"
STAGE_PTA = "pta"
STAGE_SEARCH = "search"
STAGE_SMT = "smt"
STAGE_CHECKER = "checker"
STAGE_VERIFY = "verify"
STAGE_SCHED = "sched"

# Reasons.
REASON_QUARANTINED = "quarantined"
REASON_PARSE_ERROR = "parse-error"
REASON_BUDGET = "budget-exhausted"
REASON_DEADLINE = "deadline-exceeded"
REASON_REDUCED_PRECISION = "reduced-precision"
# Verifier violations carry the rule id as a suffix
# ("invariant-violation:ssa-single-def") so distinct rules on the same
# unit never dedup-collapse into one diagnostic.
REASON_INVARIANT = "invariant-violation"


@dataclass(frozen=True)
class Diagnostic:
    """One degradation or quarantine event."""

    stage: str  # parse | prepare | seg | pta | search | smt | checker
    unit: str  # function name, checker name, or query label
    reason: str  # quarantined | parse-error | budget-exhausted | ...
    detail: str = ""
    line: int = 0

    def as_dict(self) -> dict:
        entry = {"stage": self.stage, "unit": self.unit, "reason": self.reason}
        if self.detail:
            entry["detail"] = self.detail
        if self.line:
            entry["line"] = self.line
        return entry

    def __str__(self) -> str:
        where = f"{self.unit}:{self.line}" if self.line else self.unit
        text = f"[{self.stage}] {where}: {self.reason}"
        if self.detail:
            text += f" ({self.detail})"
        return text


class DiagnosticLog:
    """An append-only, deduplicating collector of diagnostics."""

    def __init__(self) -> None:
        self.entries: List[Diagnostic] = []
        self._seen = set()

    def record(
        self,
        stage: str,
        unit: str,
        reason: str,
        detail: str = "",
        line: int = 0,
    ) -> Diagnostic:
        diag = Diagnostic(stage, unit, reason, detail, line)
        self.add(diag)
        return diag

    def add(self, diag: Diagnostic) -> None:
        key = (diag.stage, diag.unit, diag.reason, diag.line)
        if key not in self._seen:
            self._seen.add(key)
            self.entries.append(diag)
            # Every recorded degradation is also a metric sample, so the
            # "what did the degradation ladder cost us" question is
            # answerable from the same registry that feeds --metrics-out.
            get_registry().counter(
                "robust.degradations",
                "Degradation/quarantine diagnostics recorded",
            ).inc(stage=diag.stage, reason=diag.reason)

    def extend(self, other: "DiagnosticLog") -> None:
        for diag in other.entries:
            self.add(diag)

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Did the run complete with less than full coverage/precision?"""
        return bool(self.entries)

    def quarantined_units(self, stage: Optional[str] = None) -> List[str]:
        return [
            d.unit
            for d in self.entries
            if d.reason in (REASON_QUARANTINED, REASON_PARSE_ERROR)
            and (stage is None or d.stage == stage)
        ]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)
