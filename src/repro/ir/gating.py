"""Gating functions: the condition under which each phi operand is chosen.

The paper (Section 3.2.1) labels conditional data-dependence edges with
the gated-function condition of the corresponding phi operand, computable
in almost linear time per Tu & Padua (cited as [48]).  We compute gates by
propagating reaching conditions from the phi block's immediate dominator
through the acyclic region between them:

- the edge leaving a :class:`Branch` contributes the branch variable (or
  its negation) as a term;
- conditions of converging paths are OR'd.

For phis at loop headers the back-edge operand's gate is a fresh
unconstrained boolean (``loop.<uid>``): the paper unrolls loops once
(Section 4.2), so the two operands are simply treated as an
uncorrelated nondeterministic choice.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir import cfg
from repro.ir.dominance import DomInfo, dominators
from repro.smt import terms as T
from repro.smt.terms import Term


def back_edges(function: cfg.Function) -> Set[Tuple[str, str]]:
    """Edges (src, dst) where dst dominates src — loop back edges."""
    dom = dominators(function)
    result: Set[Tuple[str, str]] = set()
    for label in function.block_order():
        for succ in function.blocks[label].succs:
            if dom.dominates(succ, label):
                result.add((label, succ))
    return result


def _edge_condition(function: cfg.Function, src: str, dst: str) -> Term:
    terminator = function.blocks[src].terminator
    if isinstance(terminator, cfg.Branch):
        cond = terminator.cond
        if isinstance(cond, cfg.Const):
            literal = T.TRUE if cond.value else T.FALSE
            return literal if terminator.then_label == dst else T.not_(literal)
        var = T.bool_var(cond.name)
        if terminator.then_label == dst and terminator.else_label == dst:
            return T.TRUE
        return var if terminator.then_label == dst else T.not_(var)
    return T.TRUE


class GateInfo:
    """Per-function gate conditions for phi operands.

    ``gates[phi.uid]`` is a list parallel to ``phi.incomings`` holding the
    gate condition Term of each operand.
    """

    def __init__(self, function: cfg.Function) -> None:
        self.function = function
        self.dom: DomInfo = dominators(function)
        self.back = back_edges(function)
        self.gates: Dict[int, List[Term]] = {}
        self._reach_cache: Dict[Tuple[str, str], Term] = {}
        self._compute()

    # ------------------------------------------------------------------
    def _reaching_condition(self, root: str, target: str) -> Term:
        """Condition for control to reach ``target`` from ``root`` along
        forward (non-back) edges, relative to ``root`` being reached."""
        if target == root:
            return T.TRUE
        key = (root, target)
        hit = self._reach_cache.get(key)
        if hit is not None:
            return hit
        # Guard against irreducible/odd shapes: mark in-progress.
        self._reach_cache[key] = T.TRUE
        parts: List[Term] = []
        for pred in self.function.blocks[target].preds:
            if (pred, target) in self.back:
                continue
            if not self.dom.dominates(root, pred):
                # A path bypassing root; treat as unconditional reach.
                parts.append(T.TRUE)
                continue
            pred_cond = self._reaching_condition(root, pred)
            parts.append(T.and_(pred_cond, _edge_condition(self.function, pred, target)))
        result = T.or_(*parts) if parts else T.TRUE
        self._reach_cache[key] = result
        return result

    def _compute(self) -> None:
        function = self.function
        for label in function.block_order():
            block = function.blocks[label]
            if not block.phis:
                continue
            idom = self.dom.idom.get(label) or function.entry
            for phi in block.phis:
                # Loop-header phis (mu functions): the back-edge operand
                # gets a fresh unconstrained selector, and the forward
                # operands are guarded by its negation — both iteration
                # counts stay possible (the soundy unroll-once treatment),
                # but neither operand is forced.
                selectors: List[Term] = [
                    T.bool_var(f"loop.{phi.uid}.{pred}")
                    for pred, _ in phi.incomings
                    if (pred, label) in self.back
                ]
                not_carried = T.and_(*(T.not_(s) for s in selectors))
                selector_iter = iter(selectors)
                gates: List[Term] = []
                for pred_label, _ in phi.incomings:
                    if (pred_label, label) in self.back:
                        gates.append(next(selector_iter))
                        continue
                    pred_cond = self._reaching_condition(idom, pred_label)
                    edge_cond = _edge_condition(function, pred_label, label)
                    gates.append(T.and_(not_carried, pred_cond, edge_cond))
                self.gates[phi.uid] = gates

    def gate(self, phi: cfg.Phi, index: int) -> Term:
        return self.gates[phi.uid][index]

    def merge_gate(self, pred_label: str, join_label: str) -> Term:
        """Gate condition for control entering ``join_label`` via
        ``pred_label`` — the same condition a phi operand from that pred
        would carry.  Used for conditional heap merging in the local
        points-to analysis."""
        if (pred_label, join_label) in self.back:
            return T.bool_var(f"loop.edge.{pred_label}.{join_label}")
        idom = self.dom.idom.get(join_label) or self.function.entry
        pred_cond = self._reaching_condition(idom, pred_label)
        return T.and_(pred_cond, _edge_condition(self.function, pred_label, join_label))
