"""CFG data structures and three-address instructions.

Instruction forms mirror the paper's language (Section 3):

===================  =========================================
Paper statement      IR instruction
===================  =========================================
``v1 <- v2``         :class:`Assign`
``v <- phi(...)``    :class:`Phi` (after SSA construction)
``v1 <- v2 op v3``   :class:`BinOp`
``v1 <- op v2``      :class:`UnOp`
``v1 <- *(v2, k)``   :class:`Load`
``*(v1, k) <- v2``   :class:`Store`
``if/else``          :class:`Branch` terminator
``return v``         :class:`Ret` terminator
``r <- call f(...)`` :class:`Call` (also used for intrinsics)
===================  =========================================

Heap allocation (``malloc``) gets its own instruction, :class:`Malloc`,
because allocation sites are the abstract memory objects of the points-to
analysis.  Every instruction has a process-unique ``uid`` used as the
statement identity ``s`` in SEG vertices ``v@s``.
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Dict, Iterable, List, Optional, Tuple, Union

_UID = itertools.count(1)
_SCOPED: Optional["itertools.count"] = None


def fresh_uid() -> int:
    if _SCOPED is not None:
        return next(_SCOPED)
    return next(_UID)


@contextlib.contextmanager
def scoped_uids(start: int = 1):
    """Allocate uids from a fresh local counter inside the block.

    Per-function preparation runs under this scope so a function's
    instruction uids depend only on its own lowering sequence — not on
    which process (or in what order) prepared it.  Uid-derived names
    (``loop.<uid>.<pred>`` gate variables, SEG vertex identities) then
    come out identical in serial, parallel, and cache-warmed runs.

    Uids stay unique *within* a function; across functions they may
    collide, which the engine tolerates by construction: uids key only
    per-function structures (SEG vertices, positions, call sites), and
    conditions crossing a call boundary are context-renamed.  Nesting is
    not reentrant — the scope is per prepared function.
    """
    global _SCOPED
    previous = _SCOPED
    _SCOPED = itertools.count(start)
    try:
        yield
    finally:
        _SCOPED = previous


class Var:
    """A named program variable operand."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return self.name


class Const:
    """An integer constant operand (``null`` is ``Const(0)``)."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return str(self.value)


Operand = Union[Var, Const]


class Instr:
    """Base instruction.  ``uid`` identifies the statement; ``line`` maps
    back to the surface program.  ``synthetic`` marks instructions the
    connector transformation inserted — they model side effects but do
    not correspond to a dereference the programmer wrote, so checkers
    never treat them as sinks."""

    __slots__ = ("uid", "line", "block", "synthetic")

    def __init__(self, line: int = 0) -> None:
        self.uid = fresh_uid()
        self.line = line
        self.block: Optional[str] = None  # label, set when placed
        self.synthetic = False

    def defined_var(self) -> Optional[str]:
        return None

    def used_operands(self) -> List[Operand]:
        return []

    def used_vars(self) -> List[str]:
        return [op.name for op in self.used_operands() if isinstance(op, Var)]

    def replace_uses(self, mapping: Dict[str, Operand]) -> None:
        """Replace variable uses in place (used by SSA renaming)."""


class Assign(Instr):
    __slots__ = ("dest", "src")

    def __init__(self, dest: str, src: Operand, line: int = 0) -> None:
        super().__init__(line)
        self.dest = dest
        self.src = src

    def defined_var(self) -> Optional[str]:
        return self.dest

    def used_operands(self) -> List[Operand]:
        return [self.src]

    def replace_uses(self, mapping: Dict[str, Operand]) -> None:
        self.src = _subst(self.src, mapping)

    def __repr__(self) -> str:
        return f"{self.dest} = {self.src}"


class BinOp(Instr):
    __slots__ = ("dest", "op", "lhs", "rhs")

    def __init__(self, dest: str, op: str, lhs: Operand, rhs: Operand, line: int = 0) -> None:
        super().__init__(line)
        self.dest = dest
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def defined_var(self) -> Optional[str]:
        return self.dest

    def used_operands(self) -> List[Operand]:
        return [self.lhs, self.rhs]

    def replace_uses(self, mapping: Dict[str, Operand]) -> None:
        self.lhs = _subst(self.lhs, mapping)
        self.rhs = _subst(self.rhs, mapping)

    def __repr__(self) -> str:
        return f"{self.dest} = {self.lhs} {self.op} {self.rhs}"


class UnOp(Instr):
    __slots__ = ("dest", "op", "operand")

    def __init__(self, dest: str, op: str, operand: Operand, line: int = 0) -> None:
        super().__init__(line)
        self.dest = dest
        self.op = op
        self.operand = operand

    def defined_var(self) -> Optional[str]:
        return self.dest

    def used_operands(self) -> List[Operand]:
        return [self.operand]

    def replace_uses(self, mapping: Dict[str, Operand]) -> None:
        self.operand = _subst(self.operand, mapping)

    def __repr__(self) -> str:
        return f"{self.dest} = {self.op}{self.operand}"


class Load(Instr):
    """``dest = *(pointer, depth)``"""

    __slots__ = ("dest", "pointer", "depth")

    def __init__(self, dest: str, pointer: Var, depth: int = 1, line: int = 0) -> None:
        super().__init__(line)
        self.dest = dest
        self.pointer = pointer
        self.depth = depth

    def defined_var(self) -> Optional[str]:
        return self.dest

    def used_operands(self) -> List[Operand]:
        return [self.pointer]

    def replace_uses(self, mapping: Dict[str, Operand]) -> None:
        replaced = _subst(self.pointer, mapping)
        assert isinstance(replaced, Var)
        self.pointer = replaced

    def __repr__(self) -> str:
        return f"{self.dest} = {'*' * self.depth}{self.pointer}"


class Store(Instr):
    """``*(pointer, depth) = value``"""

    __slots__ = ("pointer", "depth", "value")

    def __init__(self, pointer: Var, depth: int, value: Operand, line: int = 0) -> None:
        super().__init__(line)
        self.pointer = pointer
        self.depth = depth
        self.value = value

    def used_operands(self) -> List[Operand]:
        return [self.pointer, self.value]

    def replace_uses(self, mapping: Dict[str, Operand]) -> None:
        pointer = _subst(self.pointer, mapping)
        assert isinstance(pointer, Var)
        self.pointer = pointer
        self.value = _subst(self.value, mapping)

    def __repr__(self) -> str:
        return f"{'*' * self.depth}{self.pointer} = {self.value}"


class Malloc(Instr):
    """``dest = malloc()`` — a fresh abstract heap object per site."""

    __slots__ = ("dest",)

    def __init__(self, dest: str, line: int = 0) -> None:
        super().__init__(line)
        self.dest = dest

    def defined_var(self) -> Optional[str]:
        return self.dest

    def __repr__(self) -> str:
        return f"{self.dest} = malloc()  ; site {self.uid}"


class Call(Instr):
    """``dest = callee(args)``; ``dest`` may be None for call statements.

    ``extra_receivers`` holds the Aux-return-value receivers added by the
    connector transformation (Fig. 3(b) of the paper).
    """

    __slots__ = ("dest", "callee", "args", "extra_receivers")

    def __init__(
        self,
        dest: Optional[str],
        callee: str,
        args: List[Operand],
        line: int = 0,
    ) -> None:
        super().__init__(line)
        self.dest = dest
        self.callee = callee
        self.args = list(args)
        self.extra_receivers: List[str] = []

    def defined_var(self) -> Optional[str]:
        return self.dest

    def all_receivers(self) -> List[str]:
        receivers = [] if self.dest is None else [self.dest]
        return receivers + self.extra_receivers

    def used_operands(self) -> List[Operand]:
        return list(self.args)

    def replace_uses(self, mapping: Dict[str, Operand]) -> None:
        self.args = [_subst(a, mapping) for a in self.args]

    def __repr__(self) -> str:
        prefix = f"{self.dest} = " if self.dest else ""
        extra = f" [+{','.join(self.extra_receivers)}]" if self.extra_receivers else ""
        return f"{prefix}{self.callee}({', '.join(map(repr, self.args))}){extra}"


class Phi(Instr):
    __slots__ = ("dest", "incomings")

    def __init__(self, dest: str, incomings: List[Tuple[str, Operand]], line: int = 0) -> None:
        super().__init__(line)
        self.dest = dest
        self.incomings = list(incomings)  # (pred block label, operand)

    def defined_var(self) -> Optional[str]:
        return self.dest

    def used_operands(self) -> List[Operand]:
        return [op for _, op in self.incomings]

    def __repr__(self) -> str:
        parts = ", ".join(f"{label}: {op!r}" for label, op in self.incomings)
        return f"{self.dest} = phi({parts})"


# ----------------------------------------------------------------------
# Terminators
# ----------------------------------------------------------------------
class Branch(Instr):
    __slots__ = ("cond", "then_label", "else_label")

    def __init__(self, cond: Operand, then_label: str, else_label: str, line: int = 0) -> None:
        super().__init__(line)
        self.cond = cond
        self.then_label = then_label
        self.else_label = else_label

    def used_operands(self) -> List[Operand]:
        return [self.cond]

    def replace_uses(self, mapping: Dict[str, Operand]) -> None:
        self.cond = _subst(self.cond, mapping)

    def __repr__(self) -> str:
        return f"br {self.cond!r} ? {self.then_label} : {self.else_label}"


class Jump(Instr):
    __slots__ = ("target",)

    def __init__(self, target: str, line: int = 0) -> None:
        super().__init__(line)
        self.target = target

    def __repr__(self) -> str:
        return f"jmp {self.target}"


class Ret(Instr):
    __slots__ = ("value", "extra_values")

    def __init__(self, value: Optional[Operand], line: int = 0) -> None:
        super().__init__(line)
        self.value = value
        # Aux return values added by the connector transformation.
        self.extra_values: List[Operand] = []

    def used_operands(self) -> List[Operand]:
        ops = [] if self.value is None else [self.value]
        return ops + list(self.extra_values)

    def replace_uses(self, mapping: Dict[str, Operand]) -> None:
        if self.value is not None:
            self.value = _subst(self.value, mapping)
        self.extra_values = [_subst(v, mapping) for v in self.extra_values]

    def __repr__(self) -> str:
        extra = f" [+{','.join(map(repr, self.extra_values))}]" if self.extra_values else ""
        return f"ret {self.value!r}{extra}"


def _subst(op: Operand, mapping: Dict[str, Operand]) -> Operand:
    if isinstance(op, Var):
        return mapping.get(op.name, op)
    return op


# ----------------------------------------------------------------------
# Blocks and functions
# ----------------------------------------------------------------------
class Block:
    """A basic block: phis, straight-line instructions, one terminator."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.phis: List[Phi] = []
        self.instrs: List[Instr] = []
        self.terminator: Optional[Instr] = None
        self.preds: List[str] = []
        self.succs: List[str] = []

    def all_instrs(self) -> Iterable[Instr]:
        yield from self.phis
        yield from self.instrs
        if self.terminator is not None:
            yield self.terminator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"{self.label}:"]
        for instr in self.all_instrs():
            lines.append(f"  {instr!r}")
        return "\n".join(lines)


class Function:
    """A function as a CFG.  ``params`` are variable names; after SSA they
    carry version suffixes (``a.0``)."""

    def __init__(self, name: str, params: List[str]) -> None:
        self.name = name
        self.params = list(params)
        self.blocks: Dict[str, Block] = {}
        self.entry = "entry"
        self.is_ssa = False
        self._label_counter = 0
        # Aux formal parameters / return value names added by the
        # connector transformation, in interface order.
        self.aux_params: List[str] = []
        self.aux_returns: List[str] = []

    def new_block(self, hint: str = "bb") -> Block:
        self._label_counter += 1
        label = f"{hint}{self._label_counter}"
        block = Block(label)
        self.blocks[label] = block
        return block

    def add_edge(self, src: str, dst: str) -> None:
        self.blocks[src].succs.append(dst)
        self.blocks[dst].preds.append(src)

    def block_order(self) -> List[str]:
        """Reverse postorder from the entry block."""
        visited = set()
        order: List[str] = []

        def visit(label: str) -> None:
            stack = [(label, iter(self.blocks[label].succs))]
            visited.add(label)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in visited:
                        visited.add(succ)
                        stack.append((succ, iter(self.blocks[succ].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def all_instrs(self) -> Iterable[Instr]:
        for label in self.block_order():
            yield from self.blocks[label].all_instrs()

    def instr_count(self) -> int:
        return sum(1 for _ in self.all_instrs())

    def return_instrs(self) -> List[Ret]:
        return [
            block.terminator
            for block in self.blocks.values()
            if isinstance(block.terminator, Ret)
        ]

    def format(self) -> str:
        lines = [f"fn {self.name}({', '.join(self.params + self.aux_params)})"]
        for label in self.block_order():
            lines.append(repr(self.blocks[label]))
        return "\n".join(lines)


class Module:
    """A program as a set of lowered functions."""

    def __init__(self) -> None:
        self.functions: Dict[str, Function] = {}

    def add(self, function: Function) -> None:
        self.functions[function.name] = function

    def __getitem__(self, name: str) -> Function:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self):
        return iter(self.functions.values())

    def instr_count(self) -> int:
        return sum(f.instr_count() for f in self.functions.values())
