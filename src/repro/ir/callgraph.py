"""Call graph construction and bottom-up ordering.

Pinpoint analyzes functions bottom-up (callees before callers, Section 2),
so callee SEGs and summaries exist when a caller is processed.  Recursive
cycles are collapsed into SCCs (Tarjan); within an SCC we follow the
paper's soundy policy of unrolling call-graph cycles once — calls to
functions in the same SCC are treated as external calls (no summary) on
the second encounter.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir import cfg


class CallGraph:
    def __init__(self, module: cfg.Module) -> None:
        self.module = module
        self.callees: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        self.call_sites: Dict[str, List[cfg.Call]] = {}
        for function in module:
            self.callees.setdefault(function.name, set())
            self.callers.setdefault(function.name, set())
        for function in module:
            for instr in function.all_instrs():
                if isinstance(instr, cfg.Call) and instr.callee in module:
                    self.callees[function.name].add(instr.callee)
                    self.callers[instr.callee].add(function.name)
                    self.call_sites.setdefault(instr.callee, []).append(instr)

    # ------------------------------------------------------------------
    def sccs(self) -> List[List[str]]:
        """Tarjan SCCs in reverse topological (bottom-up) order."""
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        result: List[List[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan to survive deep synthetic call chains.
            work = [(node, iter(sorted(self.callees.get(node, ()))))]
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self.callees.get(succ, ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[current] = min(lowlink[current], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.remove(member)
                        scc.append(member)
                        if member == current:
                            break
                    result.append(scc)

        for name in sorted(self.callees):
            if name not in index:
                strongconnect(name)
        return result

    def bottom_up_order(self) -> List[str]:
        """Function names, callees before callers."""
        order: List[str] = []
        for scc in self.sccs():
            order.extend(sorted(scc))
        return order

    def is_recursive_call(self, caller: str, callee: str) -> bool:
        """Whether caller and callee share an SCC (mutual/self recursion)."""
        if caller == callee:
            return True
        for scc in self.sccs():
            members = set(scc)
            if caller in members and callee in members:
                return True
        return False
