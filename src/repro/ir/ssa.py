"""SSA construction (Cytron-style).

Phi nodes are placed at iterated dominance frontiers of each variable's
definition blocks, then variables are renamed with per-variable version
stacks.  Versioned names are ``name.N``; parameters enter as ``name.0``.
Temporaries introduced by lowering (``%tN``) are already single-assignment
but are renamed uniformly for consistency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir import cfg
from repro.ir.dominance import DomInfo, dominators


def base_name(ssa_name: str) -> str:
    """Strip the SSA version suffix: ``x.3`` -> ``x``."""
    dot = ssa_name.rfind(".")
    return ssa_name[:dot] if dot > 0 else ssa_name


def to_ssa(function: cfg.Function) -> cfg.Function:
    """Convert ``function`` to SSA form in place and return it."""
    if function.is_ssa:
        return function
    dom = dominators(function)
    _place_phis(function, dom)
    _rename(function, dom)
    function.is_ssa = True
    return function


def _place_phis(function: cfg.Function, dom: DomInfo) -> None:
    # Collect definition sites per variable.
    def_blocks: Dict[str, Set[str]] = {}
    for label in dom.order:
        block = function.blocks[label]
        for instr in block.all_instrs():
            dest = instr.defined_var()
            if dest is not None:
                def_blocks.setdefault(dest, set()).add(label)
            if isinstance(instr, cfg.Call):
                for receiver in instr.extra_receivers:
                    def_blocks.setdefault(receiver, set()).add(label)
    for param in function.params + function.aux_params:
        def_blocks.setdefault(param, set()).add(function.entry)

    # Liveness-free pruning: only insert a phi where the variable is used
    # in or after the block (semi-pruned would need liveness; simple
    # iterated-DF insertion plus later dead-phi cleanup is adequate here).
    for var, blocks in def_blocks.items():
        if len(blocks) == 1 and var not in function.params + function.aux_params:
            pass  # may still need a phi if a loop re-enters; IDF handles it
        worklist = list(blocks)
        has_phi: Set[str] = set()
        while worklist:
            block_label = worklist.pop()
            for frontier_label in dom.frontiers.get(block_label, ()):  # noqa: B909
                if frontier_label in has_phi:
                    continue
                has_phi.add(frontier_label)
                frontier = function.blocks[frontier_label]
                incomings = [(pred, cfg.Var(var)) for pred in frontier.preds]
                phi = cfg.Phi(var, incomings)
                phi.block = frontier_label
                frontier.phis.append(phi)
                if frontier_label not in blocks:
                    worklist.append(frontier_label)


def _rename(function: cfg.Function, dom: DomInfo) -> None:
    counters: Dict[str, int] = {}
    stacks: Dict[str, List[str]] = {}

    def new_version(var: str) -> str:
        count = counters.get(var, 0)
        counters[var] = count + 1
        name = f"{var}.{count}"
        stacks.setdefault(var, []).append(name)
        return name

    def current(var: str) -> Optional[str]:
        stack = stacks.get(var)
        return stack[-1] if stack else None

    new_params = [new_version(p) for p in function.params]
    new_aux = [new_version(p) for p in function.aux_params]

    def rename_block(label: str) -> None:
        block = function.blocks[label]
        pushed: List[str] = []
        for phi in block.phis:
            original = phi.dest
            phi.dest = new_version(original)
            pushed.append(original)
        for instr in block.instrs:
            mapping = {}
            for used in instr.used_vars():
                version = current(used)
                if version is not None:
                    mapping[used] = cfg.Var(version)
            if mapping:
                instr.replace_uses(mapping)
            dest = instr.defined_var()
            if dest is not None:
                if isinstance(instr, cfg.Call):
                    instr.dest = new_version(dest)
                else:
                    instr.dest = new_version(dest)  # type: ignore[attr-defined]
                pushed.append(dest)
            if isinstance(instr, cfg.Call) and instr.extra_receivers:
                renamed = []
                for receiver in instr.extra_receivers:
                    renamed.append(new_version(receiver))
                    pushed.append(receiver)
                instr.extra_receivers = renamed
        terminator = block.terminator
        if terminator is not None:
            mapping = {}
            for used in terminator.used_vars():
                version = current(used)
                if version is not None:
                    mapping[used] = cfg.Var(version)
            if mapping:
                terminator.replace_uses(mapping)
        # Fill phi operands of successors.
        for succ_label in block.succs:
            succ = function.blocks[succ_label]
            for phi in succ.phis:
                original = base_name(phi.dest) if phi.dest else phi.dest
                for i, (pred_label, operand) in enumerate(phi.incomings):
                    if pred_label != label:
                        continue
                    assert isinstance(operand, cfg.Var)
                    version = current(operand.name)
                    if version is None:
                        # Use before any def on this path: undefined value.
                        phi.incomings[i] = (pred_label, cfg.Var(f"{operand.name}.undef"))
                    else:
                        phi.incomings[i] = (pred_label, cfg.Var(version))
        for child in dom.children.get(label, ()):  # noqa: B909
            rename_block(child)
        for var in reversed(pushed):
            stacks[var].pop()

    rename_block(function.entry)
    function.params = new_params
    function.aux_params = new_aux
    _prune_dead_phis(function)


def _prune_dead_phis(function: cfg.Function) -> None:
    """Remove phis whose value is never used (iterate to fixpoint)."""
    changed = True
    while changed:
        changed = False
        used: Set[str] = set()
        for block in function.blocks.values():
            for instr in block.all_instrs():
                for var in instr.used_vars():
                    used.add(var)
        for block in function.blocks.values():
            kept = []
            for phi in block.phis:
                if phi.dest in used:
                    kept.append(phi)
                else:
                    changed = True
            block.phis = kept
