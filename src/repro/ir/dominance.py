"""Dominator trees and dominance frontiers.

Uses the iterative algorithm of Cooper, Harvey & Kennedy ("A Simple, Fast
Dominance Algorithm") over reverse postorder.  The same routine computes
post-dominators when run on the reversed CFG (with a virtual exit joining
all Ret blocks), which control-dependence computation needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ir import cfg


class DomInfo:
    """Immediate dominators, dominator-tree children, dominance frontiers."""

    def __init__(
        self,
        order: List[str],
        idom: Dict[str, Optional[str]],
        frontiers: Dict[str, List[str]],
    ) -> None:
        self.order = order  # reverse postorder
        self.idom = idom
        self.frontiers = frontiers
        self.children: Dict[str, List[str]] = {label: [] for label in order}
        for label, parent in idom.items():
            if parent is not None and parent != label:
                self.children[parent].append(label)

    def dominates(self, a: str, b: str) -> bool:
        """Whether ``a`` dominates ``b`` (reflexive)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            parent = self.idom.get(node)
            if parent == node:
                return False
            node = parent
        return False


def _compute(
    order: List[str],
    preds: Dict[str, Sequence[str]],
    succs: Dict[str, Sequence[str]],
    entry: str,
) -> DomInfo:
    index = {label: i for i, label in enumerate(order)}
    idom: Dict[str, Optional[str]] = {label: None for label in order}
    idom[entry] = entry

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            candidates = [p for p in preds[label] if idom.get(p) is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom[label] != new_idom:
                idom[label] = new_idom
                changed = True

    frontiers: Dict[str, List[str]] = {label: [] for label in order}
    for label in order:
        pred_list = [p for p in preds[label] if p in index]
        if len(pred_list) < 2:
            continue
        for pred in pred_list:
            runner: Optional[str] = pred
            while runner is not None and runner != idom[label]:
                if label not in frontiers[runner]:
                    frontiers[runner].append(label)
                next_runner = idom[runner]
                runner = None if next_runner == runner else next_runner

    final_idom = dict(idom)
    final_idom[entry] = None
    return DomInfo(order, final_idom, frontiers)


def dominators(function: cfg.Function) -> DomInfo:
    """Dominator info for a function's CFG."""
    order = function.block_order()
    preds = {label: function.blocks[label].preds for label in order}
    succs = {label: function.blocks[label].succs for label in order}
    return _compute(order, preds, succs, function.entry)


VIRTUAL_EXIT = "__exit__"


def post_dominators(function: cfg.Function) -> DomInfo:
    """Post-dominator info, computed on the reversed CFG.

    A virtual exit node named :data:`VIRTUAL_EXIT` is appended, with edges
    from every Ret block (and from every block with no successors, so
    infinite loops do not break the computation).
    """
    order = function.block_order()
    reachable = set(order)
    rev_succs: Dict[str, List[str]] = {label: [] for label in order}
    rev_preds: Dict[str, List[str]] = {label: [] for label in order}
    rev_succs[VIRTUAL_EXIT] = []
    rev_preds[VIRTUAL_EXIT] = []
    exits = [
        label
        for label in order
        if isinstance(function.blocks[label].terminator, cfg.Ret)
        or not any(s in reachable for s in function.blocks[label].succs)
    ]
    for label in order:
        for succ in function.blocks[label].succs:
            if succ in reachable:
                # reversed edge succ -> label
                rev_succs[succ].append(label)
                rev_preds[label].append(succ)
    for label in exits:
        rev_succs[VIRTUAL_EXIT].append(label)
        rev_preds[label].append(VIRTUAL_EXIT)

    # Reverse postorder on the reversed graph from the virtual exit.
    visited = set()
    rpo: List[str] = []

    def visit(start: str) -> None:
        stack = [(start, iter(rev_succs[start]))]
        visited.add(start)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(rev_succs[succ])))
                    advanced = True
                    break
            if not advanced:
                rpo.append(current)
                stack.pop()

    visit(VIRTUAL_EXIT)
    rpo.reverse()
    return _compute(rpo, rev_preds, rev_succs, VIRTUAL_EXIT)
