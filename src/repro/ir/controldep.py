"""Control-dependence computation (Ferrante, Ottenstein & Warren).

A block ``B`` is control dependent on branch block ``A`` with label
``taken`` when the edge ``A -> succ`` (for the ``taken`` arm) determines
whether ``B`` executes: ``B`` post-dominates ``succ`` but not ``A``.

The result maps each block to its list of ``(branch_block, taken)``
controls; the SEG builder turns these into control-dependence edges from
each statement vertex to the branch-condition variable's vertex, labeled
true/false exactly as in Definition 3.2 of the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir import cfg
from repro.ir.dominance import VIRTUAL_EXIT, post_dominators


def control_dependence(function: cfg.Function) -> Dict[str, List[Tuple[str, bool]]]:
    """Map block label -> [(branch block label, branch arm)]."""
    pdom = post_dominators(function)
    deps: Dict[str, List[Tuple[str, bool]]] = {
        label: [] for label in function.block_order()
    }
    for label in function.block_order():
        block = function.blocks[label]
        terminator = block.terminator
        if not isinstance(terminator, cfg.Branch):
            continue
        for succ, taken in (
            (terminator.then_label, True),
            (terminator.else_label, False),
        ):
            if succ == label:
                continue
            # Walk the post-dominator tree from succ up to (exclusive)
            # ipostdom(label); every node on the way is control dependent
            # on (label, taken).
            stop = pdom.idom.get(label)
            runner = succ
            while runner is not None and runner != stop and runner != VIRTUAL_EXIT:
                if runner != label and (label, taken) not in deps.get(runner, ()):
                    deps.setdefault(runner, []).append((label, taken))
                runner = pdom.idom.get(runner)
    return deps
