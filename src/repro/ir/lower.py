"""Lowering from the AST to the CFG three-address IR.

Nested expressions are flattened into temporaries (``%t1``, ``%t2``, ...)
so every IR instruction matches one of the paper's statement forms.
Short-circuit ``&&``/``||`` are lowered arithmetically (operands are
evaluated eagerly); this matches the paper's language, which has plain
binary operations rather than short-circuit control flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang import ast
from repro.ir import cfg

# Intrinsic callee names with dedicated IR instructions or roles.
MALLOC_NAMES = frozenset({"malloc", "calloc", "alloc", "new_object"})


class LoweringError(Exception):
    pass


class _FunctionLowerer:
    def __init__(self, func_ast: ast.FuncDef) -> None:
        self._ast = func_ast
        self.function = cfg.Function(func_ast.name, list(func_ast.params))
        entry = cfg.Block("entry")
        self.function.blocks["entry"] = entry
        self._current: Optional[cfg.Block] = entry
        self._temp_counter = 0

    # ------------------------------------------------------------------
    def lower(self) -> cfg.Function:
        self._lower_block(self._ast.body)
        # Guarantee a single return statement form: functions that fall off
        # the end return 0; multiple returns are merged via a return block.
        self._normalize_returns()
        return self.function

    # ------------------------------------------------------------------
    def _fresh_temp(self) -> str:
        self._temp_counter += 1
        return f"%t{self._temp_counter}"

    def _emit(self, instr: cfg.Instr) -> None:
        if self._current is None:
            return  # unreachable code after return
        instr.block = self._current.label
        self._current.instrs.append(instr)

    def _terminate(self, instr: cfg.Instr) -> None:
        if self._current is None:
            return
        instr.block = self._current.label
        self._current.terminator = instr
        self._current = None

    def _start_block(self, block: cfg.Block) -> None:
        self._current = block

    # ------------------------------------------------------------------
    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if self._current is None:
            return  # dead code after return
        if isinstance(stmt, ast.AssignStmt):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.StoreStmt):
            self._lower_store(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = None if stmt.value is None else self._lower_operand(stmt.value)
            self._terminate(cfg.Ret(value, line=stmt.line))
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr_for_effect(stmt.expr)
        else:  # pragma: no cover - parser produces no other forms
            raise LoweringError(f"unknown statement {stmt!r}")

    def _lower_assign(self, stmt: ast.AssignStmt) -> None:
        value = self._lower_expr_into(stmt.value, stmt.target)
        if value is not None:
            self._emit(cfg.Assign(stmt.target, value, line=stmt.line))

    def _lower_store(self, stmt: ast.StoreStmt) -> None:
        pointer = self._lower_operand(stmt.pointer)
        if not isinstance(pointer, cfg.Var):
            raise LoweringError(f"line {stmt.line}: store through a constant")
        value = self._lower_operand(stmt.value)
        self._emit(cfg.Store(pointer, stmt.depth, value, line=stmt.line))

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        # Peel top-level negations by swapping the branch arms instead of
        # materializing a `!cond` temporary.  This keeps contradictory
        # branches (`if (t) ... if (!t) ...`) expressed over the *same*
        # condition variable, which is what lets the linear-time solver
        # catch them as syntactic a & !a contradictions (paper §3.1.1).
        cond_expr = stmt.cond
        negated = False
        while isinstance(cond_expr, ast.Unary) and cond_expr.op == "!":
            cond_expr = cond_expr.operand
            negated = not negated
        cond = self._lower_operand(cond_expr, want_var=True)
        assert isinstance(cond, cfg.Var)
        func = self.function
        then_block = func.new_block("then")
        join_block = func.new_block("join")
        else_block = func.new_block("else") if stmt.else_block else join_block
        branch_src = self._current.label
        if negated:
            branch = cfg.Branch(cond, else_block.label, then_block.label, line=stmt.line)
        else:
            branch = cfg.Branch(cond, then_block.label, else_block.label, line=stmt.line)
        self._terminate(branch)
        func.add_edge(branch_src, then_block.label)
        func.add_edge(branch_src, else_block.label)

        self._start_block(then_block)
        self._lower_block(stmt.then_block)
        if self._current is not None:
            src = self._current.label
            self._terminate(cfg.Jump(join_block.label, line=stmt.line))
            func.add_edge(src, join_block.label)

        if stmt.else_block:
            self._start_block(else_block)
            self._lower_block(stmt.else_block)
            if self._current is not None:
                src = self._current.label
                self._terminate(cfg.Jump(join_block.label, line=stmt.line))
                func.add_edge(src, join_block.label)

        if join_block.preds:
            self._start_block(join_block)
        else:
            # Both arms returned; the join block is unreachable.
            del func.blocks[join_block.label]
            self._current = None

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        func = self.function
        header = func.new_block("loop")
        body = func.new_block("body")
        exit_block = func.new_block("exit")
        src = self._current.label
        self._terminate(cfg.Jump(header.label, line=stmt.line))
        func.add_edge(src, header.label)

        self._start_block(header)
        cond = self._lower_operand(stmt.cond, want_var=True)
        assert isinstance(cond, cfg.Var)
        self._terminate(cfg.Branch(cond, body.label, exit_block.label, line=stmt.line))
        func.add_edge(header.label, body.label)
        func.add_edge(header.label, exit_block.label)

        self._start_block(body)
        self._lower_block(stmt.body)
        if self._current is not None:
            src = self._current.label
            self._terminate(cfg.Jump(header.label, line=stmt.line))
            func.add_edge(src, header.label)  # back edge

        self._start_block(exit_block)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _lower_expr_into(self, expr: ast.Expr, dest: str) -> Optional[cfg.Operand]:
        """Lower ``expr`` writing the result to ``dest`` when an
        instruction form allows it directly; otherwise return an operand
        for the caller to Assign.  Returns None when already written."""
        if isinstance(expr, ast.Binary) and expr.op not in ("&&", "||"):
            lhs = self._lower_operand(expr.lhs)
            rhs = self._lower_operand(expr.rhs)
            self._emit(cfg.BinOp(dest, expr.op, lhs, rhs, line=expr.line))
            return None
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                pointer, depth = self._collapse_deref(expr)
                self._emit(cfg.Load(dest, pointer, depth, line=expr.line))
                return None
            operand = self._lower_operand(expr.operand)
            self._emit(cfg.UnOp(dest, expr.op, operand, line=expr.line))
            return None
        if isinstance(expr, ast.Binary):  # && and ||
            lhs = self._lower_operand(expr.lhs)
            rhs = self._lower_operand(expr.rhs)
            self._emit(cfg.BinOp(dest, expr.op, lhs, rhs, line=expr.line))
            return None
        if isinstance(expr, ast.Call):
            if expr.callee in MALLOC_NAMES:
                for arg in expr.args:
                    self._lower_operand(arg)  # evaluate, discard
                self._emit(cfg.Malloc(dest, line=expr.line))
                return None
            args = [self._lower_operand(a) for a in expr.args]
            self._emit(cfg.Call(dest, expr.callee, args, line=expr.line))
            return None
        return self._lower_operand(expr)

    def _lower_expr_for_effect(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Call):
            if expr.callee in MALLOC_NAMES:
                self._emit(cfg.Malloc(self._fresh_temp(), line=expr.line))
                return
            args = [self._lower_operand(a) for a in expr.args]
            self._emit(cfg.Call(None, expr.callee, args, line=expr.line))
            return
        self._lower_operand(expr)

    def _lower_operand(self, expr: ast.Expr, want_var: bool = False) -> cfg.Operand:
        """Lower ``expr`` to an operand, emitting temporaries as needed."""
        if isinstance(expr, ast.Name):
            return cfg.Var(expr.ident)
        if isinstance(expr, ast.Num):
            if want_var:
                temp = self._fresh_temp()
                self._emit(cfg.Assign(temp, cfg.Const(expr.value), line=expr.line))
                return cfg.Var(temp)
            return cfg.Const(expr.value)
        temp = self._fresh_temp()
        leftover = self._lower_expr_into(expr, temp)
        if leftover is not None:
            self._emit(cfg.Assign(temp, leftover, line=expr.line))
        return cfg.Var(temp)

    def _collapse_deref(self, expr: ast.Unary):
        """Collapse stacked ``*`` into (pointer var, depth)."""
        depth = 0
        inner: ast.Expr = expr
        while isinstance(inner, ast.Unary) and inner.op == "*":
            depth += 1
            inner = inner.operand
        pointer = self._lower_operand(inner, want_var=True)
        assert isinstance(pointer, cfg.Var)
        return pointer, depth

    # ------------------------------------------------------------------
    def _normalize_returns(self) -> None:
        """Give every function exactly one Ret (the paper assumes one
        return statement per function) and terminate dangling blocks."""
        func = self.function
        if self._current is not None:
            self._terminate(cfg.Ret(cfg.Const(0)))
        rets = [
            block
            for block in func.blocks.values()
            if isinstance(block.terminator, cfg.Ret)
        ]
        if len(rets) <= 1:
            return
        unified = func.new_block("ret")
        result = "%ret"
        for block in rets:
            old = block.terminator
            assert isinstance(old, cfg.Ret)
            value = old.value if old.value is not None else cfg.Const(0)
            assign = cfg.Assign(result, value, line=old.line)
            assign.block = block.label
            block.instrs.append(assign)
            jump = cfg.Jump(unified.label, line=old.line)
            jump.block = block.label
            block.terminator = jump
            func.add_edge(block.label, unified.label)
        ret = cfg.Ret(cfg.Var(result))
        ret.block = unified.label
        unified.terminator = ret


def lower_function(func_ast: ast.FuncDef) -> cfg.Function:
    return _FunctionLowerer(func_ast).lower()


def lower_program(program: ast.Program) -> cfg.Module:
    module = cfg.Module()
    for func_ast in program.functions:
        module.add(lower_function(func_ast))
    return module
