"""Intermediate representation: CFG, SSA, dominance, control dependence.

The AST from :mod:`repro.lang` is lowered into a control-flow graph of
three-address instructions matching the paper's statement forms, then
converted to SSA.  Dominance and post-dominance support phi placement and
control-dependence computation; gating functions (Tu & Padua, cited as
[48] in the paper) give the condition under which each phi operand is
selected, which become the conditional data-dependence labels in the SEG.
"""

from repro.ir.cfg import (
    Assign,
    BinOp,
    Block,
    Branch,
    Call,
    Const,
    Function,
    Instr,
    Jump,
    Load,
    Malloc,
    Phi,
    Ret,
    Store,
    UnOp,
    Var,
)
from repro.ir.lower import lower_function, lower_program
from repro.ir.ssa import to_ssa
from repro.ir.callgraph import CallGraph

__all__ = [
    "Assign",
    "BinOp",
    "Block",
    "Branch",
    "Call",
    "CallGraph",
    "Const",
    "Function",
    "Instr",
    "Jump",
    "Load",
    "Malloc",
    "Phi",
    "Ret",
    "Store",
    "UnOp",
    "Var",
    "lower_function",
    "lower_program",
    "to_ssa",
]
