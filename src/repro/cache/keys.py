"""Cache keys: the AST-fingerprint x callee-interface-fingerprint scheme.

This is the single source of truth for the fingerprinting the in-memory
:class:`~repro.core.incremental.IncrementalAnalyzer` and the on-disk
:class:`~repro.cache.store.SummaryStore` share.  A function's prepared
artifacts are valid exactly when

- its own AST is structurally unchanged (whitespace/comments excluded:
  the fingerprint hashes the pretty-printed body), and
- every callee it actually calls presents the same *connector
  signature* (params + Aux params + Aux returns, the Fig. 3 interface).

A body-only edit in a callee changes neither input, so callers stay
valid; an interface-affecting edit (new Mod/Ref behaviour surfacing as
Aux params/returns) changes the callee's signature fingerprint and
invalidates callers transitively as each caller's own signature shifts.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Tuple

from repro.lang import ast
from repro.lang.pretty import pretty_function
from repro.transform.connectors import ConnectorSignature

#: Bump whenever a pickled artifact shape changes: IR instruction
#: fields, SSA naming, SEG vertex scheme, PointsToResult layout, or
#: connector signature fields.  Old version directories are pruned the
#: first time a newer-schema store opens the same cache dir.
SCHEMA_VERSION = 2


def signature_fingerprint(signature: ConnectorSignature) -> Tuple:
    """Stable tuple describing a callee's interface (Fig. 3)."""
    return (
        tuple(signature.params),
        tuple(signature.aux_params),
        tuple(signature.aux_returns),
    )


def ast_fingerprint(func_ast: ast.FuncDef) -> str:
    """Structural hash of one function's AST.

    The pretty-printed body is the hash input, so whitespace and comment
    edits do not invalidate the cache."""
    text = pretty_function(func_ast)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def prepare_cache_key(
    func_ast: ast.FuncDef,
    usable_signatures: Dict[str, ConnectorSignature],
    own_callees: Iterable[str],
    pta_tier: str = "fi",
) -> Tuple:
    """The full validity key for one function's prepared artifacts.

    Only the signatures of functions this one actually calls
    participate; unrelated edits elsewhere in the program must not
    invalidate it.  Same-SCC callees are already absent from
    ``usable_signatures`` (recursion is unrolled once, so those calls
    are opaque and contribute nothing to the artifacts).

    The precision tier is part of the key: fi- and fs-prepared artifacts
    of the same function differ (strong updates change the heap states),
    so they must never collide under one content address.
    """
    callees = set(own_callees)
    return (
        ast_fingerprint(func_ast),
        tuple(
            sorted(
                (callee, signature_fingerprint(sig))
                for callee, sig in usable_signatures.items()
                if callee in callees
            )
        ),
        ("pta", pta_tier),
    )


def key_digest(key: Tuple) -> str:
    """Content address of a cache key (sha256 hex of its repr).

    ``repr`` over the key tuple is stable: every component is a string
    or a nested tuple of strings, with deterministic ordering imposed by
    :func:`prepare_cache_key`."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
