"""repro.cache — persistent, content-addressed artifact store.

Pinpoint's bottom-up phase computes, per function, artifacts that depend
only on (a) the function's own AST and (b) the connector signatures of
its non-recursive callees (see ``core/incremental.py``).  That makes the
stage 1-3 outputs — the transformed SSA function, its points-to result,
its connector signature, and its SEG — *cacheable across processes*:
the key is a pure function of the inputs, so a second CLI run on an
unchanged program can skip nearly all preparation work.

Layout on disk (see ``docs/parallelism.md``)::

    <cache-dir>/
      v<SCHEMA_VERSION>/          one directory per schema version
        ab/                       first two hex digits of the key
          ab12...ef.pkl           pickled (PreparedFunction, SEG | None)

Versioned invalidation: :data:`SCHEMA_VERSION` must be bumped whenever
the pickled shapes change (IR instruction fields, SEG vertex scheme,
PointsToResult layout, connector signature fields).  Stale version
directories are pruned the first time a store is opened by a newer
schema, and every unreadable/corrupt entry is evicted on read instead
of crashing the run.

Metrics (merged into the ``repro.obs`` registry): ``cache.hits``,
``cache.misses``, ``cache.writes``, ``cache.evictions``.
"""

from repro.cache.journal import (
    JOURNAL_FILE,
    JOURNAL_SCHEMA,
    RESUME_ENV,
    JournalState,
    RunJournal,
    open_journal,
    resolve_resume,
)
from repro.cache.keys import (
    SCHEMA_VERSION,
    ast_fingerprint,
    key_digest,
    prepare_cache_key,
    signature_fingerprint,
)
from repro.cache.store import CACHE_DIR_ENV, SummaryStore, open_store, resolve_cache_dir

__all__ = [
    "SCHEMA_VERSION",
    "CACHE_DIR_ENV",
    "JOURNAL_FILE",
    "JOURNAL_SCHEMA",
    "JournalState",
    "RESUME_ENV",
    "RunJournal",
    "SummaryStore",
    "ast_fingerprint",
    "key_digest",
    "open_journal",
    "open_store",
    "prepare_cache_key",
    "resolve_cache_dir",
    "resolve_resume",
    "signature_fingerprint",
]
