"""On-disk artifact store: pickled prepared functions + SEGs.

One :class:`SummaryStore` wraps one cache directory.  Entries are
content-addressed by the :mod:`repro.cache.keys` digest and live under a
schema-version directory, so a schema bump never deserializes stale
shapes — the old version's entries are pruned wholesale on first open.

Robustness discipline: the store must never take down an analysis run.
Every filesystem or unpickling error on the read path degrades to a
miss (evicting the offending entry when possible); errors on the write
path are swallowed after cleaning up the temp file.  Writes are atomic
(``os.replace`` of a same-directory temp file), so concurrent runs
sharing a cache dir see either the old entry or the new one, never a
torn pickle.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.keys import SCHEMA_VERSION
from repro.obs.metrics import get_registry
from repro.robust.faults import disk_full_point
from repro.robust.retry import RetryPolicy, with_retries

#: Environment fallback for ``--cache-dir``.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_ENTRY_SUFFIX = ".pkl"


def resolve_cache_dir(explicit: Optional[str] = None) -> str:
    """CLI flag > ``REPRO_CACHE_DIR`` env var > '' (caching off)."""
    if explicit:
        return explicit
    return os.environ.get(CACHE_DIR_ENV, "").strip()


def open_store(cache_dir: Optional[str]) -> Optional["SummaryStore"]:
    """A :class:`SummaryStore` for ``cache_dir``, or None when unset."""
    resolved = resolve_cache_dir(cache_dir)
    if not resolved:
        return None
    return SummaryStore(resolved)


class SummaryStore:
    """Persistent map: key digest -> pickled per-function artifacts.

    The payload is ``(name, PreparedFunction, SEG | None)`` pickled as
    one object so cross-references between the SSA function and the SEG
    survive the round trip via the pickle memo.
    """

    def __init__(self, root: str, version: int = SCHEMA_VERSION) -> None:
        self.root = root
        self.version = version
        self._dir = os.path.join(root, f"v{version}")
        os.makedirs(self._dir, exist_ok=True)
        self.pruned_versions = self._prune_stale_versions()

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> str:
        return os.path.join(self._dir, digest[:2], digest + _ENTRY_SUFFIX)

    def _counter(self, name: str, help: str):
        return get_registry().counter(name, help)

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[Tuple[str, Any, Any]]:
        """Load one entry; a miss for any reason (absent, corrupt,
        unreadable, wrong shape) — corrupt entries are evicted."""
        path = self._path(digest)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self._counter("cache.misses", "Artifact-store lookups that missed").inc()
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, MemoryError, ValueError, TypeError):
            self._evict(path)
            self._counter("cache.misses", "Artifact-store lookups that missed").inc()
            return None
        if not (isinstance(payload, tuple) and len(payload) == 3):
            self._evict(path)
            self._counter("cache.misses", "Artifact-store lookups that missed").inc()
            return None
        self._counter("cache.hits", "Artifact-store lookups that hit").inc()
        return payload

    def put(self, digest: str, name: str, prepared: Any, seg: Any = None) -> bool:
        """Atomically persist one entry; False (and no trace) on error.

        Transient filesystem errors (``ENOSPC``, an NFS hiccup) retry
        under the unified :mod:`repro.robust.retry` backoff before the
        store gives up; deterministic failures (an unpicklable payload)
        fail immediately — retrying them would only burn the budget."""
        try:
            payload = pickle.dumps(
                (name, prepared, seg), protocol=pickle.HIGHEST_PROTOCOL
            )
        except (
            pickle.PicklingError,
            RecursionError,
            # pickle raises these (not PicklingError) for unpicklable
            # payloads like closures or objects with broken __reduce__.
            AttributeError,
            TypeError,
        ):
            return False
        try:
            with_retries(
                lambda: self._put_once(digest, payload),
                unit=digest[:12],
                site="cache",
                policy=RetryPolicy(),
            )
        except OSError:
            return False
        self._counter("cache.writes", "Artifact-store entries written").inc()
        return True

    def _put_once(self, digest: str, payload: bytes) -> None:
        path = self._path(digest)
        directory = os.path.dirname(path)
        tmp_path = ""
        try:
            disk_full_point(digest[:12])
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=".tmp-", suffix=_ENTRY_SUFFIX, dir=directory
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except OSError:
            if tmp_path:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            raise

    # ------------------------------------------------------------------
    def _evict(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
        self._counter(
            "cache.evictions", "Corrupt/stale artifact-store entries removed"
        ).inc()

    def _prune_stale_versions(self) -> int:
        """Remove version directories other than this schema's."""
        pruned = 0
        try:
            siblings = os.listdir(self.root)
        except OSError:
            return 0
        for entry in siblings:
            if entry == f"v{self.version}" or not entry.startswith("v"):
                continue
            if not entry[1:].isdigit():
                continue
            full = os.path.join(self.root, entry)
            pruned += self._remove_tree(full)
        if pruned:
            self._counter(
                "cache.evictions", "Corrupt/stale artifact-store entries removed"
            ).inc(pruned)
        return pruned

    def _remove_tree(self, top: str) -> int:
        removed = 0
        for dirpath, dirnames, filenames in os.walk(top, topdown=False):
            for filename in filenames:
                try:
                    os.unlink(os.path.join(dirpath, filename))
                    if filename.endswith(_ENTRY_SUFFIX):
                        removed += 1
                except OSError:
                    pass
            for dirname in dirnames:
                try:
                    os.rmdir(os.path.join(dirpath, dirname))
                except OSError:
                    pass
        try:
            os.rmdir(top)
        except OSError:
            pass
        return removed

    # ------------------------------------------------------------------
    def entries(self) -> List[str]:
        """Digests stored under the current schema version."""
        found = []
        for dirpath, _dirnames, filenames in os.walk(self._dir):
            for filename in filenames:
                if filename.endswith(_ENTRY_SUFFIX) and not filename.startswith("."):
                    found.append(filename[: -len(_ENTRY_SUFFIX)])
        return sorted(found)

    def clear(self) -> int:
        """Remove every entry of every version; returns entries removed."""
        removed = 0
        try:
            siblings = os.listdir(self.root)
        except OSError:
            return 0
        for entry in siblings:
            if entry.startswith("v") and entry[1:].isdigit():
                removed += self._remove_tree(os.path.join(self.root, entry))
        os.makedirs(self._dir, exist_ok=True)
        return removed

    def stats(self) -> Dict[str, Any]:
        """On-disk figures for ``repro cache stats`` (not per-run
        hit/miss counters — those live in the metrics registry)."""
        entries = self.entries()
        total_bytes = 0
        for digest in entries:
            try:
                total_bytes += os.path.getsize(self._path(digest))
            except OSError:
                pass
        return {
            "root": self.root,
            "schema_version": self.version,
            "entries": len(entries),
            "bytes": total_bytes,
            "pruned_stale_versions": self.pruned_versions,
        }
