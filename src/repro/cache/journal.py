"""Write-ahead run journal: crash-durable per-function completion log.

Pinpoint's bottom-up phase is a long sequence of independent
per-function summary computations — exactly the shape that should
survive a mid-run crash instead of restarting from zero.  The journal
makes it so: one JSONL file under the cache dir (or the history dir
when no cache is configured) that records, ahead of any further
progress,

- a ``begin`` header with the program fingerprint, the condensation
  fingerprint, and the wave-plan shape,
- one ``fn`` record per *completed* function — its name, its wave, and
  its AST×interface cache digest (:mod:`repro.cache.keys`, the same key
  ``core.incremental`` and the on-disk store share), appended only
  after the function's artifacts are safely in the summary store,
- a ``wave`` record at each wave barrier, and an ``end`` record when
  preparation finishes.

Appends are single-``write`` ``O_APPEND`` lines
(:func:`repro.obs.export.append_line`), so a SIGKILLed or OOM-killed
run tears at most the final line; the reader skips an unparsable tail
and every *prefix* of a journal is a consistent description of real
progress.  Header (re)writes go through the same temp-file +
``os.replace`` discipline as every other exported artifact.

``repro check --resume`` (or ``REPRO_RESUME=1``) loads the journal,
validates it against the current program fingerprint, and hands the
scheduler the completed digest set: a function is skipped only when its
*currently computed* digest is journaled **and** the summary store
still holds that entry, so resuming after a source edit invalidates
exactly the changed functions (and their interface-affected callers) —
the normal incremental story, not a wholesale journal rejection.
Because skipped functions replay from the same content-addressed
artifacts an uninterrupted run would have produced, a resumed run's
report is byte-identical to an uninterrupted one.

Transient journal-write failures retry under the unified
:mod:`repro.robust.retry` policy; a persistent failure (``disk-full``
fault, read-only volume) disables journaling for the rest of the run —
durability degrades, the analysis never dies for it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.obs.export import append_line, atomic_write
from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.robust.faults import disk_full_point, torn_write_armed
from repro.robust.retry import RetryPolicy, with_retries

_log = get_logger("cache.journal")

#: Bump when the journal record shapes change; a mismatched journal is
#: ignored (fresh run), never misread.
JOURNAL_SCHEMA = 1

#: File name under the journal directory.
JOURNAL_FILE = "journal.jsonl"

#: Environment fallback for ``--resume``.
RESUME_ENV = "REPRO_RESUME"

_TRUTHY = ("1", "true", "yes", "on")


def resolve_resume(explicit: bool = False) -> bool:
    """CLI flag > ``REPRO_RESUME`` env var > off."""
    if explicit:
        return True
    return os.environ.get(RESUME_ENV, "").strip().lower() in _TRUTHY


def journal_dir(cache_dir: str = "", history_dir: str = "") -> str:
    """Where the journal lives: the cache dir when caching is on (the
    artifacts a resume replays live there too), else the history dir."""
    return cache_dir or history_dir or ""


def open_journal(
    cache_dir: str = "", history_dir: str = ""
) -> Optional["RunJournal"]:
    """A :class:`RunJournal` under the resolved dir, or None when
    neither a cache nor a history dir is configured."""
    directory = journal_dir(cache_dir, history_dir)
    if not directory:
        return None
    return RunJournal(os.path.join(directory, JOURNAL_FILE))


@dataclass
class JournalState:
    """A parsed journal: the consistent prefix a previous run left."""

    program_fingerprint: str = ""
    condensation: str = ""
    waves: int = 0
    functions: int = 0
    #: digest -> function name, for every journaled completion.
    completed: Dict[str, str] = field(default_factory=dict)
    completed_waves: Set[int] = field(default_factory=set)
    finished: bool = False
    torn_tail: bool = False


class RunJournal:
    """One journal file: append-side for the scheduler, read-side for
    ``--resume``.  Never raises out of a write — journaling failures
    degrade durability, not the analysis."""

    def __init__(
        self, path: str, policy: Optional[RetryPolicy] = None
    ) -> None:
        self.path = path
        self.policy = policy or RetryPolicy()
        self.broken = False

    # -- write side ----------------------------------------------------
    def begin(
        self,
        *,
        program_fingerprint: str,
        condensation: str,
        waves: int,
        functions: int,
        jobs: int,
        resumed_from: Optional[JournalState] = None,
    ) -> None:
        """Start journaling this run.

        A fresh run rewrites the file atomically (one header line), so
        a stale journal can never leak completions into a new run; a
        resumed run keeps the existing prefix and appends a ``resume``
        marker instead."""
        header = {
            "kind": "begin",
            "schema": JOURNAL_SCHEMA,
            "program": program_fingerprint,
            "condensation": condensation,
            "waves": waves,
            "functions": functions,
            "jobs": jobs,
            "ts": round(time.time(), 3),
        }
        if resumed_from is not None:
            self._append(
                {
                    "kind": "resume",
                    "schema": JOURNAL_SCHEMA,
                    "program": program_fingerprint,
                    "condensation": condensation,
                    "prior_completed": len(resumed_from.completed),
                    "source_changed": (
                        resumed_from.program_fingerprint != program_fingerprint
                    ),
                    "ts": round(time.time(), 3),
                }
            )
            return
        try:
            with_retries(
                lambda: self._write_header(header),
                unit="journal",
                site="journal",
                policy=self.policy,
            )
            get_registry().counter(
                "journal.writes", "Run-journal records appended"
            ).inc()
        except OSError as error:
            self._disable(error)

    def _write_header(self, header: Dict[str, Any]) -> None:
        disk_full_point("journal")
        atomic_write(self.path, json.dumps(header, sort_keys=True) + "\n")

    def record_function(self, name: str, digest: str, wave: int) -> None:
        self._append(
            {"kind": "fn", "name": name, "digest": digest, "wave": wave}
        )

    def record_wave(self, wave: int) -> None:
        self._append({"kind": "wave", "wave": wave})

    def finish(self) -> None:
        self._append({"kind": "end"})

    def _append(self, record: Dict[str, Any]) -> None:
        if self.broken:
            return
        line = json.dumps(record, sort_keys=True)
        if torn_write_armed(record.get("name", "") or record.get("kind", "")):
            # A crash mid-append: half a record, no newline, then
            # silence.  The analysis itself is unaffected; whatever was
            # being journaled simply recomputes on resume.
            get_registry().counter(
                "journal.torn_writes", "Injected torn journal appends"
            ).inc()
            try:
                append_line(self.path, line[: max(1, len(line) // 2)])
            except OSError:
                pass
            self.broken = True
            return
        try:
            with_retries(
                lambda: self._append_once(line),
                unit=record.get("name", "journal"),
                site="journal",
                policy=self.policy,
            )
            get_registry().counter(
                "journal.writes", "Run-journal records appended"
            ).inc()
        except OSError as error:
            self._disable(error)

    def _append_once(self, line: str) -> None:
        disk_full_point("journal")
        append_line(self.path, line)

    def _disable(self, error: BaseException) -> None:
        self.broken = True
        get_registry().counter(
            "journal.errors", "Run-journal writes abandoned after retries"
        ).inc()
        _log.warning(
            "journal disabled: writes keep failing; this run will not be "
            "resumable",
            path=self.path,
            error=f"{type(error).__name__}: {error}",
        )

    # -- read side -----------------------------------------------------
    def load(self) -> Optional[JournalState]:
        """Parse the journal into a :class:`JournalState`.

        Returns None when the file is absent, its header is missing or
        unreadable, or it was written by a different schema — resume
        degrades to a fresh run in every such case.  Unparsable lines
        after the header (a torn tail) are skipped: every record before
        them still describes real, durable progress."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return None
        state: Optional[JournalState] = None
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                if state is not None:
                    state.torn_tail = True
                continue
            if not isinstance(record, dict):
                continue
            kind = record.get("kind")
            if state is None:
                if kind != "begin" or record.get("schema") != JOURNAL_SCHEMA:
                    return None
                state = JournalState(
                    program_fingerprint=str(record.get("program", "")),
                    condensation=str(record.get("condensation", "")),
                    waves=int(record.get("waves", 0) or 0),
                    functions=int(record.get("functions", 0) or 0),
                )
                continue
            if kind == "fn":
                digest = record.get("digest")
                name = record.get("name")
                if isinstance(digest, str) and isinstance(name, str):
                    state.completed[digest] = name
            elif kind == "wave":
                try:
                    state.completed_waves.add(int(record["wave"]))
                except (KeyError, TypeError, ValueError):
                    pass
            elif kind == "end":
                state.finished = True
        return state

    def records(self) -> List[Dict[str, Any]]:
        """Every parsable record, for tests and debugging."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return []
        out: List[Dict[str, Any]] = []
        for raw in lines:
            try:
                record = json.loads(raw)
            except ValueError:
                continue
            if isinstance(record, dict):
                out.append(record)
        return out
