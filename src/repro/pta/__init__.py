"""Points-to analyses.

Two analyses live here, corresponding to the two designs the paper
contrasts:

- :mod:`repro.pta.intraproc` — Pinpoint's *local, quasi path-sensitive*
  points-to analysis (Section 3.1.1): per-function, flow-sensitive,
  condition-tracking, pruned by the linear-time contradiction solver,
  with non-local memory modeled through aux objects behind parameters.
- :mod:`repro.pta.andersen` — a whole-program, flow- and
  context-insensitive inclusion-based (Andersen) analysis: the substrate
  of the "layered" SVF baseline whose imprecision causes the paper's
  "pointer trap".
"""

from repro.pta.memory import AllocObject, AuxObject, MemObject
from repro.pta.intraproc import PointsToAnalysis, PointsToResult
from repro.pta.andersen import AndersenAnalysis

__all__ = [
    "AllocObject",
    "AndersenAnalysis",
    "AuxObject",
    "MemObject",
    "PointsToAnalysis",
    "PointsToResult",
]
