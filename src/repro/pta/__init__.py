"""Points-to analyses.

Two analyses live here, corresponding to the two designs the paper
contrasts:

- :mod:`repro.pta.intraproc` — Pinpoint's *local, quasi path-sensitive*
  points-to analysis (Section 3.1.1): per-function, flow-sensitive,
  condition-tracking, pruned by the linear-time contradiction solver,
  with non-local memory modeled through aux objects behind parameters.
- :mod:`repro.pta.andersen` — a whole-program, flow- and
  context-insensitive inclusion-based (Andersen) analysis: the substrate
  of the "layered" SVF baseline whose imprecision causes the paper's
  "pointer trap".
- :mod:`repro.pta.flowsense` — the sparse flow-sensitive must-alias pass
  of the opt-in ``--pta=fs`` precision tier: it proves strong updates
  the quasi path-sensitive analysis cannot justify syntactically.
"""

from repro.pta.memory import AllocObject, AuxObject, MemObject, MustAlias
from repro.pta.intraproc import PointsToAnalysis, PointsToResult
from repro.pta.andersen import AndersenAnalysis
from repro.pta.flowsense import (
    FlowSenseResult,
    FlowSensitivePTA,
    MustAliasProof,
    resolve_pta_tier,
)

__all__ = [
    "AllocObject",
    "AndersenAnalysis",
    "AuxObject",
    "FlowSenseResult",
    "FlowSensitivePTA",
    "MemObject",
    "MustAlias",
    "MustAliasProof",
    "PointsToAnalysis",
    "PointsToResult",
    "resolve_pta_tier",
]
