"""Sparse flow-sensitive points-to: the must-alias pass of the
``--pta=fs`` precision tier.

The quasi path-sensitive local analysis (:mod:`repro.pta.intraproc`)
only strong-updates a store when its single target carries the
*syntactic* condition TRUE.  A store through a pointer whose points-to
set is conditional — a phi with a null branch, a cell reached through
two aliasing values, a guard structure whose gates don't collapse —
gets a weak update even when, flow-sensitively, the pointer always
designates exactly one concrete cell.  The stale value survives the
store and leaks into the SEG as a false data-dependence edge.

Following "Flow Sensitivity without Control Flow Graph" (Zhang/Cheng/
Lei; see PAPERS.md), this pass recovers those strong updates *sparsely*:
instead of iterating transfer functions in CFG order, it walks SSA
def-use chains directly.  Each SSA variable has one definition, so its
points-to set — computed by chasing the defining instruction's operands
— is valid at every use; no per-program-point states are kept at all.

Per function it computes:

- ``var_objects`` — an unconditional, over-approximate points-to set per
  SSA variable (``None`` encodes ⊤/unknown: loop-carried cycles, call
  results, reads the heap summary cannot vouch for);
- a flow-insensitive heap summary ``object -> {value variables ever
  stored}`` (fixpoint over stores/memcpy, with aux-object cells seeded
  like the local analysis's phantom aux parameters);
- a :class:`MustAliasProof` for every store whose target chain resolves,
  through the :class:`~repro.pta.memory.MustAlias` lattice, to a
  *singleton* set over a *singular* object.

An object is singular — one abstract object, one concrete cell — when
it is an allocation site outside every CFG cycle (a loop allocation
summarizes one cell per iteration, so overwriting "the" cell is not a
kill), or an aux object (one non-local cell per invocation under the
paper's no-parameter-alias assumption, §4.2).

The consumer is :class:`~repro.pta.intraproc.PointsToAnalysis`: given a
proof for a store's uid it replaces the weak update with a strong one.
That is the entire fi/fs delta, which is what makes the fs tier's
points-to and load-value sets subsets of the fi tier's by construction
(the ``pta-tier-subset`` verify rule checks this, and
``pta-strong-update-proof`` checks that every extra strong update names
a proof this pass actually issued).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir import cfg
from repro.ir.ssa import base_name
from repro.pta.memory import (
    AllocObject,
    AuxObject,
    MemObject,
    MustAlias,
    parse_aux_param,
)

#: Mirrors intraproc.MAX_AUX_DEPTH; past it the chain is ⊤, not empty —
#: a must-alias claim needs over-approximation, never truncation.
MAX_AUX_DEPTH = 4

#: Object set of one variable: a frozenset, or None for ⊤ (unknown).
ObjSet = Optional[FrozenSet[MemObject]]


@dataclass(frozen=True)
class MustAliasProof:
    """Why one store may be strong-updated: the pointer chain resolved
    to exactly ``obj``, and ``obj`` is one concrete cell."""

    store_uid: int
    obj: MemObject
    reason: str  # "singleton-alloc" | "singleton-aux"


@dataclass
class FlowSenseResult:
    """Sparse pass outcome, attached to the PreparedFunction of an
    fs-tier preparation (and pickled into the artifact cache with it)."""

    function: str
    # SSA variable -> sorted object tuple, or None for ⊤.
    var_objects: Dict[str, Optional[Tuple[MemObject, ...]]] = field(
        default_factory=dict
    )
    # Store uid -> proof justifying a strong update at that store.
    proofs: Dict[int, MustAliasProof] = field(default_factory=dict)
    # Malloc uids on a CFG cycle (their objects are never singular).
    cyclic_alloc_sites: Tuple[int, ...] = ()
    # True when a store through an unresolvable pointer forced the heap
    # summary to ⊤ (all proofs chaining through memory were withheld).
    heap_unknown: bool = False

    def must_target(self, var: str) -> MustAlias:
        """The must-alias lattice value of one SSA pointer variable."""
        objs = self.var_objects.get(var)
        if objs is None:
            return MustAlias.top()
        if len(objs) == 1:
            return MustAlias.singleton(objs[0])
        if not objs:
            return MustAlias.bottom()
        return MustAlias.top()


class FlowSensitivePTA:
    """Runs the sparse must-alias analysis on one SSA function."""

    def __init__(self, function: cfg.Function) -> None:
        if not function.is_ssa:
            raise ValueError("FlowSensitivePTA requires SSA form")
        self.function = function
        self._defs: Dict[str, cfg.Instr] = {}
        for instr in function.all_instrs():
            dest = instr.defined_var()
            if dest is not None:
                self._defs[dest] = instr
        self._param_bases = {base_name(p) for p in function.params}
        self._cache: Dict[str, ObjSet] = {}
        self._in_progress: Set[str] = set()
        # Flow-insensitive heap summary: object -> value variables ever
        # stored into its cell (grown to a fixpoint by run()).
        self._contents: Dict[MemObject, Set[str]] = {}
        self._contents_unknown: Set[MemObject] = set()
        self._heap_unknown = False
        self._block_of_uid: Dict[int, str] = {}
        for label in function.block_order():
            for instr in function.blocks[label].all_instrs():
                self._block_of_uid[instr.uid] = label
        self._cyclic_blocks = self._find_cyclic_blocks()

    # ------------------------------------------------------------------
    # CFG cycles (for the singularity judgement)
    # ------------------------------------------------------------------
    def _find_cyclic_blocks(self) -> Set[str]:
        blocks = self.function.blocks
        cyclic: Set[str] = set()
        for label in blocks:
            seen: Set[str] = set()
            stack = list(blocks[label].succs)
            while stack:
                current = stack.pop()
                if current == label:
                    cyclic.add(label)
                    break
                if current in seen or current not in blocks:
                    continue
                seen.add(current)
                stack.extend(blocks[current].succs)
        return cyclic

    def _singular(self, obj: MemObject) -> Optional[str]:
        """The proof reason when ``obj`` is one concrete cell, else None."""
        if isinstance(obj, AllocObject):
            if self._block_of_uid.get(obj.site) in self._cyclic_blocks:
                return None  # one abstract object, many loop cells
            return "singleton-alloc"
        if isinstance(obj, AuxObject):
            # One non-local cell per invocation: the paper's assumption
            # that distinct parameters do not alias (§4.2).
            return "singleton-aux"
        return None

    # ------------------------------------------------------------------
    # Per-variable object sets over def-use chains
    # ------------------------------------------------------------------
    def var_objects(self, var: str) -> ObjSet:
        cached = self._cache.get(var)
        if cached is not None or var in self._cache:
            return cached
        if var in self._in_progress:
            # Loop-carried def-use cycle: unlike the may-analysis (which
            # cuts to the empty set), must-alias needs ⊤ here — a value
            # we cannot finish resolving could be anything.
            return None
        self._in_progress.add(var)
        try:
            computed = self._compute(var)
        finally:
            self._in_progress.discard(var)
        self._cache[var] = computed
        return computed

    def _compute(self, var: str) -> ObjSet:
        instr = self._defs.get(var)
        func = self.function
        if instr is None:
            base = base_name(var)
            aux = parse_aux_param(base)
            if aux is not None:
                param, depth = aux
                if depth + 1 <= MAX_AUX_DEPTH:
                    return frozenset({AuxObject(func.name, param, depth + 1)})
                return None  # past the modeled depth: unknown, not empty
            if base in self._param_bases:
                return frozenset({AuxObject(func.name, base, 1)})
            return None  # undefined non-parameter variable
        if isinstance(instr, cfg.Malloc):
            return frozenset({AllocObject(instr.uid, instr.line)})
        if isinstance(instr, cfg.Assign):
            if isinstance(instr.src, cfg.Var):
                return self.var_objects(instr.src.name)
            return frozenset()  # constant (null): no pointee
        if isinstance(instr, cfg.Phi):
            merged: Set[MemObject] = set()
            for _, operand in instr.incomings:
                if not isinstance(operand, cfg.Var):
                    continue  # null/constant operand contributes nothing
                objs = self.var_objects(operand.name)
                if objs is None:
                    return None
                merged.update(objs)
            return frozenset(merged)
        if isinstance(instr, cfg.Load):
            targets = self._resolve_chain(instr.pointer.name, instr.depth)
            return self._content_hop(targets)
        # Calls, BinOps, UnOps: values the sparse pass cannot vouch for.
        return None

    # ------------------------------------------------------------------
    # Heap summary hops
    # ------------------------------------------------------------------
    def _content_hop(self, objs: ObjSet) -> ObjSet:
        """Objects pointed to by the contents of ``objs``' cells."""
        if objs is None or self._heap_unknown:
            return None
        out: Set[MemObject] = set()
        for obj in objs:
            if obj in self._contents_unknown:
                return None
            for value_var in self._contents.get(obj, ()):
                pointees = self.var_objects(value_var)
                if pointees is None:
                    return None
                out.update(pointees)
            if isinstance(obj, AuxObject):
                # Initial caller-provided content, like the local
                # analysis's phantom aux parameter.
                if obj.depth + 1 > MAX_AUX_DEPTH:
                    return None
                out.add(AuxObject(obj.func, obj.param, obj.depth + 1))
        return frozenset(out)

    def _resolve_chain(self, pointer: str, depth: int) -> ObjSet:
        """Objects designated by ``*(pointer, depth)``."""
        objs = self.var_objects(pointer)
        for _ in range(1, depth):
            objs = self._content_hop(objs)
            if objs is None:
                return None
        return objs

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> FlowSenseResult:
        function = self.function
        # Fixpoint over the heap summary: store targets depend on
        # variable sets, which (through loads) depend on the summary.
        # Everything is monotone toward ⊤, so this terminates.
        while True:
            self._cache = {}
            if not self._grow_contents():
                break

        result = FlowSenseResult(function.name, heap_unknown=self._heap_unknown)
        self._cache = {}
        for var in sorted(self._defs):
            result.var_objects[var] = self._as_sorted(self.var_objects(var))
        for param in function.params + function.aux_params:
            result.var_objects[param] = self._as_sorted(self.var_objects(param))

        cyclic_sites: List[int] = []
        for label in function.block_order():
            for instr in function.blocks[label].all_instrs():
                if isinstance(instr, cfg.Malloc) and label in self._cyclic_blocks:
                    cyclic_sites.append(instr.uid)
                if isinstance(instr, cfg.Store):
                    proof = self._prove(instr)
                    if proof is not None:
                        result.proofs[instr.uid] = proof
        result.cyclic_alloc_sites = tuple(sorted(cyclic_sites))
        return result

    def _grow_contents(self) -> bool:
        """One fixpoint round: fold every store and memcpy into the heap
        summary; returns True when the summary changed."""
        changed = False
        for instr in self.function.all_instrs():
            if isinstance(instr, cfg.Store):
                targets = self._resolve_chain(instr.pointer.name, instr.depth)
                changed |= self._record_store(targets, instr.value)
            elif isinstance(instr, cfg.Call) and instr.callee in (
                "memcpy",
                "memmove",
            ):
                if len(instr.args) < 2:
                    continue
                dst, src = instr.args[0], instr.args[1]
                if not isinstance(dst, cfg.Var) or not isinstance(src, cfg.Var):
                    continue
                targets = self.var_objects(dst.name)
                sources = self.var_objects(src.name)
                if targets is None:
                    changed |= self._taint_heap()
                    continue
                for obj in targets:
                    if sources is None:
                        changed |= self._taint_object(obj)
                        continue
                    for src_obj in sources:
                        if src_obj in self._contents_unknown:
                            changed |= self._taint_object(obj)
                            continue
                        for value_var in tuple(self._contents.get(src_obj, ())):
                            bucket = self._contents.setdefault(obj, set())
                            if value_var not in bucket:
                                bucket.add(value_var)
                                changed = True
        return changed

    def _record_store(self, targets: ObjSet, value: cfg.Operand) -> bool:
        if targets is None:
            # A store through a pointer the pass cannot resolve could
            # hit any cell: every content set becomes unknown.  Proofs
            # that do not chain through memory are unaffected.
            return self._taint_heap()
        if not isinstance(value, cfg.Var):
            return False  # null/constant: no pointer-level content
        changed = False
        for obj in targets:
            bucket = self._contents.setdefault(obj, set())
            if value.name not in bucket:
                bucket.add(value.name)
                changed = True
        return changed

    def _taint_heap(self) -> bool:
        if self._heap_unknown:
            return False
        self._heap_unknown = True
        return True

    def _taint_object(self, obj: MemObject) -> bool:
        if obj in self._contents_unknown:
            return False
        self._contents_unknown.add(obj)
        return True

    # ------------------------------------------------------------------
    def _prove(self, instr: cfg.Store) -> Optional[MustAliasProof]:
        targets = self._resolve_chain(instr.pointer.name, instr.depth)
        if targets is None or len(targets) != 1:
            return None
        must = MustAlias.singleton(next(iter(targets)))
        reason = self._singular(must.obj)
        if reason is None:
            return None
        return MustAliasProof(instr.uid, must.obj, reason)

    @staticmethod
    def _as_sorted(objs: ObjSet) -> Optional[Tuple[MemObject, ...]]:
        if objs is None:
            return None
        return tuple(sorted(objs, key=lambda obj: obj.sort_key()))


def resolve_pta_tier(value: str = "") -> str:
    """Resolve a precision tier: explicit value > ``REPRO_PTA`` > ``fi``.

    Raises ``ValueError`` on anything other than ``fi``/``fs`` so typos
    in the environment variable fail loudly instead of silently running
    the wrong tier."""
    import os

    tier = value or os.environ.get("REPRO_PTA", "") or "fi"
    if tier not in ("fi", "fs"):
        raise ValueError(f"unknown PTA tier {tier!r} (expected 'fi' or 'fs')")
    return tier


def analyze(function: cfg.Function) -> FlowSenseResult:
    """Convenience wrapper: run the sparse pass on an SSA function."""
    return FlowSensitivePTA(function).run()
