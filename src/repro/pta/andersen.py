"""Whole-program Andersen (inclusion-based) points-to analysis.

This is the substrate of the "layered" baseline the paper compares
against: flow-insensitive, context-insensitive, path-insensitive.  Its
imprecision is the point — it produces the inflated points-to sets that
blow up the baseline's global SVFG with false edges (the "pointer trap",
Section 1).

Constraint forms over SSA variables of *all* functions at once:

- ``p = malloc()``      →  ``loc(o) ∈ pts(p)``
- ``p = q`` / phi       →  ``pts(q) ⊆ pts(p)``
- ``p = *q``            →  for each ``o ∈ pts(q)``: ``pts(content(o)) ⊆ pts(p)``
- ``*p = q``            →  for each ``o ∈ pts(p)``: ``pts(q) ⊆ pts(content(o))``
- call / return         →  actuals ⊆ formals, callee return ⊆ receiver

Deep loads/stores (``depth > 1``) are pre-lowered into chains of synthetic
depth-1 operations.  Each abstract object ``o`` has one content variable
``content(o)`` (field-insensitive).  Parameters of entry-point-reachable
functions with no binding receive a per-parameter synthetic object so
dereferences of dead-code parameters still resolve (soundy, matching the
paper's assumption that distinct parameters do not alias).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir import cfg
from repro.ir.ssa import base_name
from repro.pta.memory import AllocObject, AuxObject, MemObject


class AndersenAnalysis:
    """Runs on a module of SSA functions (no connector transform)."""

    def __init__(self, module: cfg.Module) -> None:
        self.module = module
        # Node ids: "func::var" for variables, content nodes per object.
        self.pts: Dict[str, Set[MemObject]] = {}
        self._copy_edges: Dict[str, Set[str]] = {}
        self._load_constraints: List[Tuple[str, str]] = []  # dest ⊇ *src
        self._store_constraints: List[Tuple[str, str]] = []  # *dest ⊇ src
        self._object_content: Dict[MemObject, str] = {}
        self._synth_counter = 0
        self.iterations = 0

    # ------------------------------------------------------------------
    # Node helpers
    # ------------------------------------------------------------------
    @staticmethod
    def node(func: str, var: str) -> str:
        return f"{func}::{var}"

    def content_node(self, obj: MemObject) -> str:
        name = self._object_content.get(obj)
        if name is None:
            name = f"@content::{len(self._object_content)}::{obj!r}"
            self._object_content[obj] = name
        return name

    def _fresh(self, func: str) -> str:
        self._synth_counter += 1
        return self.node(func, f"%and{self._synth_counter}")

    # ------------------------------------------------------------------
    # Constraint generation
    # ------------------------------------------------------------------
    def _add_copy(self, src: str, dst: str) -> None:
        self._copy_edges.setdefault(src, set()).add(dst)

    def _add_object(self, node: str, obj: MemObject) -> None:
        self.pts.setdefault(node, set()).add(obj)

    def _operand_node(self, func: str, op: cfg.Operand) -> str:
        if isinstance(op, cfg.Var):
            return self.node(func, op.name)
        # Constants point to nothing; a throwaway node.
        return self.node(func, f"%const{op.value}")

    def generate(self) -> None:
        for function in self.module:
            name = function.name
            for param in function.params:
                # Each parameter without any caller binding still gets a
                # synthetic pointee so local dereferences resolve.
                self._add_object(
                    self.node(name, param),
                    AuxObject(name, base_name(param), 1),
                )
            for instr in function.all_instrs():
                self._gen_instr(name, instr)
        # Aux objects' contents recursively point to deeper aux objects.
        for obj in list(self._object_content):
            self._seed_aux(obj)

    def _seed_aux(self, obj: MemObject) -> None:
        if isinstance(obj, AuxObject) and obj.depth < 3:
            deeper = AuxObject(obj.func, obj.param, obj.depth + 1)
            self._add_object(self.content_node(obj), deeper)

    def _gen_instr(self, func: str, instr: cfg.Instr) -> None:
        if isinstance(instr, cfg.Malloc):
            self._add_object(self.node(func, instr.dest), AllocObject(instr.uid, instr.line))
        elif isinstance(instr, cfg.Assign):
            if isinstance(instr.src, cfg.Var):
                self._add_copy(self.node(func, instr.src.name), self.node(func, instr.dest))
        elif isinstance(instr, cfg.Phi):
            for _, operand in instr.incomings:
                if isinstance(operand, cfg.Var):
                    self._add_copy(self.node(func, operand.name), self.node(func, instr.dest))
        elif isinstance(instr, cfg.Load):
            src = self.node(func, instr.pointer.name)
            for _ in range(instr.depth - 1):
                mid = self._fresh(func)
                self._load_constraints.append((mid, src))
                src = mid
            self._load_constraints.append((self.node(func, instr.dest), src))
        elif isinstance(instr, cfg.Store):
            dst = self.node(func, instr.pointer.name)
            for _ in range(instr.depth - 1):
                mid = self._fresh(func)
                self._load_constraints.append((mid, dst))
                dst = mid
            if isinstance(instr.value, cfg.Var):
                self._store_constraints.append((dst, self.node(func, instr.value.name)))
        elif isinstance(instr, cfg.Call):
            callee = instr.callee
            if callee in self.module:
                target = self.module[callee]
                for actual, formal in zip(instr.args, target.params):
                    if isinstance(actual, cfg.Var):
                        self._add_copy(
                            self.node(func, actual.name), self.node(callee, formal)
                        )
                receivers = instr.all_receivers()
                ret_values: List[cfg.Operand] = []
                for ret in target.return_instrs():
                    if ret.value is not None:
                        ret_values.append(ret.value)
                    ret_values.extend(ret.extra_values)
                for receiver, value in zip(receivers, ret_values):
                    if isinstance(value, cfg.Var):
                        self._add_copy(
                            self.node(callee, value.name), self.node(func, receiver)
                        )

    # ------------------------------------------------------------------
    # Solving (worklist with dynamic complex-constraint expansion)
    # ------------------------------------------------------------------
    # Every loop below iterates points-to sets and copy-edge sets in
    # *sorted* order (MemObject.sort_key / node-name order), never raw
    # set order.  Set iteration depends on PYTHONHASHSEED; sorted
    # iteration makes content-node naming, copy-edge discovery order,
    # and therefore everything downstream (baseline SVFG shape, report
    # order) byte-identical across processes, runs, and --jobs values.

    def solve(self, max_iterations: int = 100) -> None:
        changed = True
        while changed and self.iterations < max_iterations:
            self.iterations += 1
            changed = False
            # Expand load/store constraints into copy edges.
            for dest, pointer in self._load_constraints:
                for obj in self._sorted_pts(pointer):
                    self._seed_aux(obj)
                    content = self.content_node(obj)
                    if dest not in self._copy_edges.get(content, set()):
                        self._add_copy(content, dest)
                        changed = True
            for pointer, value in self._store_constraints:
                for obj in self._sorted_pts(pointer):
                    content = self.content_node(obj)
                    if content not in self._copy_edges.get(value, set()):
                        self._add_copy(value, content)
                        changed = True
            # Propagate along copy edges to a fixpoint.
            if self._propagate():
                changed = True

    def _sorted_pts(self, node: str) -> List[MemObject]:
        return sorted(self.pts.get(node, ()), key=lambda obj: obj.sort_key())

    def _propagate(self) -> bool:
        changed_any = False
        worklist = sorted(node for node in self.pts if self.pts[node])
        seen = set(worklist)
        while worklist:
            node = worklist.pop()
            seen.discard(node)
            objs = self.pts.get(node, set())
            for succ in sorted(self._copy_edges.get(node, ())):
                target = self.pts.setdefault(succ, set())
                before = len(target)
                target.update(objs)
                if len(target) != before:
                    changed_any = True
                    if succ not in seen:
                        worklist.append(succ)
                        seen.add(succ)
        return changed_any

    def run(self) -> "AndersenAnalysis":
        self.generate()
        self.solve()
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def points_to(self, func: str, var: str) -> Set[MemObject]:
        return self.pts.get(self.node(func, var), set())

    def sorted_points_to(self, func: str, var: str) -> List[MemObject]:
        """Points-to set in the stable :meth:`MemObject.sort_key` order —
        what clients building output from these sets should iterate."""
        return self._sorted_pts(self.node(func, var))

    def total_pts_size(self) -> int:
        return sum(len(objs) for objs in self.pts.values())
