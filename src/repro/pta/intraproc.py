"""Pinpoint's local, quasi path-sensitive points-to analysis (§3.1.1).

Per function, flow-sensitive over SSA, tracking for every abstract memory
object its possible contents *with the condition under which each content
holds*.  Conditions come from two places:

- heap states merging at join blocks: entries arriving from a predecessor
  are guarded by that edge's gate condition (the same condition a phi
  operand from the predecessor carries), and
- pointer variables with conditional points-to sets (phis of pointers).

No SMT solver runs here.  Every constructed condition passes through the
linear-time contradiction solver; "easy" unsatisfiable entries (the
``a & !a`` kind, >90% of unsatisfiable conditions per the paper) are
pruned immediately, everything else is *memorized* — stored on the
resulting data-dependence edges for the bug-detection phase to solve.

Non-local memory behind formal parameters is modeled by
:class:`~repro.pta.memory.AuxObject`.  Reading such an object before any
local store records a REF side-effect; writing one records a MOD
side-effect (the Mod/Ref analysis of the paper's Fig. 6).  The connector
transformation consumes these sets to insert Aux formal parameters and
Aux return values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir import cfg
from repro.ir.gating import GateInfo
from repro.ir.ssa import base_name
from repro.obs.metrics import get_registry
from repro.obs.trace import trace
from repro.pta.memory import (
    AllocObject,
    AuxObject,
    MemObject,
    aux_param_name,
    parse_aux_param,
)
from repro.smt import terms as T
from repro.smt.linear_solver import LinearSolver
from repro.smt.terms import Term

# Entries: (value operand, condition).  Tuples keep states hashable-ish
# and cheap to copy.
Entry = Tuple[cfg.Operand, Term]
Heap = Dict[MemObject, Tuple[Entry, ...]]

MAX_AUX_DEPTH = 4


@dataclass
class PointsToResult:
    """Outcome of the local analysis, consumed by Mod/Ref, the connector
    transformation, and the SEG builder."""

    function: str
    points_to: Dict[str, Tuple[Tuple[MemObject, Term], ...]] = field(default_factory=dict)
    load_values: Dict[int, List[Entry]] = field(default_factory=dict)
    load_targets: Dict[int, List[Tuple[MemObject, Term]]] = field(default_factory=dict)
    store_targets: Dict[int, List[Tuple[MemObject, Term]]] = field(default_factory=dict)
    ref: Set[Tuple[str, int]] = field(default_factory=set)
    mod: Set[Tuple[str, int]] = field(default_factory=set)
    conditions_built: int = 0
    conditions_pruned: int = 0
    # True when the resource budget ran out mid-analysis and conditions
    # were degraded to TRUE (sound, path-insensitive).
    degraded: bool = False
    # Precision tier this result was computed under ("fi" or "fs").
    tier: str = "fi"
    # Store-update accounting.  ``strong_uids`` lists only the stores
    # strong-updated *because of* a flow-sensitive must-alias proof —
    # i.e. the fi/fs behavioural delta; syntactic strong updates (single
    # target under TRUE) happen on both tiers and are only counted.
    strong_updates: int = 0
    weak_updates: int = 0
    strong_uids: Tuple[int, ...] = ()

    def pts(self, var: str) -> Tuple[Tuple[MemObject, Term], ...]:
        return self.points_to.get(var, ())


class PointsToAnalysis:
    """Runs the quasi path-sensitive analysis on one SSA function."""

    def __init__(
        self,
        function: cfg.Function,
        gates: Optional[GateInfo] = None,
        linear: Optional[LinearSolver] = None,
        budget=None,
        flow=None,
    ) -> None:
        if not function.is_ssa:
            raise ValueError("PointsToAnalysis requires SSA form")
        self.function = function
        self.gates = gates or GateInfo(function)
        self.linear = linear or LinearSolver()
        # Cooperative resource budget (repro.robust).  When exhausted,
        # conditions degrade to TRUE: the heap states stay sound but
        # path-insensitive, and downstream clients see `degraded`.
        self.budget = budget
        # Must-alias proofs from the sparse flow-sensitive pass
        # (repro.pta.flowsense.FlowSenseResult).  When present, stores
        # with a proof are strong-updated even if their target condition
        # is not syntactically TRUE — the fs precision tier.
        self.flow = flow
        self.degraded = False
        self.result = PointsToResult(
            function.name, tier="fs" if flow is not None else "fi"
        )
        self._defs: Dict[str, cfg.Instr] = {}
        for instr in function.all_instrs():
            dest = instr.defined_var()
            if dest is not None:
                self._defs[dest] = instr
        self._param_bases = {base_name(p) for p in function.params}
        self._pts_cache: Dict[str, Tuple[Tuple[MemObject, Term], ...]] = {}
        self._pts_in_progress: Set[str] = set()
        self.heap_out: Dict[str, Heap] = {}

    # ------------------------------------------------------------------
    # Condition helpers
    # ------------------------------------------------------------------
    def _conj(self, *conds: Term) -> Optional[Term]:
        if self.degraded:
            # Budget exhausted: stop building path conditions.  TRUE
            # over-approximates every guard, keeping the heap states
            # sound at reduced precision.
            return T.TRUE
        combined = T.and_(*conds)
        self.result.conditions_built += 1
        if self.linear.is_obviously_unsat(combined):
            self.result.conditions_pruned += 1
            return None
        return combined

    # ------------------------------------------------------------------
    # Points-to sets of SSA variables
    # ------------------------------------------------------------------
    def pts(self, var: str) -> Tuple[Tuple[MemObject, Term], ...]:
        cached = self._pts_cache.get(var)
        if cached is not None:
            return cached
        if var in self._pts_in_progress:
            return ()  # loop-carried pointer: unroll-once cut
        self._pts_in_progress.add(var)
        try:
            computed = self._compute_pts(var)
        finally:
            self._pts_in_progress.discard(var)
        self._pts_cache[var] = computed
        self.result.points_to[var] = computed
        return computed

    def _compute_pts(self, var: str) -> Tuple[Tuple[MemObject, Term], ...]:
        instr = self._defs.get(var)
        func = self.function
        if instr is None:
            base = base_name(var)
            aux = parse_aux_param(base)
            if aux is not None:
                param, depth = aux
                if depth + 1 <= MAX_AUX_DEPTH:
                    return ((AuxObject(func.name, param, depth + 1), T.TRUE),)
                return ()
            if base in self._param_bases:
                return ((AuxObject(func.name, base, 1), T.TRUE),)
            return ()
        if isinstance(instr, cfg.Malloc):
            return ((AllocObject(instr.uid, instr.line), T.TRUE),)
        if isinstance(instr, cfg.Assign):
            if isinstance(instr.src, cfg.Var):
                return self.pts(instr.src.name)
            return ()
        if isinstance(instr, cfg.Phi):
            merged: Dict[MemObject, Term] = {}
            for index, (_, operand) in enumerate(instr.incomings):
                if not isinstance(operand, cfg.Var):
                    continue
                gate = self.gates.gate(instr, index)
                for obj, cond in self.pts(operand.name):
                    combined = self._conj(cond, gate)
                    if combined is None:
                        continue
                    existing = merged.get(obj)
                    merged[obj] = combined if existing is None else T.or_(existing, combined)
            return tuple(merged.items())
        if isinstance(instr, cfg.Load):
            merged = {}
            for value, cond in self.result.load_values.get(instr.uid, ()):  # noqa: B909
                if not isinstance(value, cfg.Var):
                    continue
                for obj, cond2 in self.pts(value.name):
                    combined = self._conj(cond, cond2)
                    if combined is None:
                        continue
                    existing = merged.get(obj)
                    merged[obj] = combined if existing is None else T.or_(existing, combined)
            return tuple(merged.items())
        # Calls, BinOps, UnOps: opaque (no pointer arithmetic modeled).
        return ()

    # ------------------------------------------------------------------
    # Heap contents
    # ------------------------------------------------------------------
    def _contents(self, obj: MemObject, heap: Heap) -> Tuple[Entry, ...]:
        entries = heap.get(obj)
        if entries:
            return entries
        if isinstance(obj, AuxObject) and obj.func == self.function.name:
            # Initial (caller-provided) content: record the REF side
            # effect and hand back the phantom aux-parameter value so
            # deeper dereference levels keep resolving.
            self.result.ref.add((obj.param, obj.depth))
            return ((cfg.Var(aux_param_name(obj.param, obj.depth)), T.TRUE),)
        return ()

    def _resolve_targets(
        self, pointer: cfg.Var, depth: int, heap: Heap
    ) -> List[Tuple[MemObject, Term]]:
        """Objects designated by ``*(pointer, depth)`` with conditions."""
        frontier: List[Tuple[MemObject, Term]] = list(self.pts(pointer.name))
        for _ in range(1, depth):
            next_frontier: List[Tuple[MemObject, Term]] = []
            for obj, cond in frontier:
                for value, cond2 in self._contents(obj, heap):
                    if not isinstance(value, cfg.Var):
                        continue  # null or integer: not a location
                    for obj2, cond3 in self.pts(value.name):
                        combined = self._conj(cond, cond2, cond3)
                        if combined is not None:
                            next_frontier.append((obj2, combined))
            frontier = next_frontier
        return frontier

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> PointsToResult:
        with trace("pta.run", unit=self.function.name) as span:
            result = self._run()
            facts = sum(len(entries) for entries in result.points_to.values())
            registry = get_registry()
            registry.counter(
                "pta.facts", "Points-to facts (variable, object, condition)"
            ).inc(facts)
            if result.strong_updates:
                registry.counter(
                    "pta.strong_updates",
                    "Stores strong-updated (syntactic or proof-driven)",
                ).inc(result.strong_updates, tier=result.tier)
            if result.weak_updates:
                registry.counter(
                    "pta.weak_updates", "Stores weak-updated"
                ).inc(result.weak_updates, tier=result.tier)
            span.set(facts=facts, degraded=self.degraded)
            return result

    def _run(self) -> PointsToResult:
        function = self.function
        order = function.block_order()
        back = self.gates.back
        budget = self.budget
        for label in order:
            if budget is not None and not self.degraded:
                if not budget.spend_steps(1):
                    self.degraded = True
            block = function.blocks[label]
            heap = self._merge_heaps(label, back)
            for instr in block.instrs:
                if isinstance(instr, cfg.Load):
                    self._do_load(instr, heap)
                elif isinstance(instr, cfg.Store):
                    self._do_store(instr, heap)
                elif isinstance(instr, cfg.Call):
                    self._do_call_models(instr, heap)
            self.heap_out[label] = heap
        # Force points-to computation for every defined variable so the
        # result is complete for clients that inspect sets directly.
        for var in self._defs:
            self.pts(var)
        for param in function.params + function.aux_params:
            self.pts(param)
        self.result.degraded = self.degraded
        return self.result

    def _merge_heaps(self, label: str, back) -> Heap:
        function = self.function
        preds = [
            p
            for p in function.blocks[label].preds
            if (p, label) not in back and p in self.heap_out
        ]
        if not preds:
            return {}
        if len(preds) == 1:
            return dict(self.heap_out[preds[0]])
        # Objects with an entry on at least one incoming path.  For aux
        # objects, a path *without* any entry means the caller-provided
        # initial value survives there; substitute the phantom aux value
        # so the merged state keeps that possibility (e.g. bar() in the
        # paper's Fig. 2, where *q retains X when neither store runs).
        all_objs = set()
        for pred in preds:
            all_objs.update(self.heap_out[pred])
        merged: Dict[MemObject, Dict[cfg.Operand, Term]] = {}
        for pred in preds:
            gate = self.gates.merge_gate(pred, label)
            pred_heap = self.heap_out[pred]
            for obj in all_objs:
                entries = pred_heap.get(obj)
                if not entries:
                    if isinstance(obj, AuxObject) and obj.func == self.function.name:
                        phantom = cfg.Var(aux_param_name(obj.param, obj.depth))
                        entries = ((phantom, T.TRUE),)
                    else:
                        continue
                bucket = merged.setdefault(obj, {})
                for value, cond in entries:
                    combined = self._conj(cond, gate)
                    if combined is None:
                        continue
                    existing = bucket.get(value)
                    bucket[value] = (
                        combined if existing is None else T.or_(existing, combined)
                    )
        return {
            obj: tuple(bucket.items())
            for obj, bucket in merged.items()
            if bucket
        }

    def _do_load(self, instr: cfg.Load, heap: Heap) -> None:
        targets = self._resolve_targets(instr.pointer, instr.depth, heap)
        self.result.load_targets[instr.uid] = targets
        values: Dict[cfg.Operand, Term] = {}
        for obj, cond in targets:
            for value, cond2 in self._contents(obj, heap):
                combined = self._conj(cond, cond2)
                if combined is None:
                    continue
                existing = values.get(value)
                values[value] = combined if existing is None else T.or_(existing, combined)
        self.result.load_values[instr.uid] = list(values.items())

    def _do_call_models(self, instr: cfg.Call, heap: Heap) -> None:
        """Models of standard C library routines that matter for the
        points-to analysis (the paper's §4.2 models memset/memcpy).

        - ``memcpy(dst, src)`` / ``memmove``: the contents reachable from
          ``src`` flow into the objects ``dst`` points to;
        - ``memset(dst, v)``: ``v`` (usually 0) is stored into the
          objects ``dst`` points to.

        Both record Mod/Ref side effects exactly like explicit stores and
        loads, so the connector transformation sees through them.
        """
        callee = instr.callee
        if callee in ("memcpy", "memmove"):
            if len(instr.args) < 2:
                return
            dst, src = instr.args[0], instr.args[1]
            if not isinstance(dst, cfg.Var) or not isinstance(src, cfg.Var):
                return
            values: Dict[cfg.Operand, Term] = {}
            for obj, cond in self._resolve_targets(src, 1, heap):
                for value, cond2 in self._contents(obj, heap):
                    combined = self._conj(cond, cond2)
                    if combined is None:
                        continue
                    existing = values.get(value)
                    values[value] = (
                        combined if existing is None else T.or_(existing, combined)
                    )
            targets = self._resolve_targets(dst, 1, heap)
            for obj, cond in targets:
                if isinstance(obj, AuxObject) and obj.func == self.function.name:
                    self.result.mod.add((obj.param, obj.depth))
                extra = tuple(
                    (value, combined)
                    for value, value_cond in values.items()
                    if (combined := self._conj(cond, value_cond)) is not None
                )
                heap[obj] = heap.get(obj, ()) + extra
        elif callee in ("memset", "bzero"):
            if not instr.args or not isinstance(instr.args[0], cfg.Var):
                return
            dst = instr.args[0]
            fill: cfg.Operand = (
                instr.args[1]
                if len(instr.args) > 1 and callee == "memset"
                else cfg.Const(0)
            )
            targets = self._resolve_targets(dst, 1, heap)
            for obj, _ in targets:
                if isinstance(obj, AuxObject) and obj.func == self.function.name:
                    self.result.mod.add((obj.param, obj.depth))
            if len(targets) == 1 and targets[0][1] is T.TRUE:
                heap[targets[0][0]] = ((fill, T.TRUE),)
            else:
                for obj, cond in targets:
                    heap[obj] = heap.get(obj, ()) + ((fill, cond),)

    def _do_store(self, instr: cfg.Store, heap: Heap) -> None:
        targets = self._resolve_targets(instr.pointer, instr.depth, heap)
        self.result.store_targets[instr.uid] = targets
        for obj, _ in targets:
            if isinstance(obj, AuxObject) and obj.func == self.function.name:
                self.result.mod.add((obj.param, obj.depth))
        if len(targets) == 1 and targets[0][1] is T.TRUE:
            # Strong update: the single unconditional target's old
            # contents are definitely overwritten.
            self.result.strong_updates += 1
            heap[targets[0][0]] = ((instr.value, T.TRUE),)
            return
        proof = self.flow.proofs.get(instr.uid) if self.flow is not None else None
        if (
            proof is not None
            and targets
            and all(obj == proof.obj for obj, _ in targets)
        ):
            # Flow-sensitive strong update: the sparse pass proved the
            # pointer must-aliases this single singular cell, so the
            # conditional/duplicated target entries all denote one
            # overwritten location.
            self.result.strong_updates += 1
            self.result.strong_uids = self.result.strong_uids + (instr.uid,)
            heap[proof.obj] = ((instr.value, T.TRUE),)
            return
        if targets:
            self.result.weak_updates += 1
        for obj, cond in targets:
            heap[obj] = heap.get(obj, ()) + ((instr.value, cond),)


def analyze(function: cfg.Function, linear: Optional[LinearSolver] = None) -> PointsToResult:
    """Convenience wrapper: run the local analysis on an SSA function."""
    return PointsToAnalysis(function, linear=linear).run()
