"""Abstract memory objects.

The analyses use an allocation-site abstraction:

- :class:`AllocObject` — one abstract object per ``malloc`` site
  (identified by the Malloc instruction's uid);
- :class:`AuxObject` — the non-local memory location reached by
  dereferencing a formal parameter ``depth`` times, ``*(p, depth)``.
  These are the locations the connector model (Section 3.1.2) exposes
  through Aux formal parameters and Aux return values.

Arrays and unions collapse into their object (paper Section 4.2), so each
object has a single content cell per dereference level.
"""

from __future__ import annotations


class MemObject:
    """Base class for abstract memory objects."""

    __slots__ = ()


class AllocObject(MemObject):
    __slots__ = ("site", "line")

    def __init__(self, site: int, line: int = 0) -> None:
        self.site = site
        self.line = line

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AllocObject) and other.site == self.site

    def __hash__(self) -> int:
        return hash(("alloc", self.site))

    def __repr__(self) -> str:
        return f"heap@{self.site}"


class AuxObject(MemObject):
    """The object ``*(param, depth)`` of function ``func``.

    ``param`` is the parameter's base name (SSA version stripped) so the
    object's identity is stable across the transformation passes.
    """

    __slots__ = ("func", "param", "depth")

    def __init__(self, func: str, param: str, depth: int) -> None:
        self.func = func
        self.param = param
        self.depth = depth

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AuxObject)
            and other.func == self.func
            and other.param == self.param
            and other.depth == self.depth
        )

    def __hash__(self) -> int:
        return hash(("aux", self.func, self.param, self.depth))

    def __repr__(self) -> str:
        return f"{self.func}:{'*' * self.depth}{self.param}"


def aux_param_name(param: str, depth: int) -> str:
    """Variable name of the Aux formal parameter for ``*(param, depth)``.

    These are the ``X`` connectors of Fig. 2: ``F$q$1`` carries the value
    of ``*q`` into the function.
    """
    return f"F${param}${depth}"


def aux_return_name(param: str, depth: int) -> str:
    """Variable name of the Aux return value for ``*(param, depth)`` —
    the ``Y`` connectors of Fig. 2."""
    return f"R${param}${depth}"


def parse_aux_param(name: str):
    """Inverse of :func:`aux_param_name`; returns (param, depth) or None.

    Accepts SSA-versioned names (``F$q$1.0``).
    """
    base = name.split(".")[0] if "." in name and name.rsplit(".", 1)[1].isdigit() else name
    if not base.startswith("F$"):
        return None
    try:
        _, param, depth = base.split("$")
        return param, int(depth)
    except ValueError:
        return None
