"""Abstract memory objects.

The analyses use an allocation-site abstraction:

- :class:`AllocObject` — one abstract object per ``malloc`` site
  (identified by the Malloc instruction's uid);
- :class:`AuxObject` — the non-local memory location reached by
  dereferencing a formal parameter ``depth`` times, ``*(p, depth)``.
  These are the locations the connector model (Section 3.1.2) exposes
  through Aux formal parameters and Aux return values.

Arrays and unions collapse into their object (paper Section 4.2), so each
object has a single content cell per dereference level.

This module also hosts the *must-alias lattice* used by the
flow-sensitive precision tier (:mod:`repro.pta.flowsense`):
``MustAlias.bottom()`` (no pointee seen yet) / ``singleton(o)`` (the
pointer definitely designates exactly ``o``) / ``top()`` (unknown — any
object).  A store may be strong-updated only when the pointer's lattice
value is a singleton over a *singular* object (one concrete cell).
"""

from __future__ import annotations

from typing import Optional, Tuple


class MemObject:
    """Base class for abstract memory objects."""

    __slots__ = ()

    def sort_key(self) -> Tuple:
        """Total, process-independent order over memory objects.

        Python's default set iteration order depends on string hash
        randomization (``PYTHONHASHSEED``); every solver loop that
        iterates points-to sets sorts by this key so fixpoint iteration
        — and everything downstream of it — is byte-identical across
        processes and runs."""
        raise NotImplementedError


class AllocObject(MemObject):
    __slots__ = ("site", "line")

    def __init__(self, site: int, line: int = 0) -> None:
        self.site = site
        self.line = line

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AllocObject) and other.site == self.site

    def __hash__(self) -> int:
        return hash(("alloc", self.site))

    def sort_key(self) -> Tuple:
        return ("alloc", self.site, "", 0)

    def __repr__(self) -> str:
        return f"heap@{self.site}"


class AuxObject(MemObject):
    """The object ``*(param, depth)`` of function ``func``.

    ``param`` is the parameter's base name (SSA version stripped) so the
    object's identity is stable across the transformation passes.
    """

    __slots__ = ("func", "param", "depth")

    def __init__(self, func: str, param: str, depth: int) -> None:
        self.func = func
        self.param = param
        self.depth = depth

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AuxObject)
            and other.func == self.func
            and other.param == self.param
            and other.depth == self.depth
        )

    def __hash__(self) -> int:
        return hash(("aux", self.func, self.param, self.depth))

    def sort_key(self) -> Tuple:
        return ("aux", 0, f"{self.func}\x00{self.param}", self.depth)

    def __repr__(self) -> str:
        return f"{self.func}:{'*' * self.depth}{self.param}"


class MustAlias:
    """Value of the must-alias lattice: ⊥ ⊑ singleton(o) ⊑ ⊤.

    - ``bottom`` — no pointee observed yet (the identity of ``join``);
    - ``singleton(o)`` — the pointer designates exactly the abstract
      object ``o`` on every path (and nothing else);
    - ``top`` — unknown: more than one object, a loop-carried cycle, a
      value read from memory the sparse pass does not track, or a
      points-to depth past the modeled maximum.

    Joining two different singletons yields ⊤ (the pointer *may* alias
    either, so neither is a must-alias).  Instances are immutable.
    """

    __slots__ = ("obj", "is_top")

    def __init__(self, obj: Optional[MemObject] = None, is_top: bool = False) -> None:
        self.obj = obj
        self.is_top = is_top

    @classmethod
    def bottom(cls) -> "MustAlias":
        return cls()

    @classmethod
    def singleton(cls, obj: MemObject) -> "MustAlias":
        return cls(obj=obj)

    @classmethod
    def top(cls) -> "MustAlias":
        return cls(is_top=True)

    @property
    def is_bottom(self) -> bool:
        return self.obj is None and not self.is_top

    @property
    def is_singleton(self) -> bool:
        return self.obj is not None and not self.is_top

    def join(self, other: "MustAlias") -> "MustAlias":
        if self.is_top or other.is_top:
            return MustAlias.top()
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        if self.obj == other.obj:
            return self
        return MustAlias.top()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MustAlias)
            and other.is_top == self.is_top
            and other.obj == self.obj
        )

    def __hash__(self) -> int:
        return hash(("must", self.obj, self.is_top))

    def __repr__(self) -> str:
        if self.is_top:
            return "must:⊤"
        if self.obj is None:
            return "must:⊥"
        return f"must:{self.obj!r}"


def aux_param_name(param: str, depth: int) -> str:
    """Variable name of the Aux formal parameter for ``*(param, depth)``.

    These are the ``X`` connectors of Fig. 2: ``F$q$1`` carries the value
    of ``*q`` into the function.
    """
    return f"F${param}${depth}"


def aux_return_name(param: str, depth: int) -> str:
    """Variable name of the Aux return value for ``*(param, depth)`` —
    the ``Y`` connectors of Fig. 2."""
    return f"R${param}${depth}"


def parse_aux_param(name: str):
    """Inverse of :func:`aux_param_name`; returns (param, depth) or None.

    Accepts SSA-versioned names (``F$q$1.0``).
    """
    base = name.split(".")[0] if "." in name and name.rsplit(".", 1)[1].isdigit() else name
    if not base.startswith("F$"):
        return None
    try:
        _, param, depth = base.split("$")
        return param, int(depth)
    except ValueError:
        return None
