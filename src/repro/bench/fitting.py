"""Least-squares curve fitting with R² (paper Fig. 10).

The paper uses curve fitting [42] to show Pinpoint's time and memory grow
almost linearly with program size (R² > 0.9 for linear fits).  We provide
linear (``y = a*x + b``) and power-law (``y = a * x^k``, fitted in log
space) models; no SciPy dependency is required, though the benches may
cross-check with numpy when available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class FitResult:
    model: str
    coefficients: Tuple[float, ...]
    r_squared: float

    def predict(self, x: float) -> float:
        if self.model == "linear":
            a, b = self.coefficients
            return a * x + b
        if self.model == "power":
            a, k = self.coefficients
            return a * (x**k)
        raise ValueError(self.model)

    def describe(self) -> str:
        if self.model == "linear":
            a, b = self.coefficients
            return f"y = {a:.4g}*x + {b:.4g} (R^2 = {self.r_squared:.3f})"
        a, k = self.coefficients
        return f"y = {a:.4g}*x^{k:.3f} (R^2 = {self.r_squared:.3f})"


def _r_squared(ys: Sequence[float], predictions: Sequence[float]) -> float:
    mean = sum(ys) / len(ys)
    ss_total = sum((y - mean) ** 2 for y in ys)
    ss_residual = sum((y - p) ** 2 for y, p in zip(ys, predictions))
    if ss_total == 0:
        return 1.0
    return 1.0 - ss_residual / ss_total


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Ordinary least squares y = a*x + b."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    a = sxy / sxx if sxx else 0.0
    b = mean_y - a * mean_x
    predictions = [a * x + b for x in xs]
    return FitResult("linear", (a, b), _r_squared(ys, predictions))


def fit_power(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Power law y = a * x^k via linear regression in log-log space.

    The exponent ``k`` directly measures observed complexity: k ≈ 1 is
    the paper's "almost linear", k ≈ 2 is the layered baseline's
    quadratic SVFG blow-up.
    """
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        raise ValueError("need at least two positive points")
    log_x = [math.log(x) for x, _ in pairs]
    log_y = [math.log(y) for _, y in pairs]
    inner = fit_linear(log_x, log_y)
    k, log_a = inner.coefficients
    a = math.exp(log_a)
    predictions = [a * (x**k) for x, _ in pairs]
    r2 = _r_squared([y for _, y in pairs], predictions)
    return FitResult("power", (a, k), r2)
