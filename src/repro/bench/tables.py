"""Plain-text table rendering for bench output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table (first column left-, rest right-aligned)."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            width = widths[index]
            parts.append(cell.ljust(width) if index == 0 else cell.rjust(width))
        return "  ".join(parts)

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in materialized)
    return "\n".join(lines)
