"""Time and memory measurement for the benchmark harness.

The implementation lives in :mod:`repro.obs.measure` (the unified
instrumentation layer) so benchmarks, ``repro profile`` and tests all
share one nesting-safe measurement mechanism; this module re-exports it
under the historical import path.
"""

from __future__ import annotations

from repro.obs.measure import Measurement, measure, time_only

__all__ = ["Measurement", "measure", "time_only"]
