"""Time and memory measurement for the benchmark harness."""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Measurement:
    seconds: float
    peak_bytes: int

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / (1024 * 1024)


def measure(thunk: Callable[[], T]) -> Tuple[T, Measurement]:
    """Run ``thunk`` measuring wall time and peak additional memory.

    Peak memory is tracemalloc's high-water mark over the call — the same
    "how much memory does building this graph take" question Figs. 8-9
    ask.  tracemalloc adds overhead, so time and memory comparisons stay
    apples-to-apples as long as both systems are measured this way.
    """
    gc.collect()
    tracemalloc.start()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    result = thunk()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, Measurement(seconds, peak)


def time_only(thunk: Callable[[], T]) -> Tuple[T, float]:
    """Run ``thunk`` measuring wall time only (no tracemalloc overhead)."""
    gc.collect()
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start
