"""Benchmark harness utilities.

- :mod:`repro.bench.metrics` — wall-clock and peak-memory measurement
  (tracemalloc) for the Figs. 7-9 comparisons;
- :mod:`repro.bench.fitting` — least-squares curve fitting with R², for
  the Fig. 10 scalability study;
- :mod:`repro.bench.tables` — plain-text table rendering so every bench
  prints rows in the shape the paper reports.
"""

from repro.bench.metrics import Measurement, measure
from repro.bench.fitting import FitResult, fit_linear, fit_power
from repro.bench.tables import render_table

__all__ = [
    "FitResult",
    "Measurement",
    "fit_linear",
    "fit_power",
    "measure",
    "render_table",
]
