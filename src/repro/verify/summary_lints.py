"""Summary lints: interface hygiene for RV/VF summaries (§3.3.2).

A summary is a function's externally visible contract, so everything in
it must be phrased over the function's *interface*: constraints may
mention formal parameters (original + Aux) only, slots must index real
interface positions, and recorded paths must visit vertices of the
function's current SEG — a path over vertices the SEG does not contain
is the signature of a stale or corrupted summary cache.

These are lints (severity ``warning``): a violating summary makes the
analysis imprecise or stale, not undefined, so the function is not
quarantined.
"""

from __future__ import annotations

from typing import List

from repro.core.summaries import (
    FunctionSummaries,
    interface_params,
    return_slots,
)
from repro.ir.ssa import base_name
from repro.verify.violation import Violation


def lint_summaries(summaries: FunctionSummaries, pf) -> List[Violation]:
    """Check one function's summaries against its PinpointFunction
    (current SEG + prepared artifacts)."""
    function = pf.prepared.function
    unit = summaries.function
    violations: List[Violation] = []
    interface = set(interface_params(function))
    # Constraints are phrased over SSA names; accept any version of an
    # interface value (the paper's P sets are per-value, not per-version).
    interface_bases = {base_name(name) for name in interface}
    param_count = len(interface)
    slot_count = len(return_slots(function))
    seg_vertices = pf.seg.vertices

    def check_constraint(kind: str, constraint) -> None:
        foreign = {
            name
            for name in constraint.params
            if name not in interface and base_name(name) not in interface_bases
        }
        if foreign:
            violations.append(
                Violation(
                    "summary-interface",
                    unit,
                    f"{kind} constraint depends on non-interface "
                    f"value(s) {sorted(foreign)}",
                )
            )

    for slot, rv in summaries.rv.items():
        if not 0 <= slot < max(slot_count, 1):
            violations.append(
                Violation(
                    "summary-slot",
                    unit,
                    f"RV summary for return slot {slot} of a function "
                    f"with {slot_count} slot(s)",
                )
            )
        check_constraint("RV", rv.constraint)

    for kind in ("vf1", "vf2", "vf3", "vf4"):
        for summary in getattr(summaries, kind):
            label = kind.upper()
            check_constraint(label, summary.constraint)
            if summary.param_slot is not None and not (
                0 <= summary.param_slot < param_count
            ):
                violations.append(
                    Violation(
                        "summary-slot",
                        unit,
                        f"{label} summary starts at parameter slot "
                        f"{summary.param_slot} of {param_count}",
                    )
                )
            if summary.ret_slot is not None and not (
                0 <= summary.ret_slot < max(slot_count, 1)
            ):
                violations.append(
                    Violation(
                        "summary-slot",
                        unit,
                        f"{label} summary ends at return slot "
                        f"{summary.ret_slot} of {slot_count}",
                    )
                )
            stale = [key for key in summary.path if key not in seg_vertices]
            if stale:
                violations.append(
                    Violation(
                        "summary-coherence",
                        unit,
                        f"{label} summary path visits {len(stale)} "
                        f"vertex(es) absent from the current SEG, "
                        f"e.g. {stale[0]}",
                    )
                )
    return violations
