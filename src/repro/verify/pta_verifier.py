"""Verifier for the fs precision tier (``--pta=fs``).

Two invariants tie the sparse flow-sensitive pass to the local analysis
it refines:

- ``pta-strong-update-proof`` — a flow-sensitive strong update is an
  *erasure* of heap facts, so every one must be justified: the store's
  uid names a :class:`~repro.pta.flowsense.MustAliasProof`, the proof's
  object is the store's only resolved target, and that object is
  singular (an allocation site outside every CFG cycle, or an aux
  object — one concrete cell either way).  An unjustified strong update
  would silently drop a reachable value flow: unsound, not imprecise.

- ``pta-tier-subset`` — the fs tier is the fi computation plus kills,
  nothing else, so on the same function the fs points-to sets and
  load-value sets must be subsets of the fi ones.  A fact present under
  fs but absent under fi means the tiers diverged somewhere other than
  strong updates (a bug in proof plumbing, uid scoping, or caching).

Both checks are skipped when either side ran degraded (a budget that
collapses conditions to TRUE merges value sets unpredictably), matching
the rest of the verifier's "only judge full-precision artifacts" policy.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.pta.memory import AllocObject, AuxObject
from repro.verify.violation import Violation


def _lines_by_uid(function) -> Dict[int, int]:
    return {instr.uid: instr.line for instr in function.all_instrs()}


def verify_flow_tier(fs_prepared, fi_prepared) -> List[Violation]:
    """Check the fs-tier invariants of one escalated function against
    its fi-tier preparation; both must come from the same AST."""
    violations: List[Violation] = []
    fs_pta = fs_prepared.points_to
    fi_pta = fi_prepared.points_to
    name = fs_prepared.name
    flow = fs_prepared.flow
    lines = _lines_by_uid(fs_prepared.function)

    # ---------------------------------------------- strong-update proofs
    cyclic = set(flow.cyclic_alloc_sites) if flow is not None else set()
    for uid in fs_pta.strong_uids:
        line = lines.get(uid, 0)
        proof = flow.proofs.get(uid) if flow is not None else None
        if proof is None:
            violations.append(
                Violation(
                    "pta-strong-update-proof",
                    name,
                    f"store uid {uid} was strong-updated without a "
                    "must-alias proof",
                    line=line,
                )
            )
            continue
        targets = {obj for obj, _ in fs_pta.store_targets.get(uid, ())}
        if targets != {proof.obj}:
            violations.append(
                Violation(
                    "pta-strong-update-proof",
                    name,
                    f"store uid {uid}: proof names {proof.obj!r} but the "
                    f"resolved targets are {sorted(map(repr, targets))}",
                    line=line,
                )
            )
        if isinstance(proof.obj, AllocObject):
            if proof.obj.site in cyclic:
                violations.append(
                    Violation(
                        "pta-strong-update-proof",
                        name,
                        f"store uid {uid}: {proof.obj!r} is allocated on "
                        "a CFG cycle (one abstract object, many cells) — "
                        "not singular",
                        line=line,
                    )
                )
        elif not isinstance(proof.obj, AuxObject):
            violations.append(
                Violation(
                    "pta-strong-update-proof",
                    name,
                    f"store uid {uid}: {proof.obj!r} is neither an "
                    "allocation site nor an aux object",
                    line=line,
                )
            )

    # ---------------------------------------------- fs ⊆ fi subset
    if fs_pta.degraded or fi_pta.degraded:
        return violations  # degraded conditions make set comparison moot
    for var, fs_entries in fs_pta.points_to.items():
        fs_objs: Set = {obj for obj, _ in fs_entries}
        fi_objs: Set = {obj for obj, _ in fi_pta.points_to.get(var, ())}
        extra = fs_objs - fi_objs
        if extra:
            violations.append(
                Violation(
                    "pta-tier-subset",
                    name,
                    f"points-to of {var!r} gained {sorted(map(repr, extra))} "
                    "under fs (the precise tier may only remove facts)",
                )
            )
    for uid, fs_values in fs_pta.load_values.items():
        fs_set = {repr(value) for value, _ in fs_values}
        fi_set = {repr(value) for value, _ in fi_pta.load_values.get(uid, ())}
        extra = fs_set - fi_set
        if extra:
            violations.append(
                Violation(
                    "pta-tier-subset",
                    name,
                    f"load uid {uid} gained values {sorted(extra)} under fs",
                    line=lines.get(uid, 0),
                )
            )
    return violations
