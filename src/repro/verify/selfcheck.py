"""Differential sanitizer harness (``repro selfcheck``).

For each seed, generate a synthetic program with known ground truth, run
the static engine with the verifier on, and cross-check three ways:

1. **soundness** — every seeded ``true-*`` defect must be reported
   (recall 1.0 per kind);
2. **precision** — the ``fp-trap``/``svf-trap`` safe twins must draw no
   report at the default configuration (loop-pattern FPs are the
   paper's own documented soundiness cost and are tolerated);
3. **differential oracle** — the :mod:`repro.lang.interp` interpreter
   executes each seeded function concretely: a "true bug" that never
   trips the dynamic checker, or a "safe twin" that does, means the
   *labels themselves* are wrong — the static result is then being
   judged against a broken ground truth, which is a selfcheck failure
   in its own right.

Verifier violations during the run count as failures too: a selfcheck
that passes while the IR/SEG invariants are broken proves nothing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.engine import EngineConfig, Pinpoint
from repro.lang.interp import Interpreter, MemoryError_, StepLimitExceeded
from repro.lang.parser import parse_program
from repro.robust.diagnostics import STAGE_VERIFY
from repro.synth.generator import (
    GeneratorConfig,
    TRAP_KINDS,
    TRUE_KINDS,
    classify_reports,
    generate_program,
    split_false_positives,
)

# Inputs exercising both arms of every trap's ``c > K`` guard
# (K is drawn from small ranges; 0 falls below, 100 above).
_TRAP_INPUTS = (0, 100)
_TRUE_INPUT = 1


@dataclass
class SeedOutcome:
    """Everything selfcheck learned from one seed."""

    seed: int
    lines: int
    total_by_kind: Dict[str, int] = field(default_factory=dict)
    found_by_kind: Dict[str, int] = field(default_factory=dict)
    missed: List[str] = field(default_factory=list)  # "kind:function"
    trap_reports: List[str] = field(default_factory=list)
    range_trap_reports: List[str] = field(default_factory=list)
    other_false_positives: List[str] = field(default_factory=list)
    expected_loop_fps: int = 0
    verify_violations: int = 0
    oracle_disagreements: List[str] = field(default_factory=list)
    reports: int = 0

    @property
    def ok(self) -> bool:
        return not (
            self.missed
            or self.trap_reports
            or self.verify_violations
            or self.oracle_disagreements
        )

    def as_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["ok"] = self.ok
        return data


@dataclass
class SelfCheckReport:
    """Aggregated selfcheck results over a seed corpus."""

    checker: str
    mode: str
    oracle: bool
    outcomes: List[SeedOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    def recall_by_kind(self) -> Dict[str, float]:
        totals: Dict[str, int] = {}
        founds: Dict[str, int] = {}
        for outcome in self.outcomes:
            for kind, count in outcome.total_by_kind.items():
                totals[kind] = totals.get(kind, 0) + count
                founds[kind] = founds.get(kind, 0) + outcome.found_by_kind.get(
                    kind, 0
                )
        return {
            kind: (founds[kind] / total if total else 1.0)
            for kind, total in sorted(totals.items())
        }

    def as_dict(self) -> dict:
        return {
            "checker": self.checker,
            "mode": self.mode,
            "oracle": self.oracle,
            "ok": self.ok,
            "recall_by_kind": self.recall_by_kind(),
            "trap_reports": sum(len(o.trap_reports) for o in self.outcomes),
            "range_trap_reports": sum(
                len(o.range_trap_reports) for o in self.outcomes
            ),
            "other_false_positives": sum(
                len(o.other_false_positives) for o in self.outcomes
            ),
            "verify_violations": sum(o.verify_violations for o in self.outcomes),
            "oracle_disagreements": sum(
                len(o.oracle_disagreements) for o in self.outcomes
            ),
            "seeds": [o.as_dict() for o in self.outcomes],
        }


def _oracle_check(program_source: str, truths) -> List[str]:
    """Run the dynamic oracle over every seeded defect/trap; return the
    list of label disagreements."""
    disagreements: List[str] = []
    ast_program = parse_program(program_source)
    arity = {f.name: len(f.params) for f in ast_program.functions}

    def run(entry: str, value: int) -> Optional[List[MemoryError_]]:
        interp = Interpreter(ast_program, halt_on_violation=True)
        try:
            interp.call(entry, *([value] * arity.get(entry, 0)))
        except MemoryError_:
            pass  # recorded in interp.violations
        except StepLimitExceeded:
            return None  # treated as "no verdict", not a disagreement
        return interp.violations

    for truth in truths:
        entry = truth.functions[-1]  # the *_main driver of the cluster
        if truth.kind in TRUE_KINDS:
            violations = run(entry, _TRUE_INPUT)
            if violations is not None and not any(
                v.kind == "use-after-free" for v in violations
            ):
                disagreements.append(f"oracle-silent:{truth.kind}:{entry}")
        elif truth.kind in TRAP_KINDS:
            for value in _TRAP_INPUTS:
                violations = run(entry, value)
                if violations:
                    disagreements.append(
                        f"oracle-violation:{truth.kind}:{entry}"
                        f"@c={value}:{violations[0].kind}"
                    )
    return disagreements


def run_selfcheck(
    seeds,
    lines: int = 400,
    mode: str = "full",
    oracle: bool = True,
    checker: Optional[object] = None,
    config: Optional[EngineConfig] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> SelfCheckReport:
    """Run the differential harness over ``seeds``; never raises for a
    failing seed — failures are encoded in the returned report."""
    from repro.core.checkers.use_after_free import UseAfterFreeChecker

    report = SelfCheckReport(
        checker=getattr(checker, "name", "use-after-free"),
        mode=mode,
        oracle=oracle,
    )
    for seed in seeds:
        program = generate_program(
            GeneratorConfig(seed=seed, target_lines=lines)
        )
        truths = program.ground_truth
        run_config = config or EngineConfig()
        run_config = dataclasses.replace(run_config, verify=mode)
        engine = Pinpoint.from_source(
            program.source, run_config, jobs=jobs, cache_dir=cache_dir
        )
        result = engine.check(checker or UseAfterFreeChecker())

        outcome = SeedOutcome(seed=seed, lines=lines)
        outcome.reports = len(result.reports)
        outcome.verify_violations = sum(
            1 for d in result.diagnostics if d.stage == STAGE_VERIFY
        )

        for truth in truths:
            if truth.kind in TRUE_KINDS:
                outcome.total_by_kind[truth.kind] = (
                    outcome.total_by_kind.get(truth.kind, 0) + 1
                )
        _, false_positives, missed = classify_reports(result.reports, truths)
        for truth in missed:
            outcome.missed.append(f"{truth.kind}:{truth.functions[-1]}")
        for kind, total in outcome.total_by_kind.items():
            missed_of_kind = sum(
                1 for entry in outcome.missed if entry.startswith(f"{kind}:")
            )
            outcome.found_by_kind[kind] = total - missed_of_kind

        expected, unexpected = split_false_positives(false_positives, truths)
        outcome.expected_loop_fps = len(expected)
        trap_kind_of = {
            name: truth.kind
            for truth in truths
            if truth.kind in TRAP_KINDS
            for name in truth.functions
        }
        for fp in unexpected:
            kind = trap_kind_of.get(fp.sink.function) or trap_kind_of.get(
                fp.source.function
            )
            label = f"{kind or 'none'}:{fp.sink.function}"
            if kind in ("fp-trap", "svf-trap"):
                outcome.trap_reports.append(label)
            elif kind == "range-trap":
                outcome.range_trap_reports.append(label)
            else:
                outcome.other_false_positives.append(label)

        if oracle:
            outcome.oracle_disagreements = _oracle_check(
                program.source, truths
            )
        report.outcomes.append(outcome)
    return report


def parse_seed_spec(spec: str) -> List[int]:
    """Parse a seed spec: comma-separated integers and inclusive
    ``a..b`` ranges, e.g. ``0..19`` or ``1,4,10..12``."""
    seeds: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ".." in part:
            lo_text, hi_text = part.split("..", 1)
            lo, hi = int(lo_text), int(hi_text)
            if hi < lo:
                raise ValueError(f"empty seed range {part!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in spec {spec!r}")
    return seeds
