"""SEG verifier: well-formedness per the paper's Definition 3.2.

Checks one function's symbolic expression graph against the IR it was
built from: every edge connects registered vertices and is indexed both
ways, def/use vertices resolve to real definitions and operand uses,
control-dependence gates name actual branch conditions, and the Aux
formal/return lists pair exactly with the connector signature the
``transform`` stage produced (Fig. 3).

:func:`verify_call_interfaces` is the module-wide companion: it checks
that every call site to a defined callee carries one extra receiver per
callee Aux return (recursive, same-SCC calls legitimately stay
untransformed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir import cfg
from repro.ir.ssa import base_name
from repro.pta.memory import aux_param_name, aux_return_name
from repro.seg.graph import SEG
from repro.verify.ir_verifier import instr_defs
from repro.verify.violation import Violation


def verify_seg(seg: SEG, prepared) -> List[Violation]:
    """Check one function's SEG; ``prepared`` is its PreparedFunction."""
    function: cfg.Function = prepared.function
    unit = function.name
    violations: List[Violation] = []

    # ----------------------------- seg-dangling-edge / seg-index-symmetry
    # Edges with an unregistered endpoint are reported as dangling and
    # excluded from the symmetry comparison (they are already broken;
    # double-reporting would mask the root cause).
    def well_formed_edges(index: Dict) -> Set[int]:
        ids = set()
        for key, edges in index.items():
            for edge in edges:
                if edge.src not in seg.vertices or edge.dst not in seg.vertices:
                    violations.append(
                        Violation(
                            "seg-dangling-edge",
                            unit,
                            f"edge {edge.src} -> {edge.dst} has an "
                            "unregistered endpoint",
                        )
                    )
                else:
                    ids.add(id(edge))
        return ids

    out_ids = well_formed_edges(seg.out_edges)
    in_ids = well_formed_edges(seg.in_edges)
    if out_ids != in_ids:
        only_out = len(out_ids - in_ids)
        only_in = len(in_ids - out_ids)
        violations.append(
            Violation(
                "seg-index-symmetry",
                unit,
                f"{only_out} edge(s) missing from the in-index, "
                f"{only_in} missing from the out-index",
            )
        )
    # An edge filed under the wrong key is also an index corruption.
    for src, edges in seg.out_edges.items():
        for edge in edges:
            if edge.src != src:
                violations.append(
                    Violation(
                        "seg-index-symmetry",
                        unit,
                        f"edge {edge.src} -> {edge.dst} filed under "
                        f"out-key {src}",
                    )
                )
    for dst, edges in seg.in_edges.items():
        for edge in edges:
            if edge.dst != dst:
                violations.append(
                    Violation(
                        "seg-index-symmetry",
                        unit,
                        f"edge {edge.src} -> {edge.dst} filed under "
                        f"in-key {dst}",
                    )
                )

    # ------------------------------ seg-def-unresolved / seg-use-anchor
    defined: Set[str] = set(function.params) | set(function.aux_params)
    for instr in _iter_instrs(function):
        defined.update(instr_defs(instr))
    for key in seg.vertices:
        kind = key[0]
        if kind == "def":
            name = key[1]
            # Bare names are source-level undefined variables and
            # ``x.undef`` marks definition-free phi paths; both are
            # deliberate free values, not graph corruption.
            if name in defined or "." not in name or name.endswith(".undef"):
                continue
            violations.append(
                Violation(
                    "seg-def-unresolved",
                    unit,
                    f"def vertex names unknown SSA variable {name!r}",
                )
            )
        elif kind == "use":
            name, uid = key[1], key[2]
            instr = seg.instr_by_uid.get(uid)
            if instr is None:
                violations.append(
                    Violation(
                        "seg-use-anchor",
                        unit,
                        f"use vertex {name!r} anchored at unknown "
                        f"statement uid {uid}",
                    )
                )
            elif name not in instr.used_vars():
                violations.append(
                    Violation(
                        "seg-use-anchor",
                        unit,
                        f"use vertex {name!r} anchored at {instr!r}, "
                        "which does not read it",
                        line=instr.line,
                    )
                )
        elif kind in ("const", "op"):
            uid = key[-1]
            if uid not in seg.instr_by_uid:
                violations.append(
                    Violation(
                        "seg-use-anchor",
                        unit,
                        f"{kind} vertex anchored at unknown statement "
                        f"uid {uid}",
                    )
                )

    # -------------------------------------------------- seg-gate-condition
    branch_conds: Set[str] = set()
    for block in function.blocks.values():
        term = block.terminator
        if isinstance(term, cfg.Branch) and isinstance(term.cond, cfg.Var):
            branch_conds.add(term.cond.name)
    for uid, controls in seg.control.items():
        if uid not in seg.instr_by_uid:
            violations.append(
                Violation(
                    "seg-gate-condition",
                    unit,
                    f"control entry for unknown statement uid {uid}",
                )
            )
        for cond_var, _taken in controls:
            if cond_var not in branch_conds:
                violations.append(
                    Violation(
                        "seg-gate-condition",
                        unit,
                        f"gate references {cond_var!r}, which is not the "
                        "condition of any Branch",
                    )
                )

    violations.extend(_verify_aux_pairing(function, prepared.signature))
    return violations


def _verify_aux_pairing(function: cfg.Function, signature) -> List[Violation]:
    """The connector model's Fig. 3 contract between the transformed
    function body and its advertised signature."""
    unit = function.name
    violations: List[Violation] = []
    if len(function.aux_params) != len(signature.aux_params):
        violations.append(
            Violation(
                "aux-pairing",
                unit,
                f"{len(function.aux_params)} Aux formal(s) vs "
                f"{len(signature.aux_params)} in the signature",
            )
        )
    else:
        for ssa_name, (param, depth) in zip(
            function.aux_params, signature.aux_params
        ):
            expected = aux_param_name(param, depth)
            if base_name(ssa_name) != expected:
                violations.append(
                    Violation(
                        "aux-pairing",
                        unit,
                        f"Aux formal {ssa_name!r} does not match the "
                        f"signature's {expected!r}",
                    )
                )
    if len(function.aux_returns) != len(signature.aux_returns):
        violations.append(
            Violation(
                "aux-pairing",
                unit,
                f"{len(function.aux_returns)} Aux return(s) vs "
                f"{len(signature.aux_returns)} in the signature",
            )
        )
    else:
        for name, (param, depth) in zip(
            function.aux_returns, signature.aux_returns
        ):
            expected = aux_return_name(param, depth)
            if base_name(name) != expected:
                violations.append(
                    Violation(
                        "aux-pairing",
                        unit,
                        f"Aux return {name!r} does not match the "
                        f"signature's {expected!r}",
                    )
                )
    for ret in function.return_instrs():
        if len(ret.extra_values) != len(function.aux_returns):
            violations.append(
                Violation(
                    "aux-pairing",
                    unit,
                    f"return carries {len(ret.extra_values)} extra "
                    f"value(s) for {len(function.aux_returns)} Aux "
                    "return(s)",
                    line=ret.line,
                )
            )
    return violations


def verify_call_interfaces(module) -> List[Violation]:
    """Module-wide Aux pairing at call sites (``full`` mode only).

    A call to a defined callee outside the caller's SCC must carry one
    extra receiver per callee Aux return; same-SCC calls are expected to
    stay untransformed (the paper unrolls call-graph cycles once).  With
    no call graph available, only transformed calls are checked.
    """
    violations: List[Violation] = []
    scc_of: Dict[str, int] = {}
    if module.callgraph is not None:
        for index, scc in enumerate(module.callgraph.sccs()):
            for member in scc:
                scc_of[member] = index
    for prepared in module:
        caller = prepared.name
        for instr in _iter_instrs(prepared.function):
            if not isinstance(instr, cfg.Call) or instr.callee not in module:
                continue
            callee_sig = module[instr.callee].signature
            expected = len(callee_sig.aux_returns)
            got = len(instr.extra_receivers)
            same_scc = (
                scc_of.get(caller) is not None
                and scc_of.get(caller) == scc_of.get(instr.callee)
            )
            if same_scc or (not scc_of and got == 0):
                # Untransformed by design (or indistinguishable from it
                # without a call graph).
                if got != 0:
                    violations.append(
                        Violation(
                            "call-aux-pairing",
                            caller,
                            f"same-SCC call to {instr.callee!r} carries "
                            f"{got} extra receiver(s); expected none",
                            line=instr.line,
                        )
                    )
                continue
            if got != expected:
                violations.append(
                    Violation(
                        "call-aux-pairing",
                        caller,
                        f"call to {instr.callee!r} carries {got} extra "
                        f"receiver(s) for {expected} Aux return(s)",
                        line=instr.line,
                    )
                )
    return violations


def _iter_instrs(function: cfg.Function):
    """All instructions, unreachable blocks included, without assuming a
    well-formed CFG (``block_order`` would)."""
    for block in function.blocks.values():
        yield from block.all_instrs()
