"""Self-verification layer: machine-checked structural invariants.

The analysis rests on invariants the paper states but code can silently
break: SSA form and dominance (§3.1), SEG well-formedness (Def. 3.2),
connector Aux pairing (Fig. 3), and summary interface hygiene (§3.3.2).
This package checks them the way LLVM's ``-verify`` and the sanitizers
do for compilers — structurally after each pipeline stage, and
differentially against a dynamic oracle (:mod:`repro.verify.selfcheck`).

Modes (``--verify`` / the ``REPRO_VERIFY`` environment variable):

- ``off``  — no checking (the default);
- ``fast`` — per-function IR + SEG verification after preparation and
  SEG construction;
- ``full`` — ``fast`` plus module-wide call-interface pairing and
  per-run summary lints.

Violations never crash the run: error-severity ones quarantine the
offending function through :mod:`repro.robust` diagnostics (stage
``verify``), warnings are recorded only, and both count into the
``verify.violations`` metric by rule.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, List, Optional

from repro.obs.metrics import get_registry
from repro.robust.diagnostics import (
    REASON_INVARIANT,
    STAGE_VERIFY,
    DiagnosticLog,
)
from repro.verify.ir_verifier import instr_defs, verify_function_ir
from repro.verify.rules import (
    RULES,
    Rule,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    severity_of,
)
from repro.verify.pta_verifier import verify_flow_tier
from repro.verify.seg_verifier import verify_call_interfaces, verify_seg
from repro.verify.summary_lints import lint_summaries
from repro.verify.violation import Violation

MODE_OFF = "off"
MODE_FAST = "fast"
MODE_FULL = "full"
MODES = (MODE_OFF, MODE_FAST, MODE_FULL)


def resolve_mode(explicit: str = "") -> str:
    """The effective verification mode: an explicit setting wins, then
    the ``REPRO_VERIFY`` environment variable, then ``off``."""
    mode = (explicit or os.environ.get("REPRO_VERIFY", "")).strip().lower()
    if not mode:
        return MODE_OFF
    if mode not in MODES:
        raise ValueError(
            f"verify mode must be one of {'|'.join(MODES)}, got {mode!r}"
        )
    return mode


def record_violations(
    violations: Iterable[Violation],
    log: DiagnosticLog,
    seconds: Optional[float] = None,
    stage: str = "",
) -> List[Violation]:
    """Feed violations into the diagnostic log and the metrics registry;
    returns the error-severity subset (the quarantine-worthy ones).

    The rule id is encoded into the diagnostic *reason*
    (``invariant-violation:<rule>``) so distinct rules firing on the
    same function never dedup-collapse into one entry.
    """
    registry = get_registry()
    if seconds is not None:
        registry.counter(
            "verify.seconds", "Time spent in the verifier (seconds)"
        ).inc(seconds, stage=stage or "all")
    errors: List[Violation] = []
    for violation in violations:
        registry.counter(
            "verify.violations", "Structural invariant violations, by rule"
        ).inc(rule=violation.rule)
        log.record(
            STAGE_VERIFY,
            violation.unit,
            f"{REASON_INVARIANT}:{violation.rule}",
            detail=violation.detail,
            line=violation.line,
        )
        if severity_of(violation.rule) == SEVERITY_ERROR:
            errors.append(violation)
    return errors


def record_verify_seconds(seconds: float, stage: str) -> None:
    """Count verifier wall time even when no violation fired (the
    ``--verify=fast`` overhead guard reads this)."""
    get_registry().counter(
        "verify.seconds", "Time spent in the verifier (seconds)"
    ).inc(seconds, stage=stage)


class timed_verify:
    """Context manager timing one verifier pass into ``verify.seconds``."""

    def __init__(self, stage: str) -> None:
        self.stage = stage
        self._start = 0.0

    def __enter__(self) -> "timed_verify":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        record_verify_seconds(time.perf_counter() - self._start, self.stage)


__all__ = [
    "MODES",
    "MODE_FAST",
    "MODE_FULL",
    "MODE_OFF",
    "RULES",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Violation",
    "instr_defs",
    "lint_summaries",
    "record_verify_seconds",
    "record_violations",
    "resolve_mode",
    "severity_of",
    "timed_verify",
    "verify_call_interfaces",
    "verify_flow_tier",
    "verify_function_ir",
    "verify_seg",
]
