"""The violation record shared by all verifier passes."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which rule, in which unit, and why."""

    rule: str  # a key of repro.verify.rules.RULES
    unit: str  # function name
    detail: str = ""
    line: int = 0

    def __str__(self) -> str:
        where = f"{self.unit}:{self.line}" if self.line else self.unit
        text = f"{self.rule} @ {where}"
        if self.detail:
            text += f": {self.detail}"
        return text
