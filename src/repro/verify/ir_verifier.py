"""IR verifier: CFG shape, SSA form, dominance, control dependence.

This is the moral equivalent of LLVM's ``-verify`` pass for the repo's
IR.  It runs after per-function preparation (lowering, connector
transformation, SSA construction), so it checks the *final* artifact
later stages consume.  Checks are staged: SSA/dominance invariants are
only meaningful on a structurally sound CFG, so when a structural rule
fires the later passes are skipped — both to avoid crashing on garbage
and so a mutation corrupting one invariant trips exactly one rule.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.ir import cfg
from repro.ir.dominance import DomInfo, dominators
from repro.verify.violation import Violation

_TERMINATORS = (cfg.Branch, cfg.Jump, cfg.Ret)


def instr_defs(instr: cfg.Instr) -> List[str]:
    """All SSA variables an instruction defines (``defined_var`` plus a
    Call's Aux-return receivers)."""
    defs = []
    dest = instr.defined_var()
    if dest is not None:
        defs.append(dest)
    if isinstance(instr, cfg.Call):
        defs.extend(instr.extra_receivers)
    return defs


def _terminator_targets(term: cfg.Instr) -> List[str]:
    if isinstance(term, cfg.Branch):
        return [term.then_label, term.else_label]
    if isinstance(term, cfg.Jump):
        return [term.target]
    return []


def verify_function_ir(
    function: cfg.Function,
    control_deps: Optional[Dict[str, list]] = None,
    dom: Optional[DomInfo] = None,
) -> List[Violation]:
    """Check one (transformed, SSA) function; return all violations.

    Never raises on corrupt input — a verifier that crashes on the
    malformed IR it exists to detect would be useless.
    """
    unit = function.name
    violations: List[Violation] = []
    blocks = function.blocks

    # ---------------------------------------------------------- ir-entry
    structural_ok = True
    if function.entry not in blocks:
        violations.append(
            Violation("ir-entry", unit, f"entry block {function.entry!r} missing")
        )
        structural_ok = False
    elif blocks[function.entry].preds:
        violations.append(
            Violation(
                "ir-entry",
                unit,
                f"entry block has predecessors {blocks[function.entry].preds}",
            )
        )
        structural_ok = False

    # ------------------------------------- ir-terminator / ir-edge-symmetry
    for label, block in blocks.items():
        term = block.terminator
        if not isinstance(term, _TERMINATORS):
            violations.append(
                Violation(
                    "ir-terminator",
                    unit,
                    f"block {label!r} terminator is {type(term).__name__}",
                )
            )
            structural_ok = False
        else:
            targets = _terminator_targets(term)
            missing = [t for t in targets if t not in blocks]
            if missing:
                violations.append(
                    Violation(
                        "ir-edge-symmetry",
                        unit,
                        f"block {label!r} branches to unknown block(s) {missing}",
                        line=term.line,
                    )
                )
                structural_ok = False
            elif Counter(targets) != Counter(block.succs):
                violations.append(
                    Violation(
                        "ir-edge-symmetry",
                        unit,
                        f"block {label!r} succs {block.succs} do not match "
                        f"terminator targets {targets}",
                        line=term.line,
                    )
                )
                structural_ok = False
        for instr in list(block.phis) + list(block.instrs):
            if isinstance(instr, _TERMINATORS):
                violations.append(
                    Violation(
                        "ir-terminator",
                        unit,
                        f"terminator {instr!r} appears mid-block in {label!r}",
                        line=instr.line,
                    )
                )
                structural_ok = False

    # Pred/succ symmetry as edge multisets.
    succ_edges = Counter(
        (label, succ) for label, block in blocks.items() for succ in block.succs
    )
    pred_edges = Counter(
        (pred, label) for label, block in blocks.items() for pred in block.preds
    )
    if succ_edges != pred_edges:
        diff = (succ_edges - pred_edges) + (pred_edges - succ_edges)
        violations.append(
            Violation(
                "ir-edge-symmetry",
                unit,
                f"pred/succ lists disagree on edge(s) {sorted(diff)}",
            )
        )
        structural_ok = False

    if not structural_ok or not function.is_ssa:
        # SSA and dominance are undefined on a broken CFG; reporting
        # derived failures would only bury the root cause.
        return violations

    # ------------------------------------------------------ ssa-single-def
    params = set(function.params) | set(function.aux_params)
    def_site: Dict[str, Tuple[str, int]] = {}
    duplicated = set()
    for label, block in blocks.items():
        for index, instr in enumerate(block.all_instrs()):
            for var in instr_defs(instr):
                if var in def_site or var in params:
                    duplicated.add(var)
                    violations.append(
                        Violation(
                            "ssa-single-def",
                            unit,
                            f"{var!r} redefined in block {label!r}",
                            line=instr.line,
                        )
                    )
                else:
                    def_site[var] = (label, index)

    # ---------------------------------------------------------- phi-arity
    for label, block in blocks.items():
        for phi in block.phis:
            labels = Counter(pred for pred, _ in phi.incomings)
            if labels != Counter(block.preds):
                violations.append(
                    Violation(
                        "phi-arity",
                        unit,
                        f"phi {phi.dest!r} incomings {sorted(labels)} do not "
                        f"match preds {sorted(block.preds)} of {label!r}",
                        line=phi.line,
                    )
                )

    # ------------------------------------------------------- ssa-dominance
    if dom is None:
        dom = dominators(function)
    reachable = set(dom.order)

    def defined_ok(var: str) -> bool:
        # Bare (unversioned) names are source-level undefined variables:
        # SSA renaming deliberately leaves them free.  ``x.undef`` marks
        # a path with no definition (also deliberate).
        return (
            var in params
            or var in def_site
            or "." not in var
            or var.endswith(".undef")
        )

    def check_use(var: str, use_block: str, use_index: int, line: int) -> None:
        if var in params or var in duplicated:
            return
        site = def_site.get(var)
        if site is None:
            if not defined_ok(var):
                violations.append(
                    Violation(
                        "ssa-dominance",
                        unit,
                        f"use of undefined SSA variable {var!r}",
                        line=line,
                    )
                )
            return
        def_block, def_index = site
        if def_block == use_block:
            if def_index >= use_index:
                violations.append(
                    Violation(
                        "ssa-dominance",
                        unit,
                        f"{var!r} used before its definition in {use_block!r}",
                        line=line,
                    )
                )
        elif not dom.dominates(def_block, use_block):
            violations.append(
                Violation(
                    "ssa-dominance",
                    unit,
                    f"definition of {var!r} in {def_block!r} does not "
                    f"dominate its use in {use_block!r}",
                    line=line,
                )
            )

    for label in reachable:
        block = blocks[label]
        for index, instr in enumerate(block.all_instrs()):
            if isinstance(instr, cfg.Phi):
                # A phi operand must be available at the end of the
                # corresponding predecessor — the definition block must
                # dominate the predecessor (self-loops included: the
                # whole block runs before its own back edge is taken).
                for pred, operand in instr.incomings:
                    if not isinstance(operand, cfg.Var):
                        continue
                    var = operand.name
                    if var in params or var in duplicated:
                        continue
                    site = def_site.get(var)
                    if site is None:
                        if not defined_ok(var):
                            violations.append(
                                Violation(
                                    "ssa-dominance",
                                    unit,
                                    f"phi {instr.dest!r} uses undefined "
                                    f"variable {var!r}",
                                    line=instr.line,
                                )
                            )
                        continue
                    if pred in reachable and not dom.dominates(site[0], pred):
                        violations.append(
                            Violation(
                                "ssa-dominance",
                                unit,
                                f"phi operand {var!r} (defined in "
                                f"{site[0]!r}) does not dominate "
                                f"predecessor {pred!r}",
                                line=instr.line,
                            )
                        )
            else:
                for var in instr.used_vars():
                    check_use(var, label, index, instr.line)

    # ----------------------------------------------------------- cd-branch
    if control_deps:
        for label, deps in control_deps.items():
            if label not in blocks:
                violations.append(
                    Violation(
                        "cd-branch",
                        unit,
                        f"control dependence recorded for unknown block {label!r}",
                    )
                )
                continue
            for branch_label, _taken in deps:
                branch_block = blocks.get(branch_label)
                if branch_block is None or not isinstance(
                    branch_block.terminator, cfg.Branch
                ):
                    violations.append(
                        Violation(
                            "cd-branch",
                            unit,
                            f"block {label!r} claims control dependence on "
                            f"{branch_label!r}, which is not a Branch block",
                        )
                    )

    return violations
