"""The verifier rule catalog.

Each structural invariant the analysis relies on — SSA form and
dominance (paper §3.1), SEG well-formedness (Def. 3.2), the connector
model's Aux pairing (Fig. 3), and summary interface hygiene (§3.3.2) —
is one named :class:`Rule`.  Rules are the unit of reporting: a
violation carries its rule id, metrics count by rule, and the mutation
test suite corrupts a well-formed artifact per rule to prove each one
can fire.

Severities:

- ``error`` — the artifact is structurally broken; analyzing it could
  produce arbitrary results, so the owning function is quarantined;
- ``warning`` — the artifact is suspicious but analysis remains
  well-defined; recorded as a diagnostic only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One named invariant, grouped by the verifier pass that checks it."""

    id: str
    stage: str  # 'ir' | 'seg' | 'summary'
    severity: str
    description: str


_RULES = [
    # -------------------------------------------------- IR verifier
    Rule(
        "ir-entry",
        "ir",
        SEVERITY_ERROR,
        "The entry block exists and has no predecessors.",
    ),
    Rule(
        "ir-terminator",
        "ir",
        SEVERITY_ERROR,
        "Every block ends in exactly one terminator (Branch/Jump/Ret), "
        "and no terminator appears mid-block.",
    ),
    Rule(
        "ir-edge-symmetry",
        "ir",
        SEVERITY_ERROR,
        "Successor lists match terminator targets, every target names an "
        "existing block, and pred/succ lists are mutually consistent.",
    ),
    Rule(
        "ssa-single-def",
        "ir",
        SEVERITY_ERROR,
        "Every SSA variable has exactly one definition site.",
    ),
    Rule(
        "ssa-dominance",
        "ir",
        SEVERITY_ERROR,
        "Every use is dominated by its definition (phi operands are "
        "checked at the corresponding predecessor block).",
    ),
    Rule(
        "phi-arity",
        "ir",
        SEVERITY_ERROR,
        "Phi incoming labels match the block's predecessor list.",
    ),
    Rule(
        "cd-branch",
        "ir",
        SEVERITY_ERROR,
        "Control-dependence entries reference existing blocks whose "
        "terminator is a Branch.",
    ),
    # -------------------------------------------------- SEG verifier
    Rule(
        "seg-dangling-edge",
        "seg",
        SEVERITY_ERROR,
        "Every data edge endpoint is a registered SEG vertex.",
    ),
    Rule(
        "seg-index-symmetry",
        "seg",
        SEVERITY_ERROR,
        "The out-edge and in-edge indexes list exactly the same edges.",
    ),
    Rule(
        "seg-def-unresolved",
        "seg",
        SEVERITY_ERROR,
        "Every def vertex names a formal parameter or an SSA variable "
        "with a known defining statement.",
    ),
    Rule(
        "seg-use-anchor",
        "seg",
        SEVERITY_ERROR,
        "Use/const/op vertices are anchored at a statement the SEG "
        "knows, and use vertices name an operand that statement reads.",
    ),
    Rule(
        "seg-gate-condition",
        "seg",
        SEVERITY_ERROR,
        "Control-dependence gates reference a defined SSA variable that "
        "is the condition of some Branch terminator.",
    ),
    Rule(
        "aux-pairing",
        "seg",
        SEVERITY_ERROR,
        "Aux formals/returns pair with the connector signature (Fig. 3): "
        "counts and base names match, and every Ret carries one extra "
        "value per Aux return.",
    ),
    Rule(
        "call-aux-pairing",
        "seg",
        SEVERITY_ERROR,
        "Transformed call sites carry one extra receiver per callee Aux "
        "return (same-SCC calls stay untransformed).",
    ),
    # -------------------------------------------------- PTA tier verifier
    Rule(
        "pta-strong-update-proof",
        "pta",
        SEVERITY_ERROR,
        "Every flow-sensitive strong update names a must-alias proof "
        "whose object is the store's only resolved target and is "
        "singular (an allocation site outside every CFG cycle, or an "
        "aux object).",
    ),
    Rule(
        "pta-tier-subset",
        "pta",
        SEVERITY_ERROR,
        "The fs tier only removes facts: per variable and load, the "
        "fs-prepared points-to and load-value sets are subsets of the "
        "fi-prepared ones (strong updates kill entries, never add).",
    ),
    # -------------------------------------------------- summary lints
    Rule(
        "summary-interface",
        "summary",
        SEVERITY_WARNING,
        "RV/VF summary constraints mention interface values (formal "
        "parameters, incl. Aux) only.",
    ),
    Rule(
        "summary-slot",
        "summary",
        SEVERITY_WARNING,
        "Summary parameter/return slots index real interface slots.",
    ),
    Rule(
        "summary-coherence",
        "summary",
        SEVERITY_WARNING,
        "Summary paths only visit vertices of the function's current SEG "
        "(a stale cache entry would not).",
    ),
]

RULES: Dict[str, Rule] = {rule.id: rule for rule in _RULES}


def severity_of(rule_id: str) -> str:
    rule = RULES.get(rule_id)
    return rule.severity if rule is not None else SEVERITY_ERROR
