"""Inter-procedural use-after-free hunting on a realistic mini-codebase.

This example models the kind of bug the paper opens with (Fig. 1 and the
MySQL Bug #87203 anecdote): a connection pool where a cleanup helper
frees a buffer that a different module later flushes.  The dangling value
crosses three functions and travels through a heap cell — the engine
stitches the path from callee summaries (VF2/VF3) and solves the
combined path condition before reporting.

Run:  python examples/interprocedural_uaf.py
"""

from repro import DoubleFreeChecker, Pinpoint, UseAfterFreeChecker

CONNECTION_POOL = """
// A tiny "connection pool".  Each connection owns a buffer stored in a
// slot object; reset() conditionally releases the buffer; flush() reads
// it back out of the slot and writes through it.

fn buffer_new(size) {
    buf = malloc();
    *buf = size;
    return buf;
}

fn conn_new(size) {
    conn = malloc();
    buf = buffer_new(size);
    *conn = buf;
    return conn;
}

// Releases the connection's buffer when the error flag is set.
fn conn_reset(conn, err) {
    buf = *conn;
    if (err > 0) {
        free(buf);
    }
    return 0;
}

// Reads the buffer out of the connection and writes through it.
fn conn_flush(conn, data) {
    buf = *conn;
    *buf = data;      // <- dereferences the (possibly freed) buffer
    return 0;
}

fn handle_request(size, err, data) {
    conn = conn_new(size);
    conn_reset(conn, err);
    conn_flush(conn, data);    // use-after-free when err > 0
    return 0;
}

// A correct variant for contrast: flush only on the non-error path.
fn handle_request_safe(size, err, data) {
    conn = conn_new(size);
    t = err > 0;
    if (t) {
        conn_reset(conn, err);
    }
    if (!t) {
        conn_flush(conn, data);   // cannot see the freed buffer: err <= 0
    }
    return 0;
}
"""


def main() -> None:
    engine = Pinpoint.from_source(CONNECTION_POOL)

    print("=== use-after-free ===")
    uaf = engine.check(UseAfterFreeChecker())
    print(uaf.summary_line())
    for report in uaf:
        print()
        print(report)

    print()
    print("=== double-free ===")
    df = engine.check(DoubleFreeChecker())
    print(df.summary_line())
    for report in df:
        print()
        print(report)

    print()
    stats = uaf.stats
    print(
        f"engine: {stats.functions} functions, {stats.seg_vertices} SEG vertices, "
        f"{stats.seg_edges} SEG edges, {stats.summaries_vf} VF summaries, "
        f"{stats.smt_queries} SMT queries"
    )
    # The safe variant's sink sits behind a contradictory condition and
    # must not be reported.
    flagged = {r.sink.function for r in uaf}
    assert "handle_request_safe" not in flagged, "false positive on the safe path!"
    print("safe variant correctly not reported")


if __name__ == "__main__":
    main()
