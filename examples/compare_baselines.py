"""Pinpoint vs the baselines on one workload — the paper's story in one run.

Generates a synthetic codebase with seeded true bugs, false-positive
traps, and safe filler, then runs:

- Pinpoint (holistic, path- and context-sensitive),
- the layered SVF baseline (Andersen + global SVFG + reachability),
- the dense IFDS baseline (Saturn/Calysto style),
- the intra-unit baseline (Infer/CSA style),

and scores each against ground truth.

Run:  python examples/compare_baselines.py
"""

from repro import Pinpoint, UseAfterFreeChecker
from repro.baselines.ifds import IFDSBaseline
from repro.baselines.intraunit import IntraUnitBaseline
from repro.baselines.svf import SVFBaseline
from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.synth.generator import (
    GeneratorConfig,
    classify_reports,
    generate_program,
)


def main() -> None:
    program = generate_program(GeneratorConfig(seed=2024, target_lines=1500))
    print(
        f"workload: {program.line_count} lines, "
        f"{len(program.true_bugs())} seeded bugs, "
        f"{len(program.traps())} seeded traps"
    )

    rows = []

    def score(name, reports, seconds):
        tps, fps, missed = classify_reports(reports, program.ground_truth)
        found = len(program.true_bugs()) - len(missed)
        rows.append(
            (
                name,
                f"{seconds:.2f}",
                len(reports),
                f"{found}/{len(program.true_bugs())}",
                len(fps),
            )
        )

    engine = Pinpoint.from_source(program.source)
    result, seconds = time_only(lambda: engine.check(UseAfterFreeChecker()))
    score("Pinpoint", result.reports, seconds)

    svf = SVFBaseline.from_source(program.source)
    reports, seconds = time_only(lambda: svf.check(UseAfterFreeChecker()))
    score("SVF (layered)", reports, seconds)

    ifds = IFDSBaseline.from_source(program.source)
    reports, seconds = time_only(ifds.check_use_after_free)
    score("IFDS (dense)", reports, seconds)

    intra = IntraUnitBaseline(engine)
    reports, seconds = time_only(lambda: intra.check(UseAfterFreeChecker()))
    score("intra-unit (Infer/CSA-like)", reports, seconds)

    print()
    print(
        render_table(
            ["analysis", "time (s)", "reports", "bugs found", "false positives"],
            rows,
        )
    )
    print()
    print("Pinpoint: every seeded bug, no trap reported.")
    print("SVF: warning flood (the 'pointer trap').")
    print("Intra-unit: fast, but misses cross-function bugs and reports traps.")


if __name__ == "__main__":
    main()
