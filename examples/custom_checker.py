"""Writing a custom checker.

The paper presents Pinpoint as a *framework*: "problems that can be
modeled as value-flow paths are straightforward to solve" (Section 4.1).
This example adds a checker the library does not ship — an
unsanitized-SQL checker: values born at ``read_query`` must pass through
``sanitize`` before reaching ``sql_exec``.

Sanitization is modeled the simplest honest way: the sanitizer is a
defined function that returns a *fresh* value (not the tainted one), so
sanitized flows simply are not value flows from the source anymore.  The
checker itself is ~20 lines: name the sources and the sinks, inherit the
engine machinery.

Run:  python examples/custom_checker.py
"""

from repro import Pinpoint
from repro.core.checkers.taint import TaintChecker


class SqlInjectionChecker(TaintChecker):
    """Query text reaching sql_exec without sanitization."""

    def __init__(self) -> None:
        super().__init__(
            "sql-injection",
            source_calls=("read_query", "recv"),
            sink_calls=("sql_exec",),
        )


WEB_APP = """
fn sanitize(q) {
    // A real sanitizer builds a new, escaped string: model that by
    // returning a fresh buffer rather than the input value.
    clean = malloc();
    *clean = 1;
    r = *clean;
    return r;
}

fn handler_unsafe() {
    q = read_query();
    sql_exec(q);            // <- injection: raw query executed
    return 0;
}

fn handler_safe() {
    q = read_query();
    clean = sanitize(q);
    sql_exec(clean);        // sanitized: no value flow from q
    return 0;
}

fn handler_conditional(debug) {
    q = read_query();
    t = debug > 0;
    if (t)  { payload = q; }
    else    { payload = sanitize(q); }
    if (!t) { sql_exec(payload); }   // only the sanitized value arrives
    return 0;
}
"""


def main() -> None:
    engine = Pinpoint.from_source(WEB_APP)
    result = engine.check(SqlInjectionChecker())
    print(result.summary_line())
    for report in result:
        print()
        print(report)

    flagged = {r.sink.function for r in result}
    assert "handler_unsafe" in flagged
    assert "handler_safe" not in flagged
    assert "handler_conditional" not in flagged, (
        "path sensitivity must rule out the tainted value at the guarded sink"
    )
    print()
    print("safe and path-guarded handlers correctly not reported")


if __name__ == "__main__":
    main()
