"""Quickstart: find a use-after-free in ten lines.

Run:  python examples/quickstart.py
"""

from repro import Pinpoint, UseAfterFreeChecker

SOURCE = """
fn main(a) {
    p = malloc();
    *p = a;
    free(p);
    x = *p;        // <- use after free
    return x;
}
"""


def main() -> None:
    engine = Pinpoint.from_source(SOURCE)
    result = engine.check(UseAfterFreeChecker())
    print(result.summary_line())
    for report in result:
        print()
        print(report)


if __name__ == "__main__":
    main()
