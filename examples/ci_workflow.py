"""A per-commit CI workflow: incremental analysis + baselining + SARIF.

Simulates three commits to a small codebase:

1. commit 1 — full scan; the pre-existing finding is triaged into a
   baseline (accepted for now);
2. commit 2 — a harmless refactor; the incremental analyzer re-analyzes
   only the touched function, the baseline keeps CI green;
3. commit 3 — a regression introduces a new use-after-free; only the
   *new* finding surfaces, exported as SARIF for the code host.

Run:  python examples/ci_workflow.py
"""

import json

from repro import UseAfterFreeChecker
from repro.core.baseline import Baseline
from repro.core.incremental import IncrementalAnalyzer
from repro.core.sarif import to_sarif

COMMIT_1 = """
fn cache_put(slot, v) { *slot = v; return 0; }
fn cache_get(slot) { v = *slot; return v; }

// Known issue, triaged as acceptable for the legacy path:
fn legacy_flush(buf) {
    free(buf);
    x = *buf;       // pre-existing finding
    return x;
}

fn serve(a) {
    slot = malloc();
    item = malloc();
    *item = a;
    cache_put(slot, item);
    got = cache_get(slot);
    y = *got;
    free(item);
    return y;
}
"""

COMMIT_2 = COMMIT_1.replace(
    "fn cache_get(slot) { v = *slot; return v; }",
    "fn cache_get(slot) {\n    v = *slot;\n    // refactor: explanatory comment\n    return v;\n}",
)

COMMIT_3 = COMMIT_2 + """
fn evict_and_reuse(a) {
    item = malloc();
    *item = a;
    free(item);
    z = *item;      // regression introduced in this commit
    return z;
}
"""


def scan(analyzer, source, baseline, label):
    engine = analyzer.analyze(source)
    stats = analyzer.last_stats
    result = engine.check(UseAfterFreeChecker())
    new = baseline.filter_new(result)
    print(
        f"{label}: analyzed {stats.analyzed} function(s), reused {stats.reused}; "
        f"{len(result.reports)} finding(s), {len(new)} new after baseline"
    )
    return result, new


def main() -> None:
    analyzer = IncrementalAnalyzer()
    baseline = Baseline()

    # Commit 1: cold scan, triage everything into the baseline.
    result, new = scan(analyzer, COMMIT_1, baseline, "commit 1 (cold)")
    baseline = Baseline.from_results([result])
    print(f"  -> triaged {len(baseline)} finding(s) into the baseline")

    # Commit 2: comment-only refactor.
    result, new = scan(analyzer, COMMIT_2, baseline, "commit 2 (refactor)")
    assert not new, "refactor must not surface findings"
    print("  -> CI green")

    # Commit 3: regression.
    result, new = scan(analyzer, COMMIT_3, baseline, "commit 3 (regression)")
    assert len(new) == 1 and new[0].source.function == "evict_and_reuse"
    print(f"  -> CI red: {new[0].source} flows to {new[0].sink}")

    # Export the run as SARIF for the code host annotation UI.
    result.reports = new
    sarif = to_sarif([result], "service.pin")
    print(
        f"  -> SARIF: {len(sarif['runs'][0]['results'])} result(s), "
        f"rule {sarif['runs'][0]['results'][0]['ruleId']!r}"
    )
    # (A real pipeline would write this to a file; show a fragment here.)
    fragment = json.dumps(sarif["runs"][0]["results"][0]["message"], indent=2)
    print(fragment)


if __name__ == "__main__":
    main()
