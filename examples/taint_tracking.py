"""Taint tracking: path traversal and sensitive-data transmission.

Models the two taint issues the paper evaluates (Section 4.1, Table 2):

- CWE-23 path traversal: attacker-controlled input reaching a file
  operation;
- CWE-402 data transmission: a secret reaching an output channel.

Taint survives string/arithmetic massaging (``through_ops``), and the
engine's path sensitivity prunes flows guarded by contradictory
conditions.

Run:  python examples/taint_tracking.py
"""

from repro import DataTransmissionChecker, PathTraversalChecker, Pinpoint

FILE_SERVER = """
// A tiny file server: reads a request, builds a path, opens it.

fn read_request() {
    raw = fgetc();
    return raw;
}

fn build_path(prefix, name) {
    combined = prefix + name;    // taint flows through the concatenation
    return combined;
}

fn serve(prefix) {
    name = read_request();
    path = build_path(prefix, name);
    f = fopen(path);             // <- CWE-23: tainted path opened
    return f;
}

// Sensitive-data handling: the password may only be logged when the
// debug flag is *off* by policy; the code gets it backwards.
fn login(debug) {
    password = getpass();
    token = password + 1;
    if (debug > 0) {
        sendto(token);           // <- CWE-402: secret leaves the process
    }
    return 0;
}

// Safe variant: the secret is overwritten before transmission.
fn login_safe() {
    password = getpass();
    scrubbed = 0;
    sendto(scrubbed);
    return 0;
}
"""


def main() -> None:
    engine = Pinpoint.from_source(FILE_SERVER)

    print("=== path traversal (CWE-23) ===")
    traversal = engine.check(PathTraversalChecker())
    print(traversal.summary_line())
    for report in traversal:
        print()
        print(report)

    print()
    print("=== data transmission (CWE-402) ===")
    transmission = engine.check(DataTransmissionChecker())
    print(transmission.summary_line())
    for report in transmission:
        print()
        print(report)

    flagged = {r.sink.function for r in transmission}
    assert "login_safe" not in flagged, "false positive on the scrubbed path!"
    print()
    print("safe variant correctly not reported")


if __name__ == "__main__":
    main()
