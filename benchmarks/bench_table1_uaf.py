"""Table 1 — Use-after-free checking across the subject catalog.

Paper's Table 1 reports, per subject, Pinpoint's false positives and
report counts against SVF's: Pinpoint produced 14 reports overall with a
14.3% FP rate; SVF produced ~1000x more warnings, 100% FP on the sampled
subsets.  With synthetic subjects the ground truth is exact, so FP rates
need no sampling: every report either matches a seeded defect or is a
false positive.

Shape assertions: Pinpoint finds every seeded bug with zero FPs; the
layered baseline reports at least an order of magnitude more warnings,
almost all false.
"""

from __future__ import annotations

import pytest

from conftest import subject_program
from repro.baselines.svf import SVFBaseline
from repro.bench.tables import render_table
from repro.core.engine import Pinpoint
from repro.core.checkers import UseAfterFreeChecker
from repro.synth.generator import classify_reports, split_false_positives

# Running all 30 subjects through full checking is feasible but slow;
# this ladder mirrors the table's size range.
SWEEP = [
    "mcf",
    "gzip",
    "vpr",
    "twolf",
    "darknet",
    "tmux",
    "libssh",
    "shadowsocks",
    "libuv",
    "transmission",
    "git",
    "vim",
    "libicu",
    "php",
    "mysql",
]


def test_table1_uaf_precision(record_result):
    rows = []
    total_pinpoint_reports = 0
    total_pinpoint_fps = 0
    total_unexpected_fps = 0
    total_missed = 0
    total_svf_reports = 0
    total_svf_tps = 0
    for name in SWEEP:
        program = subject_program(name)
        engine = Pinpoint.from_source(program.source)
        result = engine.check(UseAfterFreeChecker())
        tps, fps, missed = classify_reports(result.reports, program.ground_truth)
        _, unexpected = split_false_positives(fps, program.ground_truth)
        total_unexpected_fps += len(unexpected)

        svf_reports = SVFBaseline.from_source(program.source).check(
            UseAfterFreeChecker()
        )
        svf_tps, svf_fps, _ = classify_reports(svf_reports, program.ground_truth)

        total_pinpoint_reports += len(result.reports)
        total_pinpoint_fps += len(fps)
        total_missed += len(missed)
        total_svf_reports += len(svf_reports)
        total_svf_tps += len(svf_tps)
        rows.append(
            (
                name,
                len(program.true_bugs()),
                len(result.reports),
                len(fps),
                len(missed),
                len(svf_reports),
                len(svf_fps),
            )
        )
    table = render_table(
        [
            "subject",
            "seeded bugs",
            "PP reports",
            "PP FPs",
            "PP missed",
            "SVF reports",
            "SVF FPs",
        ],
        rows,
    )
    pp_fp_rate = total_pinpoint_fps / max(total_pinpoint_reports, 1)
    svf_fp_rate = (total_svf_reports - total_svf_tps) / max(total_svf_reports, 1)
    ratio = total_svf_reports / max(total_pinpoint_reports, 1)
    table += (
        f"\n\nPinpoint: {total_pinpoint_reports} reports, FP rate "
        f"{100 * pp_fp_rate:.1f}% (paper: 14.3%), missed {total_missed}"
        f"\nSVF:      {total_svf_reports} reports ({ratio:.0f}x more), FP rate "
        f"{100 * svf_fp_rate:.1f}%"
    )
    record_result(table, "table1_uaf")

    assert total_missed == 0  # recall preserved
    assert pp_fp_rate <= 0.25  # paper: 14.3% for UAF
    assert total_unexpected_fps == 0  # only soundiness-expected FPs
    assert ratio >= 10  # paper: ~1000x on real subjects
    assert svf_fp_rate >= 0.9  # paper: 100% on sampled warnings


@pytest.mark.benchmark(group="table1")
def test_table1_pinpoint_check_benchmark(benchmark):
    program = subject_program("tmux")
    engine = Pinpoint.from_source(program.source)
    benchmark(lambda: engine.check(UseAfterFreeChecker()))
