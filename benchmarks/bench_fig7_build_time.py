"""Fig. 7 — Time cost: building SEG vs building the global FSVFG.

The paper's finding: the two techniques perform similarly on small
subjects; past a threshold (135 KLoC there) FSVFG construction blows up
and times out, while SEG construction keeps scaling (up to >400x
faster).  The same sweep runs here over the scaled-down subject catalog;
the layered baseline gets a per-subject build budget standing in for the
paper's 12-hour timeout.

Shape assertions:
- SEG construction finishes on every subject, including the largest;
- the fitted complexity exponent of FSVFG construction exceeds SEG's
  (super-linear vs near-linear);
- the FSVFG/SEG time ratio grows with subject size.
"""

from __future__ import annotations

import pytest

from conftest import SVF_TIMEOUT_SECONDS, fig7_program
from repro.baselines.svf import SVFBaseline
from repro.bench.fitting import fit_power
from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.core.engine import Pinpoint


def build_seg(source: str) -> Pinpoint:
    return Pinpoint.from_source(source)


def build_fsvfg(source: str) -> SVFBaseline:
    return SVFBaseline.from_source(source).build()


def test_fig7_build_time_sweep(subjects, record_result):
    rows = []
    svf_timed_out = False
    series = []
    for subject in subjects:
        program = fig7_program(subject.name)
        _, seg_seconds = time_only(lambda: build_seg(program.source))
        if svf_timed_out:
            svf_cell = "timeout"
            svf_seconds = None
        else:
            _, svf_seconds = time_only(lambda: build_fsvfg(program.source))
            svf_cell = f"{svf_seconds:.3f}"
            if svf_seconds > SVF_TIMEOUT_SECONDS:
                svf_timed_out = True  # larger subjects would only be worse
                svf_cell += " (timeout)"
        series.append((subject, program.line_count, seg_seconds, svf_seconds))
        rows.append(
            (
                subject.name,
                subject.kloc,
                program.line_count,
                f"{seg_seconds:.3f}",
                svf_cell,
            )
        )
    table = render_table(
        ["subject", "paper KLoC", "gen lines", "SEG build (s)", "FSVFG build (s)"],
        rows,
    )

    # Fit complexity exponents above a size floor (tiny subjects are
    # dominated by constant overhead, not asymptotics).
    floor = 500
    measured = [item for item in series if item[3] is not None]
    fit_points = [item for item in measured if item[1] >= floor]
    seg_points = [item for item in series if item[1] >= floor]
    seg_fit = fit_power([i[1] for i in seg_points], [i[2] for i in seg_points])
    svf_fit = fit_power([i[1] for i in fit_points], [i[3] for i in fit_points])
    largest = max(measured, key=lambda item: item[1])
    smallest = min(measured, key=lambda item: item[1])
    large_ratio = largest[3] / max(largest[2], 1e-9)
    small_ratio = smallest[3] / max(smallest[2], 1e-9)
    table += (
        f"\n\nSEG build:   {seg_fit.describe()}"
        f"\nFSVFG build: {svf_fit.describe()}"
        f"\nFSVFG/SEG ratio: {small_ratio:.2f}x on {smallest[0].name} -> "
        f"{large_ratio:.2f}x on {largest[0].name}"
        f"\nFSVFG timeout (> {SVF_TIMEOUT_SECONDS:.0f}s budget): "
        f"{'yes, on the largest subjects' if svf_timed_out else 'no'}"
    )
    record_result(table, "fig7_build_time")

    assert len(series) == len(subjects)  # SEG finished everywhere
    # Super-linear FSVFG vs near-linear SEG.
    assert svf_fit.coefficients[1] > seg_fit.coefficients[1]
    # The layered baseline loses ground as size grows.
    assert large_ratio > small_ratio


@pytest.mark.benchmark(group="fig7-build")
def test_fig7_seg_build_benchmark(benchmark):
    program = fig7_program("tmux")
    benchmark(lambda: build_seg(program.source))


@pytest.mark.benchmark(group="fig7-build")
def test_fig7_fsvfg_build_benchmark(benchmark):
    program = fig7_program("tmux")
    benchmark(lambda: build_fsvfg(program.source))
