"""Table 3 — Comparison with Infer/CSA-style intra-unit checkers.

Paper's Table 3: Infer and CSA are much faster than Pinpoint because
they stay within one compilation unit and do not fully track path
correlations — at the cost that (in the paper's runs) all 35 of Infer's
UAF reports and 24/26 of CSA's were false positives, and the cross-unit
bugs Pinpoint found were missed.

Here the intra-unit baseline plays both tools' role.  Shape assertions:

- it is faster than Pinpoint on the same subjects;
- its false-positive rate is far higher (it reports the seeded
  contradictory-branch traps);
- it misses every *cross-function* seeded bug that Pinpoint finds.
"""

from __future__ import annotations

import pytest

from conftest import subject_program
from repro.baselines.intraunit import IntraUnitBaseline
from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.core.engine import Pinpoint
from repro.core.checkers import UseAfterFreeChecker
from repro.synth.generator import classify_reports

SWEEP = ["tmux", "transmission", "git", "vim", "libicu", "php", "mysql"]

CROSS_KINDS = {"true-cross", "true-return"}


def test_table3_intraunit_comparison(record_result):
    rows = []
    totals = {
        "pp_seconds": 0.0,
        "iu_seconds": 0.0,
        "iu_reports": 0,
        "iu_fps": 0,
        "cross_seeded": 0,
        "cross_found_iu": 0,
        "cross_found_pp": 0,
    }
    for name in SWEEP:
        program = subject_program(name)
        engine = Pinpoint.from_source(program.source)
        pp_result, pp_seconds = time_only(lambda: engine.check(UseAfterFreeChecker()))
        baseline = IntraUnitBaseline(engine)
        iu_reports, iu_seconds = time_only(
            lambda: baseline.check(UseAfterFreeChecker())
        )
        _, iu_fps, _ = classify_reports(iu_reports, program.ground_truth)
        cross = [t for t in program.ground_truth if t.kind in CROSS_KINDS]

        def found_by(reports, truth):
            names = set(truth.functions)
            return any(
                r.source.function in names or r.sink.function in names
                for r in reports
            )

        cross_iu = sum(1 for t in cross if found_by(iu_reports, t))
        cross_pp = sum(1 for t in cross if found_by(pp_result.reports, t))
        totals["pp_seconds"] += pp_seconds
        totals["iu_seconds"] += iu_seconds
        totals["iu_reports"] += len(iu_reports)
        totals["iu_fps"] += len(iu_fps)
        totals["cross_seeded"] += len(cross)
        totals["cross_found_iu"] += cross_iu
        totals["cross_found_pp"] += cross_pp
        rows.append(
            (
                name,
                f"{pp_seconds:.2f}",
                f"{iu_seconds:.2f}",
                f"{len(iu_fps)}/{len(iu_reports)}",
                f"{cross_iu}/{len(cross)}",
                f"{cross_pp}/{len(cross)}",
            )
        )
    table = render_table(
        [
            "subject",
            "Pinpoint (s)",
            "intra-unit (s)",
            "intra-unit FP/rep",
            "cross-unit found (IU)",
            "cross-unit found (PP)",
        ],
        rows,
    )
    iu_fp_rate = totals["iu_fps"] / max(totals["iu_reports"], 1)
    table += (
        f"\n\nintra-unit total time {totals['iu_seconds']:.2f}s vs Pinpoint "
        f"{totals['pp_seconds']:.2f}s; intra-unit FP rate "
        f"{100 * iu_fp_rate:.1f}% (paper: Infer 35/35, CSA 24/26);"
        f"\ncross-unit bugs: intra-unit {totals['cross_found_iu']}/"
        f"{totals['cross_seeded']}, Pinpoint {totals['cross_found_pp']}/"
        f"{totals['cross_seeded']}"
    )
    record_result(table, "table3_other_tools")

    assert totals["iu_seconds"] < totals["pp_seconds"]  # faster, as in Table 3
    assert iu_fp_rate >= 0.5  # almost everything it reports is false
    assert totals["cross_found_iu"] == 0  # misses all cross-unit bugs
    assert totals["cross_found_pp"] == totals["cross_seeded"]


@pytest.mark.benchmark(group="table3")
def test_table3_intraunit_benchmark(benchmark):
    program = subject_program("git")
    engine = Pinpoint.from_source(program.source)
    baseline = IntraUnitBaseline(engine)
    benchmark(lambda: baseline.check(UseAfterFreeChecker()))
