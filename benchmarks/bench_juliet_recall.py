"""Section 5.1.2 — Recall on the Juliet-like suite.

The paper runs Pinpoint on the NSA Juliet Test Suite (1421 seeded
use-after-free/double-free defects across 51 flaw types) and detects all
of them.  Here the 51-variant structured suite from
:mod:`repro.synth.juliet` plays that role; recall must be 100% and the
"good" twin functions must stay clean.
"""

from __future__ import annotations

import pytest

from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.core.engine import Pinpoint
from repro.core.checkers import DoubleFreeChecker, UseAfterFreeChecker
from repro.synth.juliet import (
    generate_full_scale_suite,
    generate_juliet_suite,
    suite_source,
)


def _detected(case, reports) -> bool:
    prefix = case.bad_function.rsplit("_", 1)[0]
    for report in reports:
        touched = [report.source.function, report.sink.function] + [
            loc.function for loc in report.path
        ]
        if any(
            name.startswith(prefix)
            and name.endswith(("_bad", "_make", "_release"))
            for name in touched
        ):
            return True
    return False


def test_juliet_recall(record_result):
    cases = generate_juliet_suite()
    source = suite_source(cases)
    engine = Pinpoint.from_source(source)
    uaf, uaf_seconds = time_only(lambda: engine.check(UseAfterFreeChecker()))
    df, df_seconds = time_only(lambda: engine.check(DoubleFreeChecker()))
    reports = list(uaf) + list(df)

    rows = []
    missed = []
    for case in cases:
        hit = _detected(case, reports)
        if not hit:
            missed.append(case)
        rows.append(
            (
                case.ident,
                case.bug_kind,
                case.route,
                case.control,
                "found" if hit else "MISSED",
            )
        )
    table = render_table(["case", "kind", "route", "control", "status"], rows)
    good_fps = [
        r
        for r in reports
        if r.source.function.endswith("_good") or r.sink.function.endswith("_good")
    ]
    recall = (len(cases) - len(missed)) / len(cases)
    table += (
        f"\n\nrecall: {len(cases) - len(missed)}/{len(cases)} "
        f"({100 * recall:.1f}%); good-twin false positives: {len(good_fps)}"
        f"\nUAF pass {uaf_seconds:.2f}s, DF pass {df_seconds:.2f}s"
    )
    record_result(table, "juliet_recall")

    assert not missed, f"missed cases: {[c.ident for c in missed]}"
    assert not good_fps


def test_juliet_full_scale_recall(record_result):
    """The paper's actual suite size: 1421 seeded defects over 51 flaw
    types (here 51 x 28 = 1428).  All must be detected."""
    cases = generate_full_scale_suite()
    source = suite_source(cases)
    engine = Pinpoint.from_source(source)
    uaf, uaf_seconds = time_only(lambda: engine.check(UseAfterFreeChecker()))
    df, df_seconds = time_only(lambda: engine.check(DoubleFreeChecker()))
    reports = list(uaf) + list(df)
    flagged_prefixes = set()
    for report in reports:
        for name in (
            [report.source.function, report.sink.function]
            + [loc.function for loc in report.path]
        ):
            flagged_prefixes.add(name.rsplit("_", 1)[0])
    missed = [
        case
        for case in cases
        if case.bad_function.rsplit("_", 1)[0] not in flagged_prefixes
    ]
    good_fps = [
        r
        for r in reports
        if r.source.function.endswith("_good") or r.sink.function.endswith("_good")
    ]
    recall = (len(cases) - len(missed)) / len(cases)
    text = (
        f"full-scale suite: {len(cases)} seeded defects (paper: 1421)\n"
        f"recall: {len(cases) - len(missed)}/{len(cases)} ({100 * recall:.1f}%)\n"
        f"good-twin false positives: {len(good_fps)}\n"
        f"UAF pass {uaf_seconds:.2f}s, DF pass {df_seconds:.2f}s"
    )
    record_result(text, "juliet_full_scale")
    assert not missed
    assert not good_fps


@pytest.mark.benchmark(group="juliet")
def test_juliet_benchmark(benchmark):
    source = suite_source(generate_juliet_suite())
    engine = Pinpoint.from_source(source)
    benchmark(lambda: engine.check(UseAfterFreeChecker()))
