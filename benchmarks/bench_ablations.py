"""Ablations of Pinpoint's design choices (DESIGN.md index).

Three design levers the paper argues for, each toggled independently:

1. **Linear pre-filter** (Section 3.1.1): without the linear-time
   contradiction solver, every candidate path condition goes straight to
   the SMT solver — same reports, more SMT queries/time.
2. **Path sensitivity** (the SMT stage itself): without it, the seeded
   contradictory-branch traps become false positives — quantifying what
   the paper's full path-sensitivity buys in precision.
3. **Context depth** (Section 3.3.1, paper uses six nested levels):
   recall on deep call chains as the clone bound varies.
"""

from __future__ import annotations

import pytest

from conftest import subject_program
from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.core.engine import EngineConfig, Pinpoint
from repro.core.checkers import UseAfterFreeChecker
from repro.synth.generator import GeneratorConfig, classify_reports, generate_program


def test_ablation_linear_filter(record_result):
    program = subject_program("vim")
    rows = []
    results = {}
    for label, config in (
        ("with linear filter", EngineConfig(use_linear_filter=True)),
        ("without linear filter", EngineConfig(use_linear_filter=False)),
    ):
        engine = Pinpoint.from_source(program.source, config)
        result, seconds = time_only(lambda: engine.check(UseAfterFreeChecker()))
        results[label] = result
        rows.append(
            (
                label,
                f"{seconds:.2f}",
                len(result.reports),
                result.stats.smt_queries,
                result.stats.pruned_linear,
            )
        )
    table = render_table(
        ["configuration", "time (s)", "reports", "SMT queries", "linear prunes"],
        rows,
    )
    record_result(table, "ablation_linear_filter")
    with_filter = results["with linear filter"]
    without = results["without linear filter"]
    # Same verdicts; the filter only redistributes work.
    assert len(with_filter.reports) == len(without.reports)
    assert with_filter.stats.smt_queries <= without.stats.smt_queries


def test_ablation_path_sensitivity(record_result):
    program = subject_program("vim")
    rows = []
    outcome = {}
    for label, config in (
        ("path-sensitive (full)", EngineConfig(use_smt=True)),
        (
            "path-insensitive",
            EngineConfig(use_smt=False, use_linear_filter=False),
        ),
    ):
        engine = Pinpoint.from_source(program.source, config)
        result, seconds = time_only(lambda: engine.check(UseAfterFreeChecker()))
        tps, fps, missed = classify_reports(result.reports, program.ground_truth)
        outcome[label] = (len(fps), len(missed), len(result.reports))
        rows.append(
            (label, f"{seconds:.2f}", len(result.reports), len(fps), len(missed))
        )
    table = render_table(
        ["configuration", "time (s)", "reports", "false positives", "missed"],
        rows,
    )
    record_result(table, "ablation_path_sensitivity")
    sensitive_fps = outcome["path-sensitive (full)"][0]
    insensitive_fps = outcome["path-insensitive"][0]
    assert sensitive_fps == 0
    assert insensitive_fps > 0  # the seeded traps are reported
    # Recall never drops in either mode.
    assert outcome["path-sensitive (full)"][1] == 0
    assert outcome["path-insensitive"][1] == 0


DEEP_CHAIN = """
fn level5(p) { free(p); return 0; }
fn level4(p) { level5(p); return 0; }
fn level3(p) { level4(p); return 0; }
fn level2(p) { level3(p); return 0; }
fn level1(p) { level2(p); return 0; }
fn main() {
    p = malloc();
    level1(p);
    x = *p;
    return x;
}
"""


def test_ablation_context_depth(record_result):
    rows = []
    found_by_depth = {}
    for depth in (1, 2, 4, 6, 8):
        config = EngineConfig(max_call_depth=depth)
        engine = Pinpoint.from_source(DEEP_CHAIN, config)
        result = engine.check(UseAfterFreeChecker())
        found_by_depth[depth] = len(result.reports)
        rows.append((depth, len(result.reports)))
    table = render_table(["max call depth", "reports on 5-deep chain"], rows)
    table += "\n\n(the paper's evaluation uses six nested levels)"
    record_result(table, "ablation_context_depth")
    # The paper's default depth handles the 5-deep chain.
    assert found_by_depth[6] == 1
    assert found_by_depth[8] == 1


@pytest.mark.benchmark(group="ablations")
@pytest.mark.parametrize("use_filter", [True, False])
def test_ablation_filter_benchmark(benchmark, use_filter):
    program = subject_program("git")
    config = EngineConfig(use_linear_filter=use_filter)
    engine = Pinpoint.from_source(program.source, config)
    benchmark(lambda: engine.check(UseAfterFreeChecker()))
