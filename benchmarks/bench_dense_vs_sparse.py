"""Section 1 motivation — dense vs sparse value-flow analysis cost.

The paper opens by observing that dense designs (Saturn, Calysto, IFDS)
"propagate data-flow facts to all program points following control-flow
paths" and are known to have performance problems (6-11 hours at
685 KLoC for one property), while sparse analyses track values only
along data dependence.

This bench quantifies the density gap on a size ladder: the dense
baseline's per-statement propagation count vs the sparse engine's search
step count.  The dense count scales with (statements x rounds x facts),
the sparse count with value-flow edges actually relevant to the checked
property.
"""

from __future__ import annotations

import pytest

from repro.baselines.ifds import IFDSBaseline
from repro.bench.fitting import fit_power
from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.core.engine import Pinpoint
from repro.core.checkers import UseAfterFreeChecker
from repro.synth.generator import GeneratorConfig, generate_program

SIZES = [400, 800, 1600, 3200]


def test_dense_vs_sparse_work(record_result):
    rows = []
    lines_series = []
    dense_series = []
    sparse_series = []
    for size in SIZES:
        program = generate_program(GeneratorConfig(seed=31, target_lines=size))
        dense = IFDSBaseline.from_source(program.source)
        dense_reports, dense_seconds = time_only(dense.check_use_after_free)
        engine = Pinpoint.from_source(program.source)
        sparse_result, sparse_seconds = time_only(
            lambda: engine.check(UseAfterFreeChecker())
        )
        lines_series.append(program.line_count)
        dense_series.append(dense.stats.propagations)
        sparse_series.append(sparse_result.stats.search_steps)
        rows.append(
            (
                program.line_count,
                dense.stats.propagations,
                f"{dense_seconds:.2f}",
                sparse_result.stats.search_steps,
                f"{sparse_seconds:.2f}",
            )
        )
    table = render_table(
        [
            "lines",
            "dense propagations",
            "dense time (s)",
            "sparse search steps",
            "sparse time (s)",
        ],
        rows,
    )
    ratio = dense_series[-1] / max(sparse_series[-1], 1)
    table += (
        f"\n\non the largest size the dense analysis performs {ratio:.0f}x more "
        f"propagation steps than the sparse engine visits value-flow vertices"
    )
    record_result(table, "dense_vs_sparse")
    # The sparse engine touches far fewer program points.
    assert all(d > s for d, s in zip(dense_series, sparse_series))
    assert ratio > 5


@pytest.mark.benchmark(group="dense-vs-sparse")
def test_dense_benchmark(benchmark):
    program = generate_program(GeneratorConfig(seed=31, target_lines=800))
    baseline = IFDSBaseline.from_source(program.source)
    benchmark(baseline.check_use_after_free)


@pytest.mark.benchmark(group="dense-vs-sparse")
def test_sparse_benchmark(benchmark):
    program = generate_program(GeneratorConfig(seed=31, target_lines=800))
    engine = Pinpoint.from_source(program.source)
    benchmark(lambda: engine.check(UseAfterFreeChecker()))
