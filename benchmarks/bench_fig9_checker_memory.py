"""Fig. 9 — End-to-end checker memory: SEG-based vs FSVFG-based UAF.

Paper: the full Pinpoint pipeline (SEG building + bug checking) uses
10-30G *less* memory than SVF on subjects larger than 135 KLoC — and SVF
cannot even finish building its graph there.  Here the same end-to-end
comparison: prepare + check use-after-free with both systems.
"""

from __future__ import annotations

import pytest

from conftest import fig7_program
from repro.baselines.svf import SVFBaseline
from repro.bench.metrics import measure
from repro.bench.tables import render_table
from repro.core.engine import Pinpoint
from repro.core.checkers import UseAfterFreeChecker

SWEEP = ["gap", "perkbmk", "gcc", "git", "vim", "libicu", "php", "mysql"]


def run_pinpoint(source: str):
    return Pinpoint.from_source(source).check(UseAfterFreeChecker())


def run_svf(source: str):
    return SVFBaseline.from_source(source).check(UseAfterFreeChecker())


def test_fig9_checker_memory_sweep(record_result):
    rows = []
    series = []
    for name in SWEEP:
        program = fig7_program(name)
        _, pinpoint = measure(lambda: run_pinpoint(program.source))
        _, svf = measure(lambda: run_svf(program.source))
        series.append((name, program.line_count, pinpoint.peak_mb, svf.peak_mb))
        rows.append(
            (
                name,
                program.line_count,
                f"{pinpoint.peak_mb:.1f}",
                f"{svf.peak_mb:.1f}",
            )
        )
    table = render_table(
        ["subject", "gen lines", "Pinpoint peak (MB)", "SVF-based peak (MB)"],
        rows,
    )
    largest = series[-1]
    table += (
        f"\n\non the largest subject ({largest[0]}): Pinpoint "
        f"{largest[2]:.1f} MB vs SVF-based {largest[3]:.1f} MB "
        f"({largest[3] - largest[2]:+.1f} MB)"
    )
    record_result(table, "fig9_checker_memory")
    # Shape: on the largest subject the SEG-based checker needs less
    # memory than the FSVFG-based one (paper: 10-30G less).
    assert largest[2] < largest[3]


@pytest.mark.benchmark(group="fig9-checker")
def test_fig9_pinpoint_end_to_end_benchmark(benchmark):
    program = fig7_program("gcc")
    benchmark(lambda: run_pinpoint(program.source))


@pytest.mark.benchmark(group="fig9-checker")
def test_fig9_svf_end_to_end_benchmark(benchmark):
    program = fig7_program("gcc")
    benchmark(lambda: run_svf(program.source))
