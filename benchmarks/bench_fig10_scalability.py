"""Fig. 10 — Scalability of the SEG-based checker (curve fitting).

Paper: scatter time (min) and memory (G) against KLoC for all subjects,
fit curves, and report R²: both grow "almost linearly in practice"
(R² > 0.9).  Here: the same study over a program-size ladder; linear
least squares plus a power-law fit whose exponent quantifies the
observed complexity.
"""

from __future__ import annotations

import pytest

from repro.bench.fitting import fit_linear, fit_power
from repro.bench.metrics import measure
from repro.bench.tables import render_table
from repro.core.engine import Pinpoint
from repro.core.checkers import UseAfterFreeChecker
from repro.synth.generator import GeneratorConfig, generate_program

SIZES = [400, 800, 1600, 3200, 6400, 12800]


def end_to_end(source: str):
    return Pinpoint.from_source(source).check(UseAfterFreeChecker())


def test_fig10_scalability_fits(record_result):
    rows = []
    lines_series = []
    time_series = []
    memory_series = []
    for size in SIZES:
        program = generate_program(GeneratorConfig(seed=1234, target_lines=size))
        _, m = measure(lambda: end_to_end(program.source))
        lines_series.append(program.line_count)
        time_series.append(m.seconds)
        memory_series.append(m.peak_mb)
        rows.append(
            (program.line_count, f"{m.seconds:.2f}", f"{m.peak_mb:.1f}")
        )
    table = render_table(["lines", "time (s)", "peak memory (MB)"], rows)

    time_linear = fit_linear(lines_series, time_series)
    memory_linear = fit_linear(lines_series, memory_series)
    time_power = fit_power(lines_series, time_series)
    memory_power = fit_power(lines_series, memory_series)
    table += (
        f"\n\ntime   linear fit: {time_linear.describe()}"
        f"\nmemory linear fit: {memory_linear.describe()}"
        f"\ntime   power  fit: {time_power.describe()}"
        f"\nmemory power  fit: {memory_power.describe()}"
    )
    record_result(table, "fig10_scalability")

    # The paper's claim: nearly linear growth, R^2 > 0.9 on linear fits.
    assert time_linear.r_squared > 0.9
    assert memory_linear.r_squared > 0.9
    # Observed complexity exponents stay well below quadratic.
    assert time_power.coefficients[1] < 1.6
    assert memory_power.coefficients[1] < 1.3


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("size", [400, 1600])
def test_fig10_end_to_end_benchmark(benchmark, size):
    program = generate_program(GeneratorConfig(seed=1234, target_lines=size))
    benchmark(lambda: end_to_end(program.source))
