"""Table 2 — The SEG-based taint checkers on a MySQL-scale subject.

Paper's Table 2: on MySQL (2 MLoC, "typical code size in industry") the
path-traversal checker took 1.4 h / 43.1 GB with 11/56 FP reports, and
the data-transmission checker 1.5 h / 52.6 GB with 24/92 — an overall
taint FP rate of 23.6%.  Cost is "similar to that of use-after-free".

Here: both checkers run on the mysql stand-in with seeded taint flows;
time/memory are reported alongside the UAF checker's for the same
subject, and precision is measured against ground truth.
"""

from __future__ import annotations

import pytest

from conftest import subject_program
from repro.bench.metrics import measure
from repro.bench.tables import render_table
from repro.core.engine import Pinpoint
from repro.core.checkers import (
    DataTransmissionChecker,
    PathTraversalChecker,
    UseAfterFreeChecker,
)


def test_table2_taint_checkers(record_result):
    program = subject_program("mysql", taint=True)
    engine = Pinpoint.from_source(program.source)

    seeded = {
        "taint-path": sum(1 for t in program.ground_truth if t.kind == "taint-path"),
        "taint-data": sum(1 for t in program.ground_truth if t.kind == "taint-data"),
    }
    taint_functions = {
        kind: {
            fn
            for t in program.ground_truth
            if t.kind == kind
            for fn in t.functions
        }
        for kind in seeded
    }

    rows = []
    recall_ok = True
    fp_total = 0
    report_total = 0
    for checker, kind in (
        (PathTraversalChecker(), "taint-path"),
        (DataTransmissionChecker(), "taint-data"),
    ):
        result, m = measure(lambda: engine.check(checker))
        hits = set()
        fps = 0
        for report in result:
            touched = {report.source.function, report.sink.function}
            matched = touched & taint_functions[kind]
            if matched:
                hits.update(matched)
            else:
                fps += 1
        found = sum(
            1
            for t in program.ground_truth
            if t.kind == kind and set(t.functions) & hits
        )
        if found < seeded[kind]:
            recall_ok = False
        fp_total += fps
        report_total += len(result.reports)
        rows.append(
            (
                checker.name,
                f"{m.peak_mb:.1f}",
                f"{m.seconds:.2f}",
                f"{fps}/{len(result.reports)}",
                f"{found}/{seeded[kind]}",
            )
        )

    # Reference row: use-after-free on the same subject (the paper notes
    # taint cost is similar to UAF cost).
    uaf_result, uaf_m = measure(lambda: engine.check(UseAfterFreeChecker()))
    rows.append(
        (
            "use-after-free (ref)",
            f"{uaf_m.peak_mb:.1f}",
            f"{uaf_m.seconds:.2f}",
            f"-/{len(uaf_result.reports)}",
            "-",
        )
    )

    table = render_table(
        ["checker", "memory (MB)", "time (s)", "#FP/#Reports", "found/seeded"],
        rows,
    )
    fp_rate = fp_total / max(report_total, 1)
    table += f"\n\noverall taint FP rate: {100 * fp_rate:.1f}% (paper: 23.6%)"
    record_result(table, "table2_taint")

    assert recall_ok, "a seeded taint flow was missed"
    # The FPs are the soundiness-expected kind (loop imprecision — as in
    # the paper, where unmodeled features account for the 23.6%).
    assert fp_rate <= 0.35


@pytest.mark.benchmark(group="table2")
def test_table2_taint_benchmark(benchmark):
    program = subject_program("tmux", taint=True)
    engine = Pinpoint.from_source(program.source)
    benchmark(lambda: engine.check(PathTraversalChecker()))
