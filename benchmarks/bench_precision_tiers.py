"""Precision tiers — false-positive reduction and cost of ``--pta=fs``.

The paper's flow-sensitive points-to with strong updates exists to
remove false positives the cheap flow-insensitive tier reports, at a
bounded analysis-cost premium.  Three measurements reproduce that
trade-off on this engine's two tiers:

- the curated precision corpus (:mod:`repro.synth.precision`): the fs
  tier must strictly reduce false positives and lose zero true
  positives;
- the Juliet-like recall suite under both tiers: recall stays 100%
  under escalation (strong updates never hide a seeded defect);
- a Fig. 7/10-style cost sweep: full-module fs preparation vs fi
  preparation over scaled paper subjects, reporting the slowdown ratio.

Results land in ``benchmarks/results/`` and — when ``REPRO_HISTORY_DIR``
is armed — in the run-history store via the ``record_result`` fixture.
"""

from __future__ import annotations

import pytest

from conftest import subject_program
from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.core.checkers import DoubleFreeChecker, UseAfterFreeChecker
from repro.core.engine import EngineConfig, Pinpoint
from repro.core.pipeline import prepare_source
from repro.synth.juliet import generate_juliet_suite, suite_source as juliet_source
from repro.synth.precision import (
    generate_precision_suite,
    score_tier,
    suite_source,
)

TIERS = ("fi", "fs")
# Cost-sweep subjects: a spread of the paper catalog's sizes at the
# default bench scale.
SWEEP_SUBJECTS = ("mcf", "twolf", "tmux", "transmission")


def _check_corpus(tier: str):
    cases = generate_precision_suite()
    engine = Pinpoint.from_source(
        suite_source(cases), EngineConfig(pta_tier=tier, verify="fast")
    )
    result, seconds = time_only(lambda: engine.check(UseAfterFreeChecker()))
    assert not engine.diagnostics.entries, (
        f"tier {tier} degraded functions: "
        f"{[(d.unit, d.reason) for d in engine.diagnostics.entries]}"
    )
    return cases, result, seconds


def test_precision_corpus_fp_reduction(record_result):
    """fs strictly reduces false positives on the corpus, with zero
    true-positive loss — the PR's headline acceptance gate."""
    cases, scores, stats, seconds = {}, {}, {}, {}
    for tier in TIERS:
        suite, result, wall = _check_corpus(tier)
        cases[tier] = suite
        scores[tier] = score_tier(suite, result.reports)
        stats[tier] = result.stats
        seconds[tier] = wall

    rows = []
    for case in cases["fi"]:
        fi_hit = case.name in scores["fi"]["flagged"]
        fs_hit = case.name in scores["fs"]["flagged"]
        rows.append(
            (
                case.name,
                "bug" if case.is_bug else "fp",
                "yes" if fi_hit else "no",
                "yes" if fs_hit else "no",
                "removed" if fi_hit and not fs_hit else "kept",
            )
        )
    table = render_table(
        ["case", "ground truth", "fi reports", "fs reports", "fs verdict"], rows
    )
    fi_fp = len(scores["fi"]["false_positives"])
    fs_fp = len(scores["fs"]["false_positives"])
    table += (
        f"\n\nfalse positives: fi={fi_fp} -> fs={fs_fp}"
        f"\ntrue positives:  fi={len(scores['fi']['true_positives'])} -> "
        f"fs={len(scores['fs']['true_positives'])} (missed under fs: "
        f"{scores['fs']['missed_bugs'] or 'none'})"
        f"\nfs tier: {stats['fs'].strong_updates} strong / "
        f"{stats['fs'].weak_updates} weak updates, "
        f"{stats['fs'].escalated_functions} functions escalated"
        f"\nchecker wall: fi {seconds['fi']:.3f}s, fs {seconds['fs']:.3f}s"
    )
    record_result(table, "precision_tiers_corpus")

    assert not scores["fi"]["missed_bugs"]
    assert not scores["fs"]["missed_bugs"]  # zero true-positive loss
    assert fs_fp < fi_fp  # strict false-positive reduction
    assert stats["fs"].strong_updates > 0


def test_precision_juliet_recall_both_tiers(record_result):
    """Escalation must never lose a seeded Juliet defect: recall stays
    100% under fs and the good twins stay clean."""
    juliet = generate_juliet_suite()
    source = juliet_source(juliet)
    lines = []
    for tier in TIERS:
        engine = Pinpoint.from_source(source, EngineConfig(pta_tier=tier))
        uaf = engine.check(UseAfterFreeChecker())
        df = engine.check(DoubleFreeChecker())
        reports = list(uaf) + list(df)
        flagged = set()
        for report in reports:
            for name in (
                [report.source.function, report.sink.function]
                + [loc.function for loc in report.path]
            ):
                flagged.add(name.rsplit("_", 1)[0])
        missed = [
            case for case in juliet
            if case.bad_function.rsplit("_", 1)[0] not in flagged
        ]
        good_fps = [
            r for r in reports
            if r.source.function.endswith("_good")
            or r.sink.function.endswith("_good")
        ]
        lines.append(
            f"tier {tier}: recall {len(juliet) - len(missed)}/{len(juliet)}, "
            f"good-twin FPs {len(good_fps)}, "
            f"escalated {uaf.stats.escalated_functions + df.stats.escalated_functions}"
        )
        assert not missed, f"tier {tier} missed {[c.ident for c in missed]}"
        assert not good_fps
    record_result("\n".join(lines), "precision_tiers_juliet")


def test_precision_tier_cost_sweep(record_result):
    """Full-module fs preparation vs fi over scaled paper subjects — the
    Fig. 7/10-style cost axis of the precision trade-off."""
    rows = []
    ratios = []
    for name in SWEEP_SUBJECTS:
        program = subject_program(name)
        _, fi_seconds = time_only(
            lambda: prepare_source(program.source, pta_tier="fi")
        )
        _, fs_seconds = time_only(
            lambda: prepare_source(program.source, pta_tier="fs")
        )
        ratio = fs_seconds / max(fi_seconds, 1e-9)
        ratios.append(ratio)
        rows.append(
            (
                name,
                program.line_count,
                f"{fi_seconds:.3f}",
                f"{fs_seconds:.3f}",
                f"{ratio:.2f}x",
            )
        )
    table = render_table(
        ["subject", "gen lines", "fi prepare (s)", "fs prepare (s)", "slowdown"],
        rows,
    )
    table += (
        f"\n\nmedian fs/fi slowdown: {sorted(ratios)[len(ratios) // 2]:.2f}x "
        f"(max {max(ratios):.2f}x)"
    )
    record_result(table, "precision_tiers_cost")

    # The sparse fs pass must stay within a small constant factor of fi;
    # a blow-up here means the def-use-driven solver lost its sparseness.
    assert max(ratios) < 25.0


@pytest.mark.benchmark(group="precision-tiers")
def test_precision_fs_check_benchmark(benchmark):
    source = suite_source(generate_precision_suite())

    def run():
        engine = Pinpoint.from_source(source, EngineConfig(pta_tier="fs"))
        return engine.check(UseAfterFreeChecker())

    benchmark(run)
