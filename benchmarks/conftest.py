"""Shared fixtures for the benchmark harness.

Each bench regenerates one table or figure of the paper.  Subjects are
the paper's 30 programs (Table 1) synthesized at a configurable scale
(``LINES_PER_KLOC`` generated lines per paper-KLoC), cached per session.

Bench output (the tables/series mirroring the paper) is printed and also
written to ``benchmarks/results/<name>.txt`` so the artifacts survive
pytest's output capture.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

import pytest

from repro.synth.projects import PAPER_SUBJECTS, Subject, synthesize_subject

# Scale knob: paper-KLoC -> generated source lines.  1.0 keeps the full
# 30-subject sweep (~14k generated lines overall) comfortably fast while
# preserving the subjects' relative sizes.
LINES_PER_KLOC = float(os.environ.get("REPRO_LINES_PER_KLOC", "1.0"))
# The Fig. 7/8 build-cost sweeps use a larger scale so the layered
# baseline's quadratic term dominates on the largest subjects, as in the
# paper (where FSVFG construction times out past 135 KLoC).
FIG7_LINES_PER_KLOC = float(os.environ.get("REPRO_FIG7_SCALE", "6.0"))
FIG7_MAX_LINES = int(os.environ.get("REPRO_FIG7_MAX_LINES", "48000"))
# Per-subject budget for the layered baseline, standing in for the
# paper's 12-hour timeout.
SVF_TIMEOUT_SECONDS = float(os.environ.get("REPRO_SVF_TIMEOUT", "10.0"))

RESULTS_DIR = Path(__file__).parent / "results"


@functools.lru_cache(maxsize=None)
def subject_program(name: str, taint: bool = False, scale: float | None = None):
    entry = next(s for s in PAPER_SUBJECTS if s.name == name)
    return synthesize_subject(
        entry, lines_per_kloc=scale or LINES_PER_KLOC, taint=taint
    )


@functools.lru_cache(maxsize=None)
def fig7_program(name: str):
    """Larger-scale subjects for the build-cost sweeps (Figs. 7/8)."""
    entry = next(s for s in PAPER_SUBJECTS if s.name == name)
    return synthesize_subject(
        entry, lines_per_kloc=FIG7_LINES_PER_KLOC, max_lines=FIG7_MAX_LINES
    )


@pytest.fixture(scope="session")
def subjects():
    """All 30 paper subjects ordered by size."""
    return sorted(PAPER_SUBJECTS, key=lambda s: s.kloc)


@pytest.fixture(scope="session")
def small_subjects(subjects):
    """The smaller half, for memory benches (tracemalloc is slow)."""
    return subjects[:14]


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir, request):
    """Print a result block and persist it under benchmarks/results/.

    When ``REPRO_HISTORY_DIR`` is set, every bench result also lands as
    a run record in the history store (command ``bench``), so ``repro
    history trend`` can track benchmark trajectories alongside CLI runs.
    """
    import time

    start = time.perf_counter()

    def writer(text: str, name: str | None = None) -> None:
        stem = name or request.node.name
        path = results_dir / f"{stem}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        _record_bench_history(stem, text, time.perf_counter() - start)

    return writer


def _record_bench_history(stem: str, text: str, wall_seconds: float) -> None:
    """Append one ``bench`` run record when the history store is armed."""
    from repro.obs.history import (
        HistoryStore,
        collect_run_record,
        fingerprint_text,
        resolve_history_dir,
    )
    from repro.obs.metrics import get_registry

    history_dir = resolve_history_dir()
    if not history_dir:
        return
    record = collect_run_record(
        get_registry(),
        command="bench",
        label=stem,
        # Bench subjects are deterministic per (name, scale), so the
        # identity of the workload — not the result text — is the
        # comparable-runs key.
        fingerprint=fingerprint_text(f"bench:{stem}:{LINES_PER_KLOC}"),
        config={"lines_per_kloc": LINES_PER_KLOC},
        wall_seconds=wall_seconds,
        digest=fingerprint_text(text),
    )
    HistoryStore(history_dir).append(record)
