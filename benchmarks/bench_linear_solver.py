"""Section 3.1.1 — The linear-time contradiction solver's effectiveness.

Two empirical claims back the quasi path-sensitive design:

1. about 70% of the path conditions constructed during the points-to
   analysis are satisfiable (so solving them eagerly with a full SMT
   solver would be redundant work, repeated at bug-finding time);
2. more than 90% of the *unsatisfiable* conditions are "easy"
   contradictions (``a & !a``) that the linear-time solver catches.

This bench collects the condition corpus the local analyses build over a
subject ladder, classifies every condition with the full SMT solver as
ground truth, and measures what fraction of the unsatisfiable ones the
linear solver filters — plus the speed gap between the two solvers.
"""

from __future__ import annotations

import pytest

from conftest import subject_program
from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.core.pipeline import prepare_source
from repro.smt.linear_solver import LinearSolver
from repro.smt.solver import Result, SMTSolver

SWEEP = ["tmux", "git", "vim"]


def _condition_corpus(source: str):
    """All conditions attached to memory data dependence by the local
    points-to analyses (load values, points-to sets, store targets)."""
    prepared = prepare_source(source)
    corpus = []
    seen = set()
    for function in prepared:
        result = function.points_to
        for values in result.load_values.values():
            for _, cond in values:
                if cond.ident not in seen:
                    seen.add(cond.ident)
                    corpus.append(cond)
        for targets in result.store_targets.values():
            for _, cond in targets:
                if cond.ident not in seen:
                    seen.add(cond.ident)
                    corpus.append(cond)
    return corpus


def test_linear_solver_effectiveness(record_result):
    rows = []
    total = sat = unsat = caught = 0
    linear_seconds = 0.0
    smt_seconds = 0.0
    for name in SWEEP:
        program = subject_program(name)
        corpus = _condition_corpus(program.source)
        smt = SMTSolver()
        linear = LinearSolver()
        subject_sat = subject_unsat = subject_caught = 0
        for cond in corpus:
            flagged, t_lin = time_only(lambda: linear.is_obviously_unsat(cond))
            linear_seconds += t_lin
            answer, t_smt = time_only(lambda: smt.check(cond))
            smt_seconds += t_smt
            if answer is Result.UNSAT:
                subject_unsat += 1
                if flagged:
                    subject_caught += 1
            else:
                subject_sat += 1
                assert not flagged, "linear solver flagged a satisfiable condition"
        total += len(corpus)
        sat += subject_sat
        unsat += subject_unsat
        caught += subject_caught
        rows.append(
            (
                name,
                len(corpus),
                subject_sat,
                subject_unsat,
                subject_caught,
            )
        )
    table = render_table(
        ["subject", "conditions", "sat", "unsat", "caught by linear"], rows
    )
    sat_fraction = sat / max(total, 1)
    caught_fraction = caught / max(unsat, 1) if unsat else 1.0
    speedup = smt_seconds / max(linear_seconds, 1e-9)
    table += (
        f"\n\nsatisfiable fraction: {100 * sat_fraction:.1f}% (paper: ~70%)"
        f"\nunsat caught by linear solver: {caught}/{unsat} "
        f"({100 * caught_fraction:.1f}%; paper: >90%)"
        f"\nlinear solver is {speedup:.0f}x faster than the SMT solver on this corpus"
    )
    record_result(table, "linear_solver")

    # Note: the local analysis already *drops* entries whose conditions
    # the linear filter catches, so the surviving corpus is mostly
    # satisfiable — exactly the paper's motivation for not running a full
    # SMT solver at this stage.
    assert sat_fraction >= 0.5
    assert speedup > 2


def test_linear_solver_on_raw_merge_conditions(record_result):
    """Re-run the local analyses with a recording linear solver to see
    the *pre-filter* corpus, measuring how many constructed conditions
    were easy contradictions."""
    program = subject_program("git")
    prepared = prepare_source(program.source)
    built = sum(f.points_to.conditions_built for f in prepared)
    pruned = sum(f.points_to.conditions_pruned for f in prepared)
    share = pruned / max(built, 1)
    text = (
        f"conditions built during local points-to: {built}\n"
        f"pruned immediately by the linear solver: {pruned} "
        f"({100 * share:.2f}%)"
    )
    record_result(text, "linear_solver_prefilter")
    assert built > 0


def test_easy_unsat_share_at_checking_stage(record_result):
    """Paper claim: >90% of unsatisfiable path conditions are 'easy'
    contradictions the linear solver catches.  Measured here on the
    bug-candidate conditions: the engine's linear prunes are the easy
    unsat conditions, the SMT prunes the hard ones."""
    from repro.core.engine import Pinpoint
    from repro.core.checkers import UseAfterFreeChecker

    rows = []
    easy_total = 0
    hard_total = 0
    for name in ("vim", "libicu", "php", "mysql"):
        program = subject_program(name)
        result = Pinpoint.from_source(program.source).check(UseAfterFreeChecker())
        easy = result.stats.pruned_linear
        hard = result.stats.pruned_smt
        easy_total += easy
        hard_total += hard
        rows.append((name, result.stats.candidates, easy, hard))
    table = render_table(
        ["subject", "candidates", "easy unsat (linear)", "hard unsat (SMT)"], rows
    )
    unsat_total = easy_total + hard_total
    share = easy_total / max(unsat_total, 1)
    table += (
        f"\n\neasy share of unsatisfiable conditions: {easy_total}/{unsat_total} "
        f"({100 * share:.1f}%; paper: >90%)"
    )
    record_result(table, "linear_solver_easy_share")
    assert unsat_total > 0
    assert share >= 0.7


@pytest.mark.benchmark(group="linear-solver")
def test_linear_solver_benchmark(benchmark):
    program = subject_program("tmux")
    corpus = _condition_corpus(program.source)
    linear = LinearSolver()
    benchmark(lambda: [linear.is_obviously_unsat(c) for c in corpus])


@pytest.mark.benchmark(group="linear-solver")
def test_smt_solver_benchmark(benchmark):
    program = subject_program("tmux")
    corpus = _condition_corpus(program.source)

    def run():
        smt = SMTSolver()
        return [smt.check(c) for c in corpus]

    benchmark(run)
