"""Fig. 8 — Memory cost: building SEG vs building the global FSVFG.

Paper: the two are close on small subjects (Δ≈3G at 50 KLoC); past the
135 KLoC threshold FSVFG needs 40-60G *more* while failing to finish.
Here: peak tracemalloc bytes over the build, same sweep, same shape —
the FSVFG's materialized store→load edges grow quadratically, the SEG's
per-function edges near-linearly.
"""

from __future__ import annotations

import pytest

from conftest import fig7_program
from repro.baselines.svf import SVFBaseline
from repro.bench.fitting import fit_power
from repro.bench.metrics import measure
from repro.bench.tables import render_table
from repro.core.engine import Pinpoint

# Memory measurement is slow under tracemalloc; sweep a size-ladder
# subset of the catalog rather than all 30 subjects.
SWEEP = [
    "gzip",
    "crafty",
    "gap",
    "vortex",
    "perkbmk",
    "gcc",
    "git",
    "vim",
    "libicu",
    "php",
    "mysql",
]


def test_fig8_build_memory_sweep(record_result):
    rows = []
    series = []
    for name in SWEEP:
        program = fig7_program(name)
        _, seg = measure(lambda: Pinpoint.from_source(program.source))
        _, svf = measure(lambda: SVFBaseline.from_source(program.source).build())
        series.append((name, program.line_count, seg.peak_mb, svf.peak_mb))
        rows.append(
            (
                name,
                program.line_count,
                f"{seg.peak_mb:.1f}",
                f"{svf.peak_mb:.1f}",
                f"{svf.peak_mb - seg.peak_mb:+.1f}",
            )
        )
    table = render_table(
        ["subject", "gen lines", "SEG peak (MB)", "FSVFG peak (MB)", "delta (MB)"],
        rows,
    )
    floor = 500
    points = [s for s in series if s[1] >= floor]
    seg_fit = fit_power([p[1] for p in points], [p[2] for p in points])
    svf_fit = fit_power([p[1] for p in points], [p[3] for p in points])
    small = points[0]
    large = points[-1]
    table += (
        f"\n\nSEG memory:   {seg_fit.describe()}"
        f"\nFSVFG memory: {svf_fit.describe()}"
        f"\ndelta grows from {small[3] - small[2]:+.1f} MB ({small[0]}) to "
        f"{large[3] - large[2]:+.1f} MB ({large[0]})"
    )
    record_result(table, "fig8_build_memory")

    # Shape: FSVFG memory grows with a larger exponent, and the absolute
    # gap widens with size (the paper's Δ≈3G -> Δ>60G progression).
    assert svf_fit.coefficients[1] > seg_fit.coefficients[1]
    assert (large[3] - large[2]) > (small[3] - small[2])


@pytest.mark.benchmark(group="fig8-memory")
def test_fig8_seg_build_benchmark(benchmark):
    program = fig7_program("gcc")
    benchmark(lambda: Pinpoint.from_source(program.source))


@pytest.mark.benchmark(group="fig8-memory")
def test_fig8_fsvfg_build_benchmark(benchmark):
    program = fig7_program("gcc")
    benchmark(lambda: SVFBaseline.from_source(program.source).build())
