"""Section 5.2 — bugs of high structural complexity.

The paper's flagship finding is a MySQL use-after-free spanning 36
functions over 11 compilation units, plus a LibICU bug hidden for ten
years (CVE-2017-14952).  This bench measures how detection cost grows
with the *depth* of a seeded inter-procedural use-after-free, using the
deep-bug builder: the value flow crosses N functions through VF1/VF3
summaries, heap hops, and conditional guards.

Shape assertion: the bug is found at every depth up to (and past) the
paper's 36 functions, with cost growing smoothly rather than
exponentially in depth.
"""

from __future__ import annotations

import pytest

from repro.bench.fitting import fit_power
from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.core.engine import Pinpoint
from repro.core.checkers import UseAfterFreeChecker
from repro.synth.deepbug import build_deep_bug

DEPTHS = [6, 12, 24, 36, 48]


def test_deep_bug_depth_sweep(record_result):
    rows = []
    times = []
    for depth in DEPTHS:
        bug = build_deep_bug(depth=depth)
        engine, prep_seconds = time_only(lambda: Pinpoint.from_source(bug.source))
        result, check_seconds = time_only(
            lambda: engine.check(UseAfterFreeChecker())
        )
        found = any(
            r.source.function == bug.free_function
            and r.sink.function == bug.deref_function
            for r in result
        )
        times.append(prep_seconds + check_seconds)
        rows.append(
            (
                depth,
                f"{prep_seconds:.2f}",
                f"{check_seconds:.2f}",
                "found" if found else "MISSED",
            )
        )
        assert found, f"missed the seeded bug at depth {depth}"
    table = render_table(
        ["bug depth (functions)", "prepare (s)", "check (s)", "status"], rows
    )
    fit = fit_power(DEPTHS, times)
    table += (
        f"\n\ncost vs depth: {fit.describe()}"
        f"\n(the paper's MySQL finding spans 36 functions)"
    )
    record_result(table, "deep_bug_depth")
    # Smooth growth: no exponential blow-up in depth.
    assert fit.coefficients[1] < 3.0


@pytest.mark.benchmark(group="deep-bug")
def test_deep_bug_36_benchmark(benchmark):
    bug = build_deep_bug(depth=36)
    engine = Pinpoint.from_source(bug.source)
    benchmark(lambda: engine.check(UseAfterFreeChecker()))
