"""Extension bench — analysis-as-a-service latency.

Not a paper table: this measures the reason the ``repro daemon``
exists.  A resident analysis process holds warm per-session artifact
caches (prepare cache + check memo), so the latency story splits into
three request kinds:

- **cold** — first check of a program: full parse/prepare/SEG/search;
- **warm** — re-check of the identical program: everything replayed;
- **edit** — single-function delta: only the invalidation cone is
  re-prepared and re-searched.

The bench self-hosts a :class:`ServiceServer`, drives it with the
mixed-workload load generator over real HTTP, and reports
client-visible p50/p95/p99 per kind.  The acceptance bar asserted at
the bottom — warm single-function edit p50 at least **10x** faster
than a cold check of the same subject — is the daemon's contract with
interactive callers (an editor save should cost milliseconds, not the
full pipeline).

The per-kind quantiles land in ``benchmarks/results/`` as both a table
and a ``service_latency.json`` trajectory; with ``REPRO_HISTORY_DIR``
set, the run record additionally carries the merged
``service.request_seconds`` histogram, which ``repro history trend``
gates (exit 5) against the rolling baseline.
"""

from __future__ import annotations

import json
import os

from repro.bench.tables import render_table
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.service import LoadConfig, ServiceConfig, ServiceServer, run_load
from repro.service.loadgen import percentile

#: The warm-edit-vs-cold contract the daemon must honor.
EDIT_SPEEDUP_FLOOR = float(os.environ.get("REPRO_SERVICE_SPEEDUP_FLOOR", "10"))

CLIENTS = int(os.environ.get("REPRO_SERVICE_CLIENTS", "2"))
EDITS_PER_CLIENT = int(os.environ.get("REPRO_SERVICE_EDITS", "6"))
TARGET_LINES = int(os.environ.get("REPRO_SERVICE_LINES", "600"))


def _row(kind: str, values) -> tuple:
    return (
        kind,
        len(values),
        f"{percentile(values, 0.50) * 1000:.1f}",
        f"{percentile(values, 0.95) * 1000:.1f}",
        f"{percentile(values, 0.99) * 1000:.1f}",
        f"{values[-1] * 1000:.1f}" if values else "-",
    )


def test_service_latency(record_result, results_dir):
    # Fresh registry so the service histogram this run records into the
    # history store reflects only this bench's traffic.
    set_registry(MetricsRegistry())
    config = ServiceConfig(workers=2)
    with ServiceServer(config) as server:
        report = run_load(
            server.port,
            LoadConfig(
                clients=CLIENTS,
                edits_per_client=EDITS_PER_CLIENT,
                target_lines=TARGET_LINES,
            ),
        )

    assert not report.errors, report.errors
    cold = report.latencies("cold")
    warm = report.latencies("warm")
    edit = report.latencies("edit")
    assert cold and warm and edit

    cold_p50 = percentile(cold, 0.50)
    edit_p50 = percentile(edit, 0.50)
    speedup = cold_p50 / max(edit_p50, 1e-9)

    rows = [_row(k, v) for k, v in (("cold", cold), ("warm", warm), ("edit", edit))]
    table = render_table(
        ["kind", "n", "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)"], rows
    )
    table += (
        f"\n\nsubject: ~{TARGET_LINES} lines x {CLIENTS} clients, "
        f"{EDITS_PER_CLIENT} edits each; wall {report.wall_seconds:.2f}s, "
        f"{report.rejected} rejected (429)"
        f"\nwarm-edit speedup over cold: {speedup:.1f}x "
        f"(floor: {EDIT_SPEEDUP_FLOOR:.0f}x)"
    )
    record_result(table, "service_latency")

    trajectory = {
        "benchmark": "service_latency",
        "summary": report.summary(),
        "speedup_edit_vs_cold": round(speedup, 2),
        "samples": report.samples,
    }
    (results_dir / "service_latency.json").write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    )

    # Identity across kinds: the same session must report the same
    # fingerprint for cold and warm, and the same findings count.
    by_kind = {}
    for sample in report.samples:
        by_kind.setdefault(sample["kind"], []).append(sample)
    assert {s["fingerprint"] for s in by_kind["cold"]} == {
        s["fingerprint"] for s in by_kind["warm"]
    }

    # The acceptance bar: millisecond-class warm edits.
    assert speedup >= EDIT_SPEEDUP_FLOOR, (
        f"warm edit p50 {edit_p50 * 1000:.1f}ms is only {speedup:.1f}x "
        f"faster than cold p50 {cold_p50 * 1000:.1f}ms "
        f"(need >= {EDIT_SPEEDUP_FLOOR:.0f}x)"
    )
