"""Extension bench — incremental re-analysis.

Not a paper table: the paper's deployment context (commercial tools run
per-commit) motivates function-level incrementality, which Pinpoint's
compositional design makes natural.  Measured: cold analysis vs
re-analysis after (a) no edit, (b) a body-only edit, (c) an
interface-changing edit, on a mid-size subject.
"""

from __future__ import annotations

import pytest

from conftest import subject_program
from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.core.incremental import IncrementalAnalyzer


def _edit_body(source: str) -> str:
    # Append a new leaf function: exactly one function to (re)analyze.
    return source + "\nfn appended_probe(a) { return a * 3 + 1; }\n"


def test_incremental_reanalysis(record_result):
    program = subject_program("vim")
    analyzer = IncrementalAnalyzer()

    _, cold = time_only(lambda: analyzer.analyze(program.source))
    cold_stats = analyzer.last_stats

    _, noop = time_only(lambda: analyzer.analyze(program.source))
    noop_stats = analyzer.last_stats

    _, edited = time_only(lambda: analyzer.analyze(_edit_body(program.source)))
    edited_stats = analyzer.last_stats

    rows = [
        ("cold", f"{cold:.2f}", cold_stats.analyzed, cold_stats.reused),
        ("no edit", f"{noop:.2f}", noop_stats.analyzed, noop_stats.reused),
        ("one new function", f"{edited:.2f}", edited_stats.analyzed, edited_stats.reused),
    ]
    table = render_table(["run", "time (s)", "functions analyzed", "reused"], rows)
    table += f"\n\nre-analysis speedup after a local edit: {cold / max(edited, 1e-9):.1f}x"
    record_result(table, "incremental")

    assert noop_stats.analyzed == 0
    assert edited_stats.analyzed == 1
    assert noop < cold
    assert edited < cold


@pytest.mark.benchmark(group="incremental")
def test_incremental_noop_benchmark(benchmark):
    program = subject_program("git")
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(program.source)
    benchmark(lambda: analyzer.analyze(program.source))


@pytest.mark.benchmark(group="incremental")
def test_cold_analysis_benchmark(benchmark):
    program = subject_program("git")

    def cold():
        return IncrementalAnalyzer().analyze(program.source)

    benchmark(cold)


def test_disk_cache_cold_vs_warm(record_result, results_dir, tmp_path):
    """Persistent artifact store: a warm run must skip ~all preparation."""
    import json

    from repro.cache.store import SummaryStore
    from repro.core.pipeline import prepare_source
    from repro.obs.metrics import MetricsRegistry, get_registry, set_registry

    program = subject_program("vim")
    store = SummaryStore(str(tmp_path / "cache"))

    def run():
        set_registry(MetricsRegistry())
        _, seconds = time_only(lambda: prepare_source(program.source, store=store))
        registry = get_registry()
        return {
            "seconds": seconds,
            "hits": registry.counter("cache.hits").total(),
            "misses": registry.counter("cache.misses").total(),
        }

    cold = run()
    warm = run()
    lookups = warm["hits"] + warm["misses"]
    hit_rate = warm["hits"] / max(lookups, 1)

    payload = {
        "subject": "vim",
        "cold": cold,
        "warm": warm,
        "warm_hit_rate": hit_rate,
        "speedup": cold["seconds"] / max(warm["seconds"], 1e-9),
    }
    (results_dir / "cache_cold_vs_warm.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    rows = [
        ("cold", f"{cold['seconds']:.2f}", int(cold["hits"]), int(cold["misses"])),
        ("warm", f"{warm['seconds']:.2f}", int(warm["hits"]), int(warm["misses"])),
    ]
    table = render_table(["run", "time (s)", "cache hits", "cache misses"], rows)
    table += f"\n\nwarm hit rate: {hit_rate:.0%}, speedup: {payload['speedup']:.1f}x"
    record_result(table, "cache_cold_vs_warm")

    assert cold["hits"] == 0
    assert hit_rate >= 0.9
    assert warm["seconds"] < cold["seconds"]


def test_parallel_scaling_serial_vs_jobs(record_result, results_dir):
    """Wave-scheduler scaling: wall-clock of --jobs 1 vs --jobs 4.

    Synthetic subjects at bench scale are small, so this measures
    overhead + scaling shape rather than big speedups; the JSON artifact
    keeps the curve comparable across revisions.
    """
    import json

    from repro.core.pipeline import prepare_source
    from repro.obs.metrics import MetricsRegistry, set_registry

    program = subject_program("git")
    series = []
    for jobs in (1, 2, 4):
        # Fresh registry per point so the sched.dispatch.* counters
        # attribute serialization cost to exactly this run.
        registry = set_registry(MetricsRegistry())
        _, seconds = time_only(lambda: prepare_source(program.source, jobs=jobs))
        point = {"jobs": jobs, "seconds": seconds}
        for counter in ("serialize_seconds", "serialize_bytes"):
            metric = registry.get(f"sched.dispatch.{counter}")
            value = metric.total() if metric is not None else 0.0
            point[counter] = int(value) if counter.endswith("bytes") else value
        series.append(point)
    set_registry(MetricsRegistry())

    serial = series[0]["seconds"]
    for point in series:
        point["speedup"] = serial / max(point["seconds"], 1e-9)

    (results_dir / "parallel_scaling.json").write_text(
        json.dumps({"subject": "git", "series": series}, indent=2) + "\n"
    )
    rows = [
        (
            str(p["jobs"]),
            f"{p['seconds']:.2f}",
            f"{p['speedup']:.2f}x",
            f"{p['serialize_seconds'] * 1e3:.1f}",
            f"{p['serialize_bytes'] / 1024:.0f}",
        )
        for p in series
    ]
    record_result(
        render_table(
            ["jobs", "time (s)", "speedup", "serialize (ms)", "payload (KiB)"],
            rows,
        ),
        "parallel_scaling",
    )

    assert all(p["seconds"] > 0 for p in series)
    # Parallel points shipped real payloads; the serial point shipped none.
    assert series[0]["serialize_bytes"] == 0
    assert all(p["serialize_bytes"] > 0 for p in series[1:])
