"""Extension bench — incremental re-analysis.

Not a paper table: the paper's deployment context (commercial tools run
per-commit) motivates function-level incrementality, which Pinpoint's
compositional design makes natural.  Measured: cold analysis vs
re-analysis after (a) no edit, (b) a body-only edit, (c) an
interface-changing edit, on a mid-size subject.
"""

from __future__ import annotations

import pytest

from conftest import subject_program
from repro.bench.metrics import time_only
from repro.bench.tables import render_table
from repro.core.incremental import IncrementalAnalyzer


def _edit_body(source: str) -> str:
    # Append a new leaf function: exactly one function to (re)analyze.
    return source + "\nfn appended_probe(a) { return a * 3 + 1; }\n"


def test_incremental_reanalysis(record_result):
    program = subject_program("vim")
    analyzer = IncrementalAnalyzer()

    _, cold = time_only(lambda: analyzer.analyze(program.source))
    cold_stats = analyzer.last_stats

    _, noop = time_only(lambda: analyzer.analyze(program.source))
    noop_stats = analyzer.last_stats

    _, edited = time_only(lambda: analyzer.analyze(_edit_body(program.source)))
    edited_stats = analyzer.last_stats

    rows = [
        ("cold", f"{cold:.2f}", cold_stats.analyzed, cold_stats.reused),
        ("no edit", f"{noop:.2f}", noop_stats.analyzed, noop_stats.reused),
        ("one new function", f"{edited:.2f}", edited_stats.analyzed, edited_stats.reused),
    ]
    table = render_table(["run", "time (s)", "functions analyzed", "reused"], rows)
    table += f"\n\nre-analysis speedup after a local edit: {cold / max(edited, 1e-9):.1f}x"
    record_result(table, "incremental")

    assert noop_stats.analyzed == 0
    assert edited_stats.analyzed == 1
    assert noop < cold
    assert edited < cold


@pytest.mark.benchmark(group="incremental")
def test_incremental_noop_benchmark(benchmark):
    program = subject_program("git")
    analyzer = IncrementalAnalyzer()
    analyzer.analyze(program.source)
    benchmark(lambda: analyzer.analyze(program.source))


@pytest.mark.benchmark(group="incremental")
def test_cold_analysis_benchmark(benchmark):
    program = subject_program("git")

    def cold():
        return IncrementalAnalyzer().analyze(program.source)

    benchmark(cold)
