"""Edge-case tests for the local points-to analysis and Mod/Ref."""

from repro.core.pipeline import prepare_source
from repro.ir import cfg
from repro.ir.lower import lower_function
from repro.ir.ssa import base_name, to_ssa
from repro.lang.parser import parse_function
from repro.pta.intraproc import MAX_AUX_DEPTH, PointsToAnalysis
from repro.pta.memory import (
    AuxObject,
    aux_param_name,
    aux_return_name,
    parse_aux_param,
)
from repro.smt import terms as T


def analyze(source: str):
    func = to_ssa(lower_function(parse_function(source)))
    analysis = PointsToAnalysis(func)
    return func, analysis.run()


def find_load(func, dest_base):
    for instr in func.all_instrs():
        if isinstance(instr, cfg.Load) and base_name(instr.dest) == dest_base:
            return instr
    raise AssertionError(f"no load defining {dest_base}")


# ----------------------------------------------------------------------
# Aux naming helpers
# ----------------------------------------------------------------------
def test_aux_name_roundtrip():
    assert parse_aux_param(aux_param_name("q", 2)) == ("q", 2)
    assert parse_aux_param(aux_param_name("q", 2) + ".0") == ("q", 2)
    assert parse_aux_param("ordinary") is None
    assert parse_aux_param(aux_return_name("q", 1)) is None


def test_aux_object_identity():
    a = AuxObject("f", "q", 1)
    b = AuxObject("f", "q", 1)
    c = AuxObject("f", "q", 2)
    d = AuxObject("g", "q", 1)
    assert a == b and hash(a) == hash(b)
    assert a != c and a != d


# ----------------------------------------------------------------------
# Depth limits and deep chains
# ----------------------------------------------------------------------
def test_aux_depth_capped():
    stars = "*" * (MAX_AUX_DEPTH + 2)
    func, result = analyze(f"fn f(q) {{ x = {stars}q; return x; }}")
    depths = [depth for _, depth in result.ref]
    assert depths and max(depths) <= MAX_AUX_DEPTH + 1


def test_three_level_local_chain():
    func, result = analyze(
        """
        fn f(a) {
            l1 = malloc();
            l2 = malloc();
            l3 = malloc();
            *l1 = l2;
            *l2 = l3;
            *l3 = a;
            x = ***l1;
            return x;
        }
        """
    )
    load = find_load(func, "x")
    values = result.load_values[load.uid]
    assert any(
        isinstance(v, cfg.Var) and base_name(v.name) == "a" for v, _ in values
    )


# ----------------------------------------------------------------------
# Conditional aliasing and kills
# ----------------------------------------------------------------------
def test_store_through_conditional_alias_weak():
    func, result = analyze(
        """
        fn f(a, b, c) {
            p = malloc();
            q = malloc();
            *p = a;
            if (c > 0) { r = p; } else { r = q; }
            *r = b;
            x = *p;
            return x;
        }
        """
    )
    load = find_load(func, "x")
    names = {
        base_name(v.name) for v, _ in result.load_values[load.uid]
        if isinstance(v, cfg.Var)
    }
    # Weak update: both the original a and the conditional b are visible.
    assert "a" in names and "b" in names


def test_second_strong_update_after_branch_kills_everything():
    func, result = analyze(
        """
        fn f(a, b, c) {
            p = malloc();
            if (c > 0) { *p = a; } else { *p = b; }
            *p = 0;
            x = *p;
            return x;
        }
        """
    )
    load = find_load(func, "x")
    values = result.load_values[load.uid]
    assert len(values) == 1
    assert isinstance(values[0][0], cfg.Const)


def test_nested_branch_conditions_compose():
    func, result = analyze(
        """
        fn f(a, b, c, d) {
            p = malloc();
            if (c > 0) {
                if (d > 0) { *p = a; } else { *p = b; }
            }
            x = *p;
            return x;
        }
        """
    )
    load = find_load(func, "x")
    values = {
        base_name(v.name): cond
        for v, cond in result.load_values[load.uid]
        if isinstance(v, cfg.Var)
    }
    assert set(values) == {"a", "b"}
    # The two conditions are mutually exclusive: their conjunction is an
    # obvious contradiction.
    from repro.smt.linear_solver import LinearSolver

    assert LinearSolver().is_obviously_unsat(T.and_(values["a"], values["b"]))


# ----------------------------------------------------------------------
# Mod/Ref closures through the pipeline
# ----------------------------------------------------------------------
def test_modref_propagates_through_call_chain():
    prepared = prepare_source(
        """
        fn write_leaf(q, v) { *q = v; return 0; }
        fn write_mid(q, v) { write_leaf(q, v); return 0; }
        fn write_top(q, v) { write_mid(q, v); return 0; }
        """
    )
    # The side effect surfaces transitively at every level.
    for name in ("write_leaf", "write_mid", "write_top"):
        assert ("q", 1) in prepared[name].signature.aux_returns, name


def test_ref_propagates_through_call_chain():
    prepared = prepare_source(
        """
        fn read_leaf(q) { x = *q; return x; }
        fn read_top(q) { r = read_leaf(q); return r; }
        """
    )
    assert ("q", 1) in prepared["read_leaf"].signature.aux_params
    assert ("q", 1) in prepared["read_top"].signature.aux_params


def test_unused_param_no_connectors():
    prepared = prepare_source("fn f(p, q) { x = *p; return x; }")
    signature = prepared["f"].signature
    assert all(param != "q" for param, _ in signature.aux_params)


def test_local_only_memory_no_connectors():
    prepared = prepare_source(
        "fn f(a) { p = malloc(); *p = a; x = *p; return x; }"
    )
    assert prepared["f"].signature.aux_params == []
    assert prepared["f"].signature.aux_returns == []


def test_param_passed_to_callee_which_writes_depth2():
    prepared = prepare_source(
        """
        fn deep_write(h, v) { q = *h; *q = v; return 0; }
        fn top(h, v) { deep_write(h, v); return 0; }
        """
    )
    assert ("h", 2) in prepared["deep_write"].signature.aux_returns
    assert ("h", 2) in prepared["top"].signature.aux_returns


# ----------------------------------------------------------------------
# Alias-hazard diagnostics (the paper's §4.2 no-alias assumption)
# ----------------------------------------------------------------------
def test_alias_hazard_same_pointer_twice():
    prepared = prepare_source(
        """
        fn swap(a, b) { t = *a; *a = *b; *b = t; return 0; }
        fn main() {
            p = malloc();
            swap(p, p);
            return 0;
        }
        """
    )
    assert prepared["main"].alias_hazards


def test_alias_hazard_through_copy():
    prepared = prepare_source(
        """
        fn pair(a, b) { x = *a; y = *b; return x + y; }
        fn main() {
            p = malloc();
            q = p;
            r = pair(p, q);
            return r;
        }
        """
    )
    assert prepared["main"].alias_hazards


def test_no_hazard_for_distinct_objects():
    prepared = prepare_source(
        """
        fn pair(a, b) { x = *a; y = *b; return x + y; }
        fn main() {
            p = malloc();
            q = malloc();
            r = pair(p, q);
            return r;
        }
        """
    )
    assert prepared["main"].alias_hazards == []


def test_no_hazard_for_integer_args():
    prepared = prepare_source(
        """
        fn add(a, b) { return a + b; }
        fn main(x) { r = add(x, x); return r; }
        """
    )
    assert prepared["main"].alias_hazards == []
