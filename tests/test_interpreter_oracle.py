"""Edge-case tests for the interpreter as a *differential oracle*.

``repro selfcheck`` trusts the interpreter's verdicts, so the corners
the harness leans on get pinned here: dangling-integer memory access,
null-pointer loads, free() of non-pointers, step-limit exhaustion, and
the external-call hook defaults.
"""

import pytest

from repro.lang.interp import (
    Interpreter,
    MemoryError_,
    StepLimitExceeded,
    run_function,
)
from repro.lang.parser import parse_program


# ----------------------------------------------------------------------
# Dangling-integer and null-pointer accesses
# ----------------------------------------------------------------------
def test_store_through_integer_is_null_deref():
    interp = run_function(
        "fn f() { p = 7; *p = 1; return 0; }", "f", halt_on_violation=False
    )
    assert [v.kind for v in interp.violations] == ["null-deref"]
    assert "dereferencing integer 7" in str(interp.violations[0])


def test_load_through_null_is_null_deref():
    interp = run_function(
        "fn f() { p = 0; x = *p; return x; }", "f", halt_on_violation=False
    )
    assert [v.kind for v in interp.violations] == ["null-deref"]


def test_null_deref_halts_when_asked():
    program = parse_program("fn f() { p = 0; x = *p; return x; }")
    interp = Interpreter(program, halt_on_violation=True)
    with pytest.raises(MemoryError_) as excinfo:
        interp.call("f")
    assert excinfo.value.kind == "null-deref"


def test_failed_load_yields_zero_and_execution_continues():
    # With halt_on_violation=False a bad load produces 0, so the rest of
    # the function still runs — the oracle can collect *all* violations.
    interp = run_function(
        "fn f() { p = 7; x = *p; q = 0; y = *q; return x + y; }",
        "f",
        halt_on_violation=False,
    )
    assert [v.kind for v in interp.violations] == ["null-deref", "null-deref"]


def test_free_of_integer_is_bad_free_but_free_null_is_noop():
    interp = run_function(
        "fn f() { free(3); free(0); return 0; }", "f", halt_on_violation=False
    )
    assert [v.kind for v in interp.violations] == ["bad-free"]


# ----------------------------------------------------------------------
# Step-limit exhaustion
# ----------------------------------------------------------------------
def test_step_limit_propagates_through_run_function():
    # run_function swallows MemoryError_ only; an infinite loop must
    # surface as StepLimitExceeded so selfcheck can treat it as
    # "no verdict" rather than "ran clean".
    with pytest.raises(StepLimitExceeded):
        run_function(
            "fn f() { while (1 > 0) { x = 1; } return 0; }",
            "f",
            step_limit=200,
        )


def test_step_limit_bounds_recursion():
    program = parse_program("fn f(n) { return f(n + 1); }")
    interp = Interpreter(program, step_limit=500)
    with pytest.raises(StepLimitExceeded):
        interp.call("f", 0)


# ----------------------------------------------------------------------
# External-call hooks
# ----------------------------------------------------------------------
def test_unknown_external_call_defaults_to_zero():
    program = parse_program("fn f() { x = mystery(); return x + 1; }")
    assert Interpreter(program).call("f") == 1


def test_unknown_external_call_still_evaluates_arguments():
    # Argument expressions must run even for unmodeled callees: a
    # use-after-free inside an argument is a real violation.
    interp = run_function(
        "fn f() { p = malloc(); free(p); mystery(*p); return 0; }",
        "f",
        halt_on_violation=False,
    )
    assert [v.kind for v in interp.violations] == ["use-after-free"]


def test_external_hook_overrides_default():
    program = parse_program("fn f(a) { return mystery(a); }")
    interp = Interpreter(program, external={"mystery": lambda a: a * 2})
    assert interp.call("f", 21) == 42


def test_missing_arguments_pad_with_zero():
    program = parse_program("fn f(a, b) { return a + b; }")
    assert Interpreter(program).call("f", 5) == 5
